//! Function-image compression substrate for the CodeCrunch reproduction.
//!
//! The paper keeps warm serverless instances alive *compressed* (lz4 over
//! the committed Docker image) so that more functions fit in the warm pool.
//! This crate provides everything that idea needs, built from scratch:
//!
//! - [`CrunchFast`] — an LZ4-style byte-oriented LZ77 codec: greedy
//!   hash-table match finding, token-stream format, very fast decode. This
//!   plays the role of the paper's `lz4`.
//! - [`CrunchDense`] — LZ77 tokens entropy-coded with a canonical
//!   [`huffman`] coder: higher ratio, slower decode. This plays the role of
//!   the paper's `xz` alternative.
//! - [`FsImage`] — deterministic synthetic "function filesystem images"
//!   with controllable entropy, standing in for committed Docker images.
//! - [`CompressionModel`] — the analytic (ratio, compression-time,
//!   decompression-time) model the simulator consumes, calibrated against
//!   the real codecs and the paper's published statistics.
//!
//! # Example
//!
//! ```
//! use cc_compress::{Codec, CrunchFast};
//!
//! let image = b"fn handler(event) { return event.map(|x| x * 2); }".repeat(20);
//! let compressed = CrunchFast.compress(&image);
//! assert!(compressed.len() < image.len());
//! let restored = CrunchFast.decompress(&compressed)?;
//! assert_eq!(restored, image);
//! # Ok::<(), cc_compress::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitio;
mod checksum;
mod dense;
mod error;
mod fast;
pub mod huffman;
mod image;
mod model;

pub use bitio::{BitReader, BitWriter};
pub use checksum::fnv1a64;
pub use dense::CrunchDense;
pub use error::DecodeError;
pub use fast::CrunchFast;
#[doc(hidden)]
pub use fast::{parse_sequences, Sequence};
pub use image::{EntropyClass, FsImage};
pub use model::{measure_size_fractions, CodecKind, CompressionModel, CompressionProfile};

/// A lossless byte-stream compressor.
///
/// Both codecs in this crate implement `Codec`; the simulator's
/// [`CompressionModel`] is calibrated by running them on [`FsImage`]s.
pub trait Codec {
    /// Compresses `input` into a self-contained frame.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompresses a frame produced by [`Codec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the frame is truncated or corrupt.
    fn decompress(&self, frame: &[u8]) -> Result<Vec<u8>, DecodeError>;

    /// Short human-readable codec name.
    fn name(&self) -> &'static str;
}
