//! Fig. 9: operating under a service-time SLA.
//!
//! Paper result: at a 20% allowed increase over an uncompressed warm x86
//! start, CodeCrunch violates the SLA for only 1.8% of functions while the
//! competing techniques violate it for >19%.

use serde_json::json;

use cc_policies::{FaasCache, IceBreaker, SitW};
use cc_sim::{Scheduler, SimReport};
use cc_types::Arch;
use cc_workload::Workload;
use codecrunch::{CodeCrunch, CodeCrunchConfig};

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// Fig. 9 experiment.
pub struct Fig9;

/// Fraction of invocations violating a `(1 + sla) × warm-x86` service
/// target.
fn violation_fraction(report: &SimReport, workload: &Workload, sla: f64) -> f64 {
    if report.records.is_empty() {
        return 0.0;
    }
    let violations = report
        .records
        .iter()
        .filter(|r| {
            let reference = workload.spec(r.function).exec_time(Arch::X86).as_secs_f64();
            r.service_time().as_secs_f64() > (1.0 + sla) * reference
        })
        .count();
    violations as f64 / report.records.len() as f64
}

impl Experiment for Fig9 {
    fn id(&self) -> &'static str {
        "fig9"
    }

    fn title(&self) -> &'static str {
        "SLA-violation fraction vs allowed service-time increase (Fig. 9)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        // The SLA study runs without the warm-memory cap (the paper's SLA
        // experiment assumes the provider provisions for the SLA) but under
        // SitW's budget, so protection is a matter of *allocating* credit
        // to the functions whose cold starts would violate.
        let unlimited = scale.cluster().with_warm_memory_fraction(1.0);
        let budget = sitw_budget_per_interval(&trace, &workload, &unlimited);
        let config = unlimited.with_budget(budget);

        let slas = [0.05, 0.10, 0.20, 0.30];
        let mut lines = vec![format!(
            "{:<16} {}",
            "policy",
            slas.iter()
                .map(|s| format!("{:>9}", format!("sla {:.0}%", s * 100.0)))
                .collect::<Vec<_>>()
                .join(" ")
        )];
        let mut rows = Vec::new();

        // Baselines run once (they are SLA-oblivious); CodeCrunch runs per
        // SLA with the constraint active.
        let mut baselines: Vec<(&str, Box<dyn Scheduler>)> = vec![
            ("sitw", Box::new(SitW::new())),
            ("faascache", Box::new(FaasCache::new())),
            ("icebreaker", Box::new(IceBreaker::new())),
        ];
        for (name, policy) in baselines.iter_mut() {
            let report = run_policy(policy.as_mut(), &config, &trace, &workload);
            let fractions: Vec<f64> = slas
                .iter()
                .map(|&s| violation_fraction(&report, &workload, s))
                .collect();
            lines.push(format!(
                "{:<16} {}",
                name,
                fractions
                    .iter()
                    .map(|f| format!("{:>8.1}%", f * 100.0))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
            rows.push(json!({"policy": name, "violations": fractions}));
        }

        let mut fractions = Vec::new();
        for &sla in &slas {
            let mut policy = CodeCrunch::with_config(CodeCrunchConfig {
                sla_allowed_increase: Some(sla),
                ..CodeCrunchConfig::default()
            });
            let report = run_policy(&mut policy, &config, &trace, &workload);
            fractions.push(violation_fraction(&report, &workload, sla));
        }
        lines.push(format!(
            "{:<16} {}",
            "codecrunch-sla",
            fractions
                .iter()
                .map(|f| format!("{:>8.1}%", f * 100.0))
                .collect::<Vec<_>>()
                .join(" ")
        ));
        lines.push("(paper @20% SLA: CodeCrunch 1.8% violations, all others >19%)".to_owned());
        rows.push(json!({"policy": "codecrunch-sla", "violations": fractions}));

        ExperimentOutput::new(self.id(), lines, json!({"slas": slas, "rows": rows}))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codecrunch_sla_violates_least_at_20_percent() {
        let out = Fig9.run(&Scale::smoke());
        let rows = out.data["rows"].as_array().unwrap();
        let at_20 = |name: &str| {
            rows.iter().find(|r| r["policy"] == name).unwrap()["violations"][2]
                .as_f64()
                .unwrap()
        };
        let crunch = at_20("codecrunch-sla");
        for baseline in ["sitw", "faascache", "icebreaker"] {
            assert!(
                crunch <= at_20(baseline) + 0.02,
                "codecrunch-sla {crunch} vs {baseline} {}",
                at_20(baseline)
            );
        }
    }
}
