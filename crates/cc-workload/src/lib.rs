//! Function profiles for the CodeCrunch reproduction.
//!
//! The paper executes functions from the SeBS and ServerlessBench suites on
//! real x86 (EC2 m5) and ARM (EC2 t4g) nodes and measures, per function:
//! execution time on each architecture, cold-start time, memory footprint,
//! committed-image size, and lz4 compressibility. Those measurements are not
//! reproducible without the testbed, so this crate ships a [`Catalog`] of
//! 40 profiles calibrated to the paper's published aggregate statistics:
//!
//! - ≈38% of functions run faster on ARM (Fig. 2);
//! - compression is favorable (decompression < cold start) for ≈42% of
//!   functions on x86 and ≈46% on ARM, with the x86-favorable set nested
//!   inside the ARM-favorable set (§2);
//! - ≈60% of ARM-faster functions are compression-favorable on ARM (§2);
//! - decompression ≈0.37 s and compression ≈1.57 s on average (§5).
//!
//! A [`Workload`] binds a [`cc_trace::Trace`] to the catalog by
//! nearest-profile matching (the paper's methodology) and resolves the
//! per-function [`FunctionSpec`]s the simulator consumes.
//!
//! # Example
//!
//! ```
//! use cc_workload::Catalog;
//!
//! let catalog = Catalog::paper_catalog();
//! let stats = catalog.stats();
//! assert!((stats.arm_faster_fraction - 0.38).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod profile;
mod workload;

pub use catalog::{Catalog, CatalogStats};
pub use profile::{FunctionProfile, Suite, ARM_COLD_FACTOR, ARM_DECOMPRESS_FACTOR};
pub use workload::{FunctionSpec, Workload};
