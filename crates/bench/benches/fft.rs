//! FFT micro-benchmarks: the transform and the dominant-period extraction
//! the IceBreaker baseline runs per function.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cc_fft::{dominant_period, fft, Complex};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for log_n in [8u32, 10, 12] {
        let n = 1usize << log_n;
        group.throughput(Throughput::Elements(n as u64));
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut buf = data.clone();
                fft(&mut buf);
                buf
            })
        });
    }
    group.finish();
}

fn bench_dominant_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominant_period");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for minutes in [120usize, 480, 1440] {
        let signal: Vec<f64> = (0..minutes)
            .map(|i| if i % 7 == 0 { 3.0 } else { 0.0 })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(minutes),
            &signal,
            |b, signal| b.iter(|| dominant_period(signal)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_dominant_period);
criterion_main!(benches);
