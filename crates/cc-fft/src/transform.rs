//! Iterative radix-2 Cooley–Tukey FFT.

use std::f64::consts::PI;

use crate::Complex;

/// In-place forward FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^(-2πi·kn/N)` for a power-of-two length.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (zero-length is allowed).
///
/// # Example
///
/// ```
/// use cc_fft::{fft, Complex};
///
/// let mut data = vec![Complex::ONE; 4];
/// fft(&mut data);
/// // A constant signal concentrates all energy in bin 0.
/// assert!((data[0].re - 4.0).abs() < 1e-12);
/// assert!(data[1].abs() < 1e-12);
/// ```
pub fn fft(data: &mut [Complex]) {
    fft_dir(data, false);
}

/// In-place inverse FFT (includes the `1/N` normalization, so
/// `ifft(fft(x)) == x`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (zero-length is allowed).
pub fn ifft(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len();
    if n > 0 {
        let scale = 1.0 / n as f64;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * PI / len as f64;
        let w_len = Complex::cis(angle);
        for chunk in data.chunks_exact_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
}

/// Naive `O(n²)` DFT used as a reference implementation in tests and for
/// non-power-of-two lengths.
///
/// Allocates and returns the spectrum rather than transforming in place.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (i, &x) in data.iter().enumerate() {
                let theta = -2.0 * PI * (k * i) as f64 / n as f64;
                acc += x * Complex::cis(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        let data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let expected = dft_naive(&data);
        let mut actual = data.clone();
        fft(&mut actual);
        assert_close(&actual, &expected, 1e-9);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        fft(&mut data);
        for bin in &data {
            assert!((bin.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * PI * (k0 * i) as f64 / n as f64))
            .collect();
        fft(&mut data);
        for (k, bin) in data.iter().enumerate() {
            if k == k0 {
                assert!((bin.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(bin.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn empty_and_singleton_are_noops() {
        let mut empty: Vec<Complex> = vec![];
        fft(&mut empty);
        ifft(&mut empty);
        let mut one = vec![Complex::new(3.0, -1.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex::new(3.0, -1.0));
        ifft(&mut one);
        assert_eq!(one[0], Complex::new(3.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    fn parseval_energy_conservation() {
        let data: Vec<Complex> = (0..128)
            .map(|i| Complex::new(((i * 37) % 11) as f64 - 5.0, 0.0))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sq()).sum();
        let mut spec = data.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sq()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
    }

    proptest! {
        #[test]
        fn ifft_inverts_fft(
            values in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..=128),
        ) {
            // Round length down to a power of two.
            let n = values.len().next_power_of_two() / 2;
            prop_assume!(n >= 1);
            let original: Vec<Complex> =
                values[..n].iter().map(|&(re, im)| Complex::new(re, im)).collect();
            let mut data = original.clone();
            fft(&mut data);
            ifft(&mut data);
            for (a, b) in data.iter().zip(&original) {
                prop_assert!((*a - *b).abs() < 1e-8);
            }
        }

        #[test]
        fn fft_is_linear(
            pairs in prop::collection::vec((-100f64..100.0, -100f64..100.0), 16),
            alpha in -10f64..10.0,
        ) {
            let x: Vec<Complex> = pairs.iter().map(|&(a, _)| Complex::from_real(a)).collect();
            let y: Vec<Complex> = pairs.iter().map(|&(_, b)| Complex::from_real(b)).collect();
            let combined: Vec<Complex> = x
                .iter()
                .zip(&y)
                .map(|(&a, &b)| a.scale(alpha) + b)
                .collect();

            let (mut fx, mut fy, mut fc) = (x.clone(), y.clone(), combined.clone());
            fft(&mut fx);
            fft(&mut fy);
            fft(&mut fc);
            for ((a, b), c) in fx.iter().zip(&fy).zip(&fc) {
                prop_assert!((a.scale(alpha) + *b - *c).abs() < 1e-6);
            }
        }
    }
}
