//! §5 absolute service-time numbers per start kind, plus the
//! compression/decompression latency statistics.
//!
//! Paper (Oracle, best processor per function): warm uncompressed 6.3 s,
//! warm compressed 6.99 s, cold 10.2 s; decompression mean/p75/max
//! 0.37/0.52/0.68 s; compression mean/p75/max 1.57/1.82/2.01 s.

use serde_json::json;

use cc_metrics::Summary;
use cc_types::{Arch, StartKind};
use codecrunch::CodeCrunch;

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// Start-kind table experiment.
pub struct TabStartKinds;

impl Experiment for TabStartKinds {
    fn id(&self) -> &'static str {
        "tab_startkinds"
    }

    fn title(&self) -> &'static str {
        "mean service time per start kind and compression latency statistics (§5 absolutes)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let unlimited = scale.cluster();
        let budget = sitw_budget_per_interval(&trace, &workload, &unlimited).scale(0.5);
        let config = unlimited.with_budget(budget);

        let mut policy = CodeCrunch::new();
        let report = run_policy(&mut policy, &config, &trace, &workload);

        let mut lines = vec![format!(
            "{:<18} {:>12} {:>12} {:>10}",
            "start kind", "service (s)", "penalty (s)", "count"
        )];
        let mut kinds = Vec::new();
        for kind in [
            StartKind::WarmUncompressed,
            StartKind::WarmCompressed,
            StartKind::Cold,
        ] {
            let breakdown = report.stats.breakdown(kind);
            // Mean start penalty isolates the mechanism from the function
            // mix (compression targets long-cold-start functions, so the
            // raw service means mix different populations).
            let penalties: Vec<f64> = report
                .records
                .iter()
                .filter(|r| r.kind == kind)
                .map(|r| r.start_penalty.as_secs_f64())
                .collect();
            let mean_penalty = if penalties.is_empty() {
                0.0
            } else {
                penalties.iter().sum::<f64>() / penalties.len() as f64
            };
            lines.push(format!(
                "{:<18} {:>12.3} {:>12.3} {:>10}",
                kind.to_string(),
                breakdown.service.mean(),
                mean_penalty,
                breakdown.count
            ));
            kinds.push(json!({
                "kind": kind.to_string(),
                "mean_service_secs": breakdown.service.mean(),
                "mean_penalty_secs": mean_penalty,
                "count": breakdown.count,
            }));
        }
        lines.push(
            "(paper: warm 6.3s / warm-compressed 6.99s / cold 10.2s; the per-kind \
             service means mix different function populations — the penalty column \
             isolates the start cost)"
                .to_owned(),
        );

        // Latency statistics over the functions CodeCrunch actually
        // compressed at least once.
        let compressed_fns: std::collections::BTreeSet<_> = report
            .records
            .iter()
            .filter(|r| r.kind == StartKind::WarmCompressed)
            .map(|r| r.function)
            .collect();
        let mut dec = Summary::new();
        let mut comp = Summary::new();
        for &f in &compressed_fns {
            let spec = workload.spec(f);
            dec.record(spec.decompress_time(Arch::X86).as_secs_f64());
            comp.record(spec.compress.as_secs_f64());
        }
        if dec.is_empty() {
            lines.push("no compressed warm starts occurred at this scale".to_owned());
        } else {
            lines.push(format!(
                "decompression over compressed functions: mean {:.2}s, p75 {:.2}s, max {:.2}s \
                 (paper: 0.37/0.52/0.68)",
                dec.mean(),
                dec.percentile(75.0),
                dec.max().unwrap_or(0.0)
            ));
            lines.push(format!(
                "compression: mean {:.2}s, p75 {:.2}s, max {:.2}s (paper: 1.57/1.82/2.01; \
                 off the critical path)",
                comp.mean(),
                comp.percentile(75.0),
                comp.max().unwrap_or(0.0)
            ));
        }

        let data = json!({
            "kinds": kinds,
            "decompression_mean": dec.mean(),
            "decompression_p75": if dec.is_empty() { 0.0 } else { dec.percentile(75.0) },
            "decompression_max": dec.max().unwrap_or(0.0),
            "compression_mean": comp.mean(),
            "compressed_function_count": compressed_fns.len(),
        });
        ExperimentOutput::new(self.id(), lines, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_is_slowest_warm_is_fastest() {
        let out = TabStartKinds.run(&Scale::smoke());
        let kinds = out.data["kinds"].as_array().unwrap();
        let get = |name: &str| {
            kinds.iter().find(|k| k["kind"] == name).unwrap()["mean_service_secs"]
                .as_f64()
                .unwrap()
        };
        let warm = get("warm");
        let cold = get("cold");
        if warm > 0.0 && cold > 0.0 {
            assert!(cold > warm, "cold {cold} should exceed warm {warm}");
        }
    }
}
