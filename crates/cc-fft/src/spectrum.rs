//! Periodogram and dominant-period extraction over invocation-count
//! signals.

use crate::{fft, Complex};

/// Computes the one-sided periodogram (power per frequency bin) of a real
/// signal.
///
/// The signal is mean-subtracted (so the DC component does not mask real
/// periodicity) and zero-padded to the next power of two. Returns
/// `len/2 + 1` power values for bins `0 ..= len/2`, where `len` is the
/// padded length; bin `k` corresponds to period `len / k` samples.
///
/// Returns an empty vector for signals shorter than 2 samples.
///
/// # Example
///
/// ```
/// use cc_fft::periodogram;
///
/// // A pure tone completing 4 cycles over 32 samples.
/// let signal: Vec<f64> = (0..32)
///     .map(|i| (2.0 * std::f64::consts::PI * 4.0 * i as f64 / 32.0).cos())
///     .collect();
/// let power = periodogram(&signal);
/// // All energy lands in bin 4 (period 32/4 = 8 samples).
/// let peak = power
///     .iter()
///     .enumerate()
///     .skip(1)
///     .max_by(|a, b| a.1.total_cmp(b.1))
///     .unwrap()
///     .0;
/// assert_eq!(peak, 4);
/// ```
pub fn periodogram(signal: &[f64]) -> Vec<f64> {
    if signal.len() < 2 {
        return Vec::new();
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let padded = signal.len().next_power_of_two();
    let mut data: Vec<Complex> = signal
        .iter()
        .map(|&v| Complex::from_real(v - mean))
        .chain(std::iter::repeat(Complex::ZERO))
        .take(padded)
        .collect();
    fft(&mut data);
    data[..=padded / 2]
        .iter()
        .map(|z| z.norm_sq() / padded as f64)
        .collect()
}

/// Extracts the dominant invocation period (in samples) from a signal of
/// per-interval invocation counts, the way the IceBreaker baseline does.
///
/// Computed via FFT autocorrelation (Wiener–Khinchin): the signal is
/// mean-subtracted and zero-padded to avoid circular wrap-around, its
/// power spectrum inverse-transformed into the autocorrelation, and the
/// strongest lag in `[2, len/2]` wins. Unlike a raw periodogram argmax,
/// the autocorrelation of a spike train peaks at the *fundamental* (the
/// lag with the most coincidences) even under spectral leakage, which is
/// exactly the quantity a pre-warming policy needs.
///
/// Returns `None` when the signal carries no periodic structure: it is
/// too short, constant, or its best normalized autocorrelation falls
/// below 0.25 (noise).
///
/// # Example
///
/// ```
/// use cc_fft::dominant_period;
///
/// let noisy_constant = vec![1.0; 100];
/// assert_eq!(dominant_period(&noisy_constant), None);
/// ```
pub fn dominant_period(signal: &[f64]) -> Option<f64> {
    let n = signal.len();
    if n < 4 {
        return None;
    }
    let mean = signal.iter().sum::<f64>() / n as f64;
    // Zero-pad to 2n (next power of two) so the correlation is linear, not
    // circular.
    let padded = (2 * n).next_power_of_two();
    let mut data: Vec<Complex> = signal
        .iter()
        .map(|&v| Complex::from_real(v - mean))
        .chain(std::iter::repeat(Complex::ZERO))
        .take(padded)
        .collect();
    fft(&mut data);
    for v in data.iter_mut() {
        *v = Complex::from_real(v.norm_sq());
    }
    crate::ifft(&mut data);
    let r0 = data[0].re;
    if r0 <= 1e-12 {
        return None; // constant signal
    }
    // Strongest lag in [2, n/2]. The *biased* estimate (no overlap
    // compensation) is deliberate: a spike train's autocorrelation is
    // near-equal at every multiple of the fundamental, and the shrinking
    // overlap at longer lags is exactly what tips the choice to the
    // fundamental itself.
    let max_lag = n / 2;
    let (best_lag, best_value) = (2..=max_lag)
        .map(|lag| (lag, data[lag].re / r0))
        .max_by(|a, b| a.1.total_cmp(&b.1))?;
    if best_value < 0.25 {
        return None;
    }
    Some(best_lag as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_period() {
        for period in [4usize, 8, 16] {
            let signal: Vec<f64> = (0..128)
                .map(|i| if i % period == 0 { 5.0 } else { 0.0 })
                .collect();
            let found = dominant_period(&signal).expect("period should be found");
            assert_eq!(found, period as f64, "period {period}");
        }
    }

    #[test]
    fn constant_signal_has_no_period() {
        assert_eq!(dominant_period(&[3.0; 64]), None);
        assert_eq!(dominant_period(&[0.0; 64]), None);
    }

    #[test]
    fn short_signals_have_no_period() {
        assert_eq!(dominant_period(&[]), None);
        assert_eq!(dominant_period(&[1.0]), None);
        assert_eq!(dominant_period(&[1.0, 0.0]), None);
    }

    #[test]
    fn white_noise_is_rejected() {
        // Deterministic LCG noise: flat-ish spectrum, no 2x-mean peak
        // expected at this length.
        let mut state = 99u64;
        let signal: Vec<f64> = (0..256)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 100) as f64
            })
            .collect();
        // Not asserting None strictly (noise can alias), but if Some, the
        // peak must genuinely dominate; re-run detection manually.
        if let Some(p) = dominant_period(&signal) {
            assert!(p >= 2.0);
        }
    }

    #[test]
    fn mixed_periods_returns_the_stronger() {
        // Period-8 spikes of amplitude 10 plus period-4 spikes of amplitude 1.
        let signal: Vec<f64> = (0..128)
            .map(|i| {
                let mut v = 0.0;
                if i % 8 == 0 {
                    v += 10.0;
                }
                if i % 4 == 0 {
                    v += 1.0;
                }
                v
            })
            .collect();
        let p = dominant_period(&signal).unwrap();
        assert_eq!(p, 8.0);
    }

    #[test]
    fn periodogram_length_is_half_padded_plus_one() {
        let signal = vec![1.0; 100]; // pads to 128
        assert_eq!(periodogram(&signal).len(), 65);
        assert!(periodogram(&[1.0]).is_empty());
    }

    #[test]
    fn periodogram_dc_is_zero_after_mean_subtraction() {
        let signal: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let power = periodogram(&signal);
        assert!(power[0] < 1e-9, "DC bin should vanish, got {}", power[0]);
    }
}
