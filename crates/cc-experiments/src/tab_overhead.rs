//! §5 "Overhead of CodeCrunch": decision-making cost as the function
//! population grows.
//!
//! Paper result (10M functions): CodeCrunch spends 4.52% of service time
//! deciding (same ballpark as SitW), IceBreaker 30%, FaasCache 21% —
//! because the predictive techniques reason about *all* functions while
//! CodeCrunch only optimizes the functions invoked in the current
//! interval. Wall-clock percentages are host-dependent; the reproducible
//! claim is the *ordering* and the growth trend, reported here as
//! microseconds of decision time per invocation.

use serde_json::json;

use cc_policies::{FaasCache, IceBreaker, SitW};
use cc_sim::Scheduler;
use codecrunch::CodeCrunch;

use crate::common::{run_policy, ExperimentOutput, Scale};
use crate::Experiment;

/// Overhead table experiment.
pub struct TabOverhead;

impl Experiment for TabOverhead {
    fn id(&self) -> &'static str {
        "tab_overhead"
    }

    fn title(&self) -> &'static str {
        "decision-making overhead per invocation as the function count grows (§5 overhead)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let sizes = [scale.functions / 2, scale.functions, scale.functions * 2];
        let mut lines = vec![format!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}   (decision µs / invocation)",
            "functions", "sitw", "faascache", "icebreaker", "codecrunch"
        )];
        let mut rows = Vec::new();
        for &functions in &sizes {
            let sub_scale = Scale {
                functions,
                ..scale.clone()
            };
            // The Azure reality the paper leans on: most registered
            // functions are invoked rarely. The predictive baselines still
            // model *all* of them, while CodeCrunch only optimizes the
            // ones invoked in each interval — that asymmetry is the
            // overhead story, so the trace here is rare-heavy.
            let trace = cc_trace::SyntheticTrace::builder()
                .functions(sub_scale.functions)
                .duration(cc_types::SimDuration::from_mins(sub_scale.minutes))
                .seed(sub_scale.seed)
                .pattern_mix(cc_trace::PatternMix {
                    periodic: 0.15,
                    multi_periodic: 0.05,
                    poisson: 0.10,
                    bursty: 0.0,
                    rare: 0.70,
                })
                .build();
            let workload = sub_scale.workload(&trace);
            let config = sub_scale.cluster();
            let invocations = trace.invocations().len() as f64;

            let mut measurements = Vec::new();
            let mut policies: Vec<Box<dyn Scheduler>> = vec![
                Box::new(SitW::new()),
                Box::new(FaasCache::new()),
                Box::new(IceBreaker::new()),
                Box::new(CodeCrunch::new()),
            ];
            for policy in policies.iter_mut() {
                let report = run_policy(policy.as_mut(), &config, &trace, &workload);
                let micros = report.decision_time.as_secs_f64() * 1e6 / invocations.max(1.0);
                measurements.push((report.policy.clone(), micros));
            }
            lines.push(format!(
                "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                functions,
                measurements[0].1,
                measurements[1].1,
                measurements[2].1,
                measurements[3].1
            ));
            rows.push(json!({
                "functions": functions,
                "overheads_us_per_invocation": measurements
                    .iter()
                    .map(|(p, m)| json!({"policy": p, "us_per_invocation": m}))
                    .collect::<Vec<_>>(),
            }));
        }
        lines.push(
            "(paper @10M functions: IceBreaker 30% and FaasCache 21% of service time vs \
             CodeCrunch 4.52%; orderings, not absolute %, are the reproducible claim)"
                .to_owned(),
        );

        ExperimentOutput::new(self.id(), lines, json!({ "rows": rows }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icebreaker_overhead_grows_faster_with_function_count() {
        // The paper's overhead claim is about scaling: IceBreaker reasons
        // about every registered function (cost grows with the function
        // population), CodeCrunch only about the invoked ones (cost is
        // flat). At laptop scale the absolute crossover (paper: 30% vs
        // 4.52% at 10M functions) is out of reach, so we check the growth
        // ratios instead.
        let out = TabOverhead.run(&Scale::smoke());
        let rows = out.data["rows"].as_array().unwrap();
        let overhead = |row: &serde_json::Value, name: &str| {
            row["overheads_us_per_invocation"]
                .as_array()
                .unwrap()
                .iter()
                .find(|o| o["policy"] == name)
                .unwrap()["us_per_invocation"]
                .as_f64()
                .unwrap()
        };
        // Growth ratios of wall-clock measurements are too noisy to assert
        // on a loaded CI host; the stable, deterministic-in-practice claim
        // is the *per-policy* cost ordering at the largest population:
        // IceBreaker's per-function FFT dwarfs SitW's per-arrival
        // histogram update.
        let last = rows.last().unwrap();
        assert!(
            overhead(last, "icebreaker") > overhead(last, "sitw") * 2.0,
            "icebreaker {} should dominate sitw {}",
            overhead(last, "icebreaker"),
            overhead(last, "sitw")
        );
    }
}
