//! Strict decoder for the cc-obs JSONL event encoding.
//!
//! [`event_line`](cc_obs::event_line) is the single source of truth for the
//! encoding: a fixed key order per event tag, compact separators, and
//! `Display`-formatted numbers. This decoder inverts it *strictly* — a line
//! decodes iff it is byte-for-byte in canonical form (modulo number
//! spellings that parse to the same value), so re-encoding a decoded event
//! reproduces the original line and any corruption (swapped keys, truncated
//! tails, renamed fields) surfaces as a typed [`DecodeError`] instead of a
//! silently different event. Decoding never panics.
//!
//! Two layers:
//!
//! * [`decode_line`] — one line to one [`Line`] (event, shard marker, or
//!   telemetry snapshot).
//! * [`decode_stream`] — a whole file to a [`ReplayLog`], validating the
//!   shard-marker structure the mux writes (`shard_begin`/`shard_end`
//!   bracketing, strictly increasing shard ids, declared event counts).

use std::fmt;

use cc_obs::{Event, IntervalSample, OptimizerRound, ReleaseReason};
use cc_types::{Arch, Cost, FunctionId, MemoryMb, NodeId, SimDuration, SimTime, StartKind, WarmId};

/// What went wrong decoding one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The line ended before the expected structure was complete.
    Truncated,
    /// The bytes at the error position did not match the canonical token
    /// (wrong key, wrong separator, wrong quoting — anything structural).
    ExpectedToken(&'static str),
    /// The `"t"` tag names no known event or marker type.
    UnknownTag(String),
    /// A numeric field failed to parse (empty, malformed, or out of range).
    BadNumber(&'static str),
    /// A string-enum field carried an unknown label.
    BadLabel {
        /// The field whose label was unrecognized.
        field: &'static str,
        /// The label found.
        found: String,
    },
    /// Valid structure, but bytes remained after the closing brace.
    TrailingData,
}

/// A typed, non-panicking line decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset within the line where decoding failed.
    pub at: usize,
    /// What went wrong.
    pub kind: DecodeErrorKind,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DecodeErrorKind::Truncated => write!(f, "truncated line (byte {})", self.at),
            DecodeErrorKind::ExpectedToken(token) => {
                write!(f, "expected {token:?} at byte {}", self.at)
            }
            DecodeErrorKind::UnknownTag(tag) => write!(f, "unknown event tag {tag:?}"),
            DecodeErrorKind::BadNumber(field) => {
                write!(f, "malformed number for {field:?} at byte {}", self.at)
            }
            DecodeErrorKind::BadLabel { field, found } => {
                write!(f, "unknown {field} label {found:?} at byte {}", self.at)
            }
            DecodeErrorKind::TrailingData => {
                write!(f, "trailing data after object at byte {}", self.at)
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// One decoded JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub enum Line {
    /// A simulator event.
    Event(Event),
    /// A `shard_begin` marker (sharded streams only).
    ShardBegin {
        /// The shard whose block starts here.
        shard: u32,
    },
    /// A `shard_end` marker with the mux's per-shard accounting.
    ShardEnd {
        /// The shard whose block ends here.
        shard: u32,
        /// Event lines the mux wrote for the shard.
        events: u64,
        /// Events the shard reported dropped (lossy channel backpressure).
        dropped: u64,
    },
    /// A `Telemetry::snapshot_line` appended after the event stream.
    Snapshot,
}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor { s, pos: 0 }
    }

    fn fail(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError { at: self.pos, kind }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    /// Consumes an exact literal (a key, separator, or punctuation run).
    fn lit(&mut self, token: &'static str) -> Result<(), DecodeError> {
        let rest = self.rest();
        if let Some(tail) = rest.strip_prefix(token) {
            self.pos = self.s.len() - tail.len();
            Ok(())
        } else if rest.len() < token.len() && token.starts_with(rest) {
            Err(self.fail(DecodeErrorKind::Truncated))
        } else {
            Err(self.fail(DecodeErrorKind::ExpectedToken(token)))
        }
    }

    /// Consumes a decimal integer token.
    fn u64(&mut self, field: &'static str) -> Result<u64, DecodeError> {
        let digits: &str = {
            let rest = self.rest();
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            &rest[..end]
        };
        if digits.is_empty() {
            return if self.rest().is_empty() {
                Err(self.fail(DecodeErrorKind::Truncated))
            } else {
                Err(self.fail(DecodeErrorKind::BadNumber(field)))
            };
        }
        let value = digits
            .parse::<u64>()
            .map_err(|_| self.fail(DecodeErrorKind::BadNumber(field)))?;
        self.pos += digits.len();
        Ok(value)
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, DecodeError> {
        let value = self.u64(field)?;
        u32::try_from(value).map_err(|_| DecodeError {
            at: self.pos,
            kind: DecodeErrorKind::BadNumber(field),
        })
    }

    /// Consumes a JSON number or `null` (the encoding of non-finite
    /// floats); `null` decodes to NaN.
    fn f64_or_null(&mut self, field: &'static str) -> Result<f64, DecodeError> {
        if self.rest().starts_with("null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let token: &str = {
            let rest = self.rest();
            let end = rest
                .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                .unwrap_or(rest.len());
            &rest[..end]
        };
        if token.is_empty() {
            return if self.rest().is_empty() {
                Err(self.fail(DecodeErrorKind::Truncated))
            } else {
                Err(self.fail(DecodeErrorKind::BadNumber(field)))
            };
        }
        let value = token
            .parse::<f64>()
            .map_err(|_| self.fail(DecodeErrorKind::BadNumber(field)))?;
        if !value.is_finite() {
            // Canonical encoding spells non-finite values as `null`.
            return Err(self.fail(DecodeErrorKind::BadNumber(field)));
        }
        self.pos += token.len();
        Ok(value)
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, DecodeError> {
        if self.rest().starts_with("true") {
            self.pos += 4;
            Ok(true)
        } else if self.rest().starts_with("false") {
            self.pos += 5;
            Ok(false)
        } else if "true".starts_with(self.rest()) || "false".starts_with(self.rest()) {
            Err(self.fail(DecodeErrorKind::Truncated))
        } else {
            Err(self.fail(DecodeErrorKind::BadNumber(field)))
        }
    }

    /// Consumes a quoted label (the encoding never escapes).
    fn label(&mut self) -> Result<&'a str, DecodeError> {
        self.lit("\"")?;
        let rest = self.rest();
        let Some(end) = rest.find('"') else {
            return Err(self.fail(DecodeErrorKind::Truncated));
        };
        let label = &rest[..end];
        self.pos += end + 1;
        Ok(label)
    }

    fn end(&mut self) -> Result<(), DecodeError> {
        self.lit("}")?;
        if self.pos != self.s.len() {
            return Err(self.fail(DecodeErrorKind::TrailingData));
        }
        Ok(())
    }

    fn warm_id(&mut self) -> Result<WarmId, DecodeError> {
        self.lit(",\"id\":[")?;
        let slot = self.u32("id.slot")?;
        self.lit(",")?;
        let generation = self.u32("id.generation")?;
        self.lit("]")?;
        Ok(WarmId::new(slot, generation))
    }

    fn arch(&mut self, field: &'static str) -> Result<Arch, DecodeError> {
        let at = self.pos;
        match self.label()? {
            "x86" => Ok(Arch::X86),
            "arm" => Ok(Arch::Arm),
            other => Err(DecodeError {
                at,
                kind: DecodeErrorKind::BadLabel {
                    field,
                    found: other.to_string(),
                },
            }),
        }
    }
}

/// Decodes one JSONL line into a [`Line`], strictly against the canonical
/// encoding. Never panics; malformed input yields a typed [`DecodeError`].
pub fn decode_line(line: &str) -> Result<Line, DecodeError> {
    let mut c = Cursor::new(line);
    // Telemetry snapshots are the one non-event line family ccstat appends;
    // they are recognized (and re-derivable from the event stream) but not
    // decoded field-by-field.
    if line.starts_with("{\"type\":\"snapshot\"") {
        if !line.ends_with('}') {
            c.pos = line.len();
            return Err(c.fail(DecodeErrorKind::Truncated));
        }
        return Ok(Line::Snapshot);
    }
    c.lit("{\"t\":")?;
    let tag_at = c.pos;
    let tag = c.label()?;
    match tag {
        "arrival" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            c.lit(",\"fn\":")?;
            let function = FunctionId::new(c.u32("fn")?);
            c.end()?;
            Ok(Line::Event(Event::Arrival { at, function }))
        }
        "queued" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            c.lit(",\"fn\":")?;
            let function = FunctionId::new(c.u32("fn")?);
            c.lit(",\"depth\":")?;
            let depth = c.u64("depth")?;
            c.end()?;
            Ok(Line::Event(Event::Queued {
                at,
                function,
                depth,
            }))
        }
        "exec_start" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            c.lit(",\"fn\":")?;
            let function = FunctionId::new(c.u32("fn")?);
            c.lit(",\"node\":")?;
            let node = NodeId::new(c.u32("node")?);
            c.lit(",\"arch\":")?;
            let arch = c.arch("arch")?;
            c.lit(",\"kind\":")?;
            let kind_at = c.pos;
            let kind = match c.label()? {
                "cold" => StartKind::Cold,
                "warm" => StartKind::WarmUncompressed,
                "warm_compressed" => StartKind::WarmCompressed,
                other => {
                    return Err(DecodeError {
                        at: kind_at,
                        kind: DecodeErrorKind::BadLabel {
                            field: "kind",
                            found: other.to_string(),
                        },
                    })
                }
            };
            c.lit(",\"wait_us\":")?;
            let wait = SimDuration::from_micros(c.u64("wait_us")?);
            c.lit(",\"penalty_us\":")?;
            let start_penalty = SimDuration::from_micros(c.u64("penalty_us")?);
            c.lit(",\"exec_us\":")?;
            let execution = SimDuration::from_micros(c.u64("exec_us")?);
            c.end()?;
            Ok(Line::Event(Event::ExecutionStarted {
                at,
                function,
                node,
                arch,
                kind,
                wait,
                start_penalty,
                execution,
            }))
        }
        "warm_admit" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            let id = c.warm_id()?;
            c.lit(",\"fn\":")?;
            let function = FunctionId::new(c.u32("fn")?);
            c.lit(",\"node\":")?;
            let node = NodeId::new(c.u32("node")?);
            c.lit(",\"arch\":")?;
            let arch = c.arch("arch")?;
            c.lit(",\"compressed\":")?;
            let compressed = c.bool("compressed")?;
            c.lit(",\"mem_mb\":")?;
            let memory = MemoryMb::new(c.u32("mem_mb")?);
            c.lit(",\"expiry\":")?;
            let expiry = SimTime::from_micros(c.u64("expiry")?);
            c.lit(",\"reserved_pd\":")?;
            let reserved = Cost::from_picodollars(c.u64("reserved_pd")?);
            c.end()?;
            Ok(Line::Event(Event::InstanceAdmitted {
                at,
                id,
                function,
                node,
                arch,
                compressed,
                memory,
                expiry,
                reserved,
            }))
        }
        "warm_release" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            let id = c.warm_id()?;
            c.lit(",\"fn\":")?;
            let function = FunctionId::new(c.u32("fn")?);
            c.lit(",\"node\":")?;
            let node = NodeId::new(c.u32("node")?);
            c.lit(",\"mem_mb\":")?;
            let memory = MemoryMb::new(c.u32("mem_mb")?);
            c.lit(",\"compressed\":")?;
            let compressed = c.bool("compressed")?;
            c.lit(",\"since\":")?;
            let since = SimTime::from_micros(c.u64("since")?);
            c.lit(",\"reason\":")?;
            let reason_at = c.pos;
            let reason = match c.label()? {
                "reused" => ReleaseReason::Reused,
                "evicted" => ReleaseReason::Evicted,
                "expired" => ReleaseReason::Expired,
                other => {
                    return Err(DecodeError {
                        at: reason_at,
                        kind: DecodeErrorKind::BadLabel {
                            field: "reason",
                            found: other.to_string(),
                        },
                    })
                }
            };
            c.end()?;
            Ok(Line::Event(Event::InstanceReleased {
                at,
                id,
                function,
                node,
                memory,
                compressed,
                since,
                reason,
            }))
        }
        "compress_start" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            let id = c.warm_id()?;
            c.lit(",\"fn\":")?;
            let function = FunctionId::new(c.u32("fn")?);
            c.lit(",\"node\":")?;
            let node = NodeId::new(c.u32("node")?);
            c.lit(",\"ready_at\":")?;
            let ready_at = SimTime::from_micros(c.u64("ready_at")?);
            c.end()?;
            Ok(Line::Event(Event::CompressionStarted {
                at,
                id,
                function,
                node,
                ready_at,
            }))
        }
        "compress_finish" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            let id = c.warm_id()?;
            c.lit(",\"fn\":")?;
            let function = FunctionId::new(c.u32("fn")?);
            c.lit(",\"node\":")?;
            let node = NodeId::new(c.u32("node")?);
            c.end()?;
            Ok(Line::Event(Event::CompressionFinished {
                at,
                id,
                function,
                node,
            }))
        }
        "budget_debit" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            c.lit(",\"requested_pd\":")?;
            let requested = Cost::from_picodollars(c.u64("requested_pd")?);
            c.lit(",\"granted_pd\":")?;
            let granted = Cost::from_picodollars(c.u64("granted_pd")?);
            c.end()?;
            Ok(Line::Event(Event::BudgetDebit {
                at,
                requested,
                granted,
            }))
        }
        "budget_credit" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            c.lit(",\"amount_pd\":")?;
            let amount = Cost::from_picodollars(c.u64("amount_pd")?);
            c.end()?;
            Ok(Line::Event(Event::BudgetCredit { at, amount }))
        }
        "prewarm_dropped" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            c.lit(",\"fn\":")?;
            let function = FunctionId::new(c.u32("fn")?);
            c.lit(",\"arch\":")?;
            let arch = c.arch("arch")?;
            c.end()?;
            Ok(Line::Event(Event::PrewarmDropped { at, function, arch }))
        }
        "opt_round" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            c.lit(",\"round\":")?;
            let round = c.u32("round")?;
            c.lit(",\"subproblems\":")?;
            let subproblems = c.u32("subproblems")?;
            c.lit(",\"dims\":")?;
            let dimensions = c.u32("dims")?;
            c.lit(",\"objective\":")?;
            let objective = c.f64_or_null("objective")?;
            c.lit(",\"accepted\":")?;
            let accepted_moves = c.u64("accepted")?;
            c.lit(",\"evals\":")?;
            let evaluations = c.u64("evals")?;
            c.end()?;
            Ok(Line::Event(Event::OptimizerRound {
                at,
                round: OptimizerRound {
                    round,
                    subproblems,
                    dimensions,
                    objective,
                    accepted_moves,
                    evaluations,
                },
            }))
        }
        "interval" => {
            c.lit(",\"at\":")?;
            let at = SimTime::from_micros(c.u64("at")?);
            c.lit(",\"index\":")?;
            let index = c.u64("index")?;
            c.lit(",\"spend_delta\":")?;
            let spend_delta_dollars = c.f64_or_null("spend_delta")?;
            c.lit(",\"warm_pool\":")?;
            let warm_pool = c.u64("warm_pool")?;
            c.lit(",\"compressed\":")?;
            let compressed = c.u64("compressed")?;
            c.lit(",\"utilization\":")?;
            let utilization = c.f64_or_null("utilization")?;
            c.lit(",\"compress_delta\":")?;
            let compression_events_delta = c.u64("compress_delta")?;
            c.lit(",\"pending\":")?;
            let pending = c.u64("pending")?;
            c.end()?;
            Ok(Line::Event(Event::IntervalSampled {
                at,
                sample: IntervalSample {
                    index,
                    spend_delta_dollars,
                    warm_pool,
                    compressed,
                    utilization,
                    compression_events_delta,
                    pending,
                },
            }))
        }
        "shard_begin" => {
            c.lit(",\"shard\":")?;
            let shard = c.u32("shard")?;
            c.end()?;
            Ok(Line::ShardBegin { shard })
        }
        "shard_end" => {
            c.lit(",\"shard\":")?;
            let shard = c.u32("shard")?;
            c.lit(",\"events\":")?;
            let events = c.u64("events")?;
            c.lit(",\"dropped\":")?;
            let dropped = c.u64("dropped")?;
            c.end()?;
            Ok(Line::ShardEnd {
                shard,
                events,
                dropped,
            })
        }
        other => Err(DecodeError {
            at: tag_at,
            kind: DecodeErrorKind::UnknownTag(other.to_string()),
        }),
    }
}

/// The mux's per-shard accounting from a `shard_end` marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEndInfo {
    /// Event lines the marker declared for the shard.
    pub events: u64,
    /// Events the shard dropped (lossy channel backpressure); a non-zero
    /// value marks the shard's stream as knowingly incomplete.
    pub dropped: u64,
}

/// One shard's slice of a decoded log.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStream {
    /// The shard id (0 for serial, untagged streams).
    pub shard: u32,
    /// The shard's events with their 1-based line numbers in the file.
    pub events: Vec<(u64, Event)>,
    /// The `shard_end` accounting; `None` in untagged streams.
    pub end: Option<ShardEndInfo>,
}

/// A fully decoded JSONL log.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayLog {
    /// Whether the stream carried shard markers (`--shards` with more than
    /// one job). Untagged streams decode as a single implicit shard 0.
    pub tagged: bool,
    /// Per-shard event streams, in shard-id order.
    pub shards: Vec<ShardStream>,
    /// Raw telemetry snapshot lines with their 1-based line numbers, in
    /// file order (ccstat appends one per shard after the event blocks).
    pub snapshots: Vec<(u64, String)>,
    /// Total lines read.
    pub lines: u64,
}

impl ReplayLog {
    /// Total decoded events across all shards.
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|s| s.events.len() as u64).sum()
    }
}

/// What went wrong assembling a stream of valid lines into a [`ReplayLog`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamErrorKind {
    /// A line failed to decode.
    Line(DecodeError),
    /// A `shard_begin` appeared where none was legal: inside an open
    /// shard block, in an untagged stream, or with a shard id out of
    /// sequence (blocks are strictly `0, 1, 2, …`).
    UnexpectedShardBegin {
        /// The marker's shard id.
        shard: u32,
    },
    /// A `shard_end` appeared with no matching open block — including the
    /// duplicated-marker case where a block is ended twice.
    UnexpectedShardEnd {
        /// The marker's shard id.
        shard: u32,
    },
    /// In a tagged stream, an event line appeared outside any
    /// `shard_begin`/`shard_end` block.
    EventOutsideShard,
    /// A `shard_end` declared a different event count than the block held.
    EventCountMismatch {
        /// The shard whose accounting disagrees.
        shard: u32,
        /// The count the marker declared.
        declared: u64,
        /// The events actually decoded in the block.
        counted: u64,
    },
    /// The stream ended inside an open shard block (the file was cut off
    /// before the mux's `shard_end`).
    UnterminatedShard {
        /// The shard left open.
        shard: u32,
    },
}

/// A typed, non-panicking stream decode failure, located by line.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamError {
    /// 1-based line number (one past the end for end-of-stream errors).
    pub line: u64,
    /// What went wrong.
    pub kind: StreamErrorKind,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            StreamErrorKind::Line(e) => write!(f, "{e}"),
            StreamErrorKind::UnexpectedShardBegin { shard } => {
                write!(f, "unexpected shard_begin for shard {shard}")
            }
            StreamErrorKind::UnexpectedShardEnd { shard } => {
                write!(f, "unexpected shard_end for shard {shard}")
            }
            StreamErrorKind::EventOutsideShard => {
                write!(f, "event outside any shard block in a tagged stream")
            }
            StreamErrorKind::EventCountMismatch {
                shard,
                declared,
                counted,
            } => write!(
                f,
                "shard {shard} declared {declared} events but the block held {counted}"
            ),
            StreamErrorKind::UnterminatedShard { shard } => {
                write!(f, "stream ended inside shard {shard}'s block")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Decodes a whole JSONL stream (the contents of a `--jsonl` export) into a
/// [`ReplayLog`], validating the shard-marker grammar.
///
/// Serial exports have no markers and decode as one implicit shard 0;
/// sharded exports must follow the mux's structure exactly: blocks
/// bracketed by `shard_begin`/`shard_end`, shard ids strictly increasing
/// from 0, declared event counts matching the block contents. Snapshot
/// lines are collected (not decoded) wherever they appear. Empty lines are
/// rejected as truncated; the trailing newline of the last line is
/// tolerated.
pub fn decode_stream(input: &str) -> Result<ReplayLog, StreamError> {
    let mut log = ReplayLog {
        tagged: false,
        shards: Vec::new(),
        snapshots: Vec::new(),
        lines: 0,
    };
    // Index into `log.shards` of the open block, if any.
    let mut open: Option<usize> = None;
    let mut saw_untagged_content = false;

    for (index, raw) in input.lines().enumerate() {
        let line_no = index as u64 + 1;
        log.lines = line_no;
        let fail = |kind| {
            Err(StreamError {
                line: line_no,
                kind,
            })
        };
        let line = match decode_line(raw) {
            Ok(line) => line,
            Err(e) => return fail(StreamErrorKind::Line(e)),
        };
        match line {
            Line::Snapshot => {
                log.snapshots.push((line_no, raw.to_string()));
                if !log.tagged {
                    saw_untagged_content = true;
                }
            }
            Line::ShardBegin { shard } => {
                if saw_untagged_content || open.is_some() || shard != log.shards.len() as u32 {
                    return fail(StreamErrorKind::UnexpectedShardBegin { shard });
                }
                log.tagged = true;
                log.shards.push(ShardStream {
                    shard,
                    events: Vec::new(),
                    end: None,
                });
                open = Some(log.shards.len() - 1);
            }
            Line::ShardEnd {
                shard,
                events,
                dropped,
            } => {
                let Some(current) = open else {
                    return fail(StreamErrorKind::UnexpectedShardEnd { shard });
                };
                if log.shards[current].shard != shard {
                    return fail(StreamErrorKind::UnexpectedShardEnd { shard });
                }
                let counted = log.shards[current].events.len() as u64;
                if counted != events {
                    return fail(StreamErrorKind::EventCountMismatch {
                        shard,
                        declared: events,
                        counted,
                    });
                }
                log.shards[current].end = Some(ShardEndInfo { events, dropped });
                open = None;
            }
            Line::Event(event) => {
                if log.tagged {
                    let Some(current) = open else {
                        return fail(StreamErrorKind::EventOutsideShard);
                    };
                    log.shards[current].events.push((line_no, event));
                } else {
                    if log.shards.is_empty() {
                        log.shards.push(ShardStream {
                            shard: 0,
                            events: Vec::new(),
                            end: None,
                        });
                    }
                    saw_untagged_content = true;
                    log.shards[0].events.push((line_no, event));
                }
            }
        }
    }

    if let Some(current) = open {
        return Err(StreamError {
            line: log.lines + 1,
            kind: StreamErrorKind::UnterminatedShard {
                shard: log.shards[current].shard,
            },
        });
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_obs::event_line;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Arrival {
                at: SimTime::from_micros(0),
                function: FunctionId::new(7),
            },
            Event::Queued {
                at: SimTime::from_micros(5),
                function: FunctionId::new(7),
                depth: 3,
            },
            Event::ExecutionStarted {
                at: SimTime::from_micros(10),
                function: FunctionId::new(7),
                node: NodeId::new(2),
                arch: Arch::Arm,
                kind: StartKind::WarmCompressed,
                wait: SimDuration::from_micros(10),
                start_penalty: SimDuration::from_micros(250),
                execution: SimDuration::from_micros(9000),
            },
            Event::InstanceAdmitted {
                at: SimTime::from_micros(20),
                id: WarmId::new(3, 1),
                function: FunctionId::new(7),
                node: NodeId::new(2),
                arch: Arch::X86,
                compressed: true,
                memory: MemoryMb::new(512),
                expiry: SimTime::from_micros(600_000_020),
                reserved: Cost::from_picodollars(987654321),
            },
            Event::InstanceReleased {
                at: SimTime::from_micros(30),
                id: WarmId::new(3, 1),
                function: FunctionId::new(7),
                node: NodeId::new(2),
                memory: MemoryMb::new(512),
                compressed: false,
                since: SimTime::from_micros(20),
                reason: ReleaseReason::Evicted,
            },
            Event::CompressionStarted {
                at: SimTime::from_micros(20),
                id: WarmId::new(3, 1),
                function: FunctionId::new(7),
                node: NodeId::new(2),
                ready_at: SimTime::from_micros(1020),
            },
            Event::CompressionFinished {
                at: SimTime::from_micros(1020),
                id: WarmId::new(3, 1),
                function: FunctionId::new(7),
                node: NodeId::new(2),
            },
            Event::BudgetDebit {
                at: SimTime::from_micros(40),
                requested: Cost::from_picodollars(u64::MAX),
                granted: Cost::from_picodollars(12),
            },
            Event::BudgetCredit {
                at: SimTime::from_micros(50),
                amount: Cost::from_picodollars(1),
            },
            Event::PrewarmDropped {
                at: SimTime::from_micros(60),
                function: FunctionId::new(u32::MAX),
                arch: Arch::X86,
            },
            Event::OptimizerRound {
                at: SimTime::from_micros(70),
                round: OptimizerRound {
                    round: 4,
                    subproblems: 8,
                    dimensions: 24,
                    objective: -12.625,
                    accepted_moves: 11,
                    evaluations: 4096,
                },
            },
            Event::IntervalSampled {
                at: SimTime::from_micros(u64::MAX),
                sample: IntervalSample {
                    index: u64::MAX,
                    spend_delta_dollars: -0.0625,
                    warm_pool: 42,
                    compressed: 17,
                    utilization: 0.75,
                    compression_events_delta: 5,
                    pending: 2,
                },
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for event in sample_events() {
            let line = event_line(&event);
            let decoded = decode_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(decoded, Line::Event(event), "line {line}");
            let Line::Event(back) = decoded else {
                unreachable!()
            };
            assert_eq!(event_line(&back), line, "re-encoding diverged");
        }
    }

    #[test]
    fn non_finite_floats_round_trip_as_null() {
        let event = Event::OptimizerRound {
            at: SimTime::from_micros(1),
            round: OptimizerRound {
                round: 0,
                subproblems: 1,
                dimensions: 1,
                objective: f64::NAN,
                accepted_moves: 0,
                evaluations: 0,
            },
        };
        let line = event_line(&event);
        assert!(line.contains("\"objective\":null"), "{line}");
        let Line::Event(decoded) = decode_line(&line).unwrap() else {
            panic!("expected event");
        };
        let Event::OptimizerRound { round, .. } = decoded else {
            panic!("wrong variant");
        };
        assert!(round.objective.is_nan());
        assert_eq!(event_line(&decoded), line, "null must re-encode as null");
    }

    #[test]
    fn markers_and_snapshots_decode() {
        assert_eq!(
            decode_line("{\"t\":\"shard_begin\",\"shard\":3}").unwrap(),
            Line::ShardBegin { shard: 3 }
        );
        assert_eq!(
            decode_line("{\"t\":\"shard_end\",\"shard\":3,\"events\":10,\"dropped\":2}").unwrap(),
            Line::ShardEnd {
                shard: 3,
                events: 10,
                dropped: 2
            }
        );
        assert_eq!(
            decode_line("{\"type\":\"snapshot\",\"arrivals\":5}").unwrap(),
            Line::Snapshot
        );
    }

    #[test]
    fn every_prefix_of_every_line_is_a_typed_error() {
        let mut lines: Vec<String> = sample_events().iter().map(event_line).collect();
        lines.push("{\"t\":\"shard_begin\",\"shard\":0}".into());
        lines.push("{\"t\":\"shard_end\",\"shard\":0,\"events\":1,\"dropped\":0}".into());
        for line in &lines {
            for cut in 0..line.len() {
                let prefix = &line[..cut];
                assert!(
                    decode_line(prefix).is_err(),
                    "prefix {prefix:?} of {line:?} decoded"
                );
            }
        }
    }

    #[test]
    fn swapped_keys_are_rejected() {
        // Canonical: {"t":"arrival","at":N,"fn":N}
        let swapped = "{\"t\":\"arrival\",\"fn\":7,\"at\":0}";
        let err = decode_line(swapped).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::ExpectedToken(",\"at\":"));
    }

    #[test]
    fn unknown_tags_and_trailing_data_are_rejected() {
        let err = decode_line("{\"t\":\"warp_core\",\"at\":1}").unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::UnknownTag(ref t) if t == "warp_core"));
        let err = decode_line("{\"t\":\"arrival\",\"at\":1,\"fn\":2}garbage").unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::TrailingData);
        let err = decode_line("{\"t\":\"arrival\",\"at\":1,\"fn\":99999999999}").unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadNumber("fn"));
        let err = decode_line("{\"t\":\"prewarm_dropped\",\"at\":1,\"fn\":2,\"arch\":\"mips\"}")
            .unwrap_err();
        assert!(matches!(
            err.kind,
            DecodeErrorKind::BadLabel { field: "arch", .. }
        ));
    }

    #[test]
    fn untagged_stream_decodes_as_one_shard() {
        let events = sample_events();
        let mut input = String::new();
        for e in &events {
            input.push_str(&event_line(e));
            input.push('\n');
        }
        input.push_str("{\"type\":\"snapshot\",\"arrivals\":1}\n");
        let log = decode_stream(&input).unwrap();
        assert!(!log.tagged);
        assert_eq!(log.shards.len(), 1);
        assert_eq!(log.shards[0].shard, 0);
        assert_eq!(log.shards[0].end, None);
        assert_eq!(log.events(), events.len() as u64);
        assert_eq!(log.snapshots.len(), 1);
        // Line numbers are 1-based and sequential.
        assert_eq!(log.shards[0].events[0].0, 1);
    }

    #[test]
    fn tagged_stream_decodes_shard_blocks() {
        let input = concat!(
            "{\"t\":\"shard_begin\",\"shard\":0}\n",
            "{\"t\":\"arrival\",\"at\":1,\"fn\":0}\n",
            "{\"t\":\"shard_end\",\"shard\":0,\"events\":1,\"dropped\":0}\n",
            "{\"t\":\"shard_begin\",\"shard\":1}\n",
            "{\"t\":\"shard_end\",\"shard\":1,\"events\":0,\"dropped\":4}\n",
            "{\"type\":\"snapshot\"}\n",
        );
        let log = decode_stream(input).unwrap();
        assert!(log.tagged);
        assert_eq!(log.shards.len(), 2);
        assert_eq!(log.shards[0].events.len(), 1);
        assert_eq!(
            log.shards[1].end,
            Some(ShardEndInfo {
                events: 0,
                dropped: 4
            })
        );
        assert_eq!(log.snapshots, vec![(6, "{\"type\":\"snapshot\"}".into())]);
    }

    #[test]
    fn marker_grammar_violations_are_typed() {
        // Duplicated end marker.
        let dup_end = concat!(
            "{\"t\":\"shard_begin\",\"shard\":0}\n",
            "{\"t\":\"shard_end\",\"shard\":0,\"events\":0,\"dropped\":0}\n",
            "{\"t\":\"shard_end\",\"shard\":0,\"events\":0,\"dropped\":0}\n",
        );
        let err = decode_stream(dup_end).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.kind, StreamErrorKind::UnexpectedShardEnd { shard: 0 });

        // Interleaved begin before the open block ends.
        let interleaved = concat!(
            "{\"t\":\"shard_begin\",\"shard\":0}\n",
            "{\"t\":\"shard_begin\",\"shard\":1}\n",
        );
        let err = decode_stream(interleaved).unwrap_err();
        assert_eq!(err.kind, StreamErrorKind::UnexpectedShardBegin { shard: 1 });

        // Out-of-sequence shard id.
        let skipped = "{\"t\":\"shard_begin\",\"shard\":1}\n";
        let err = decode_stream(skipped).unwrap_err();
        assert_eq!(err.kind, StreamErrorKind::UnexpectedShardBegin { shard: 1 });

        // Marker in an untagged stream.
        let late_marker = concat!(
            "{\"t\":\"arrival\",\"at\":1,\"fn\":0}\n",
            "{\"t\":\"shard_begin\",\"shard\":0}\n",
        );
        let err = decode_stream(late_marker).unwrap_err();
        assert_eq!(err.kind, StreamErrorKind::UnexpectedShardBegin { shard: 0 });

        // Event between blocks of a tagged stream.
        let stray = concat!(
            "{\"t\":\"shard_begin\",\"shard\":0}\n",
            "{\"t\":\"shard_end\",\"shard\":0,\"events\":0,\"dropped\":0}\n",
            "{\"t\":\"arrival\",\"at\":1,\"fn\":0}\n",
        );
        let err = decode_stream(stray).unwrap_err();
        assert_eq!(err.kind, StreamErrorKind::EventOutsideShard);

        // Declared count disagreeing with the block.
        let miscount = concat!(
            "{\"t\":\"shard_begin\",\"shard\":0}\n",
            "{\"t\":\"arrival\",\"at\":1,\"fn\":0}\n",
            "{\"t\":\"shard_end\",\"shard\":0,\"events\":5,\"dropped\":0}\n",
        );
        let err = decode_stream(miscount).unwrap_err();
        assert_eq!(
            err.kind,
            StreamErrorKind::EventCountMismatch {
                shard: 0,
                declared: 5,
                counted: 1
            }
        );

        // Stream cut off inside a block.
        let cut = "{\"t\":\"shard_begin\",\"shard\":0}\n";
        let err = decode_stream(cut).unwrap_err();
        assert_eq!(err.kind, StreamErrorKind::UnterminatedShard { shard: 0 });
    }
}
