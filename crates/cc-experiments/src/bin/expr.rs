//! Experiment runner.
//!
//! ```sh
//! expr all                 # run every experiment at the standard scale
//! expr fig7 fig12          # run specific experiments
//! expr --smoke all         # run at the tiny CI scale
//! expr --list              # list experiment ids
//! expr --json DIR all      # additionally write results as JSON files
//! expr --telemetry DIR all # also dump per-run JSONL telemetry into DIR
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use cc_experiments::{all_experiments, enable_telemetry, experiment_by_id, Scale};

fn main() -> ExitCode {
    let mut scale = Scale::standard();
    let mut json_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::smoke(),
            "--large" => scale = Scale::large(),
            "--list" => {
                for experiment in all_experiments() {
                    println!("{:<16} {}", experiment.id(), experiment.title());
                }
                return ExitCode::SUCCESS;
            }
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry" => match args.next() {
                Some(dir) => {
                    if let Err(e) = enable_telemetry(&PathBuf::from(&dir)) {
                        eprintln!("cannot set up telemetry dir {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                None => {
                    eprintln!("--telemetry requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: expr [--smoke|--large] [--json DIR] [--telemetry DIR] [--list] \
                     <all | experiment ids...>"
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiments requested; try `expr --list` or `expr all`");
        return ExitCode::FAILURE;
    }

    let experiments: Vec<_> = if ids.iter().any(|i| i == "all") {
        all_experiments()
    } else {
        let mut selected = Vec::new();
        for id in &ids {
            match experiment_by_id(id) {
                Some(experiment) => selected.push(experiment),
                None => {
                    eprintln!("unknown experiment id {id:?}; try `expr --list`");
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };

    if let Some(dir) = &json_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for experiment in experiments {
        let started = std::time::Instant::now();
        let output = experiment.run(&scale);
        output.print();
        eprintln!(
            "[{} finished in {:.1}s]\n",
            output.id,
            started.elapsed().as_secs_f64()
        );
        if let Some(dir) = &json_dir {
            let path = dir.join(format!("{}.json", output.id));
            match serde_json::to_vec_pretty(&output) {
                Ok(bytes) => {
                    if let Err(e) = fs::write(&path, bytes) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("cannot serialize {}: {e}", output.id);
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
