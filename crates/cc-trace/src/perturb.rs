//! Trace perturbations for the robustness experiment (paper Fig. 15).
//!
//! The paper's Fig. 15 changes function inputs and injects a load burst at
//! points CodeCrunch is *not* informed of, and checks that it adapts. A
//! [`Perturbation`] either adds invocations (a burst) or scales execution
//! times from some instant onward (an input change); the simulator applies
//! execution-time shifts, burst injection rewrites the trace itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cc_types::{Invocation, SimDuration, SimTime};

use crate::Trace;

/// An unannounced change applied to a running workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// From `at` onward, execution times are multiplied by `factor`
    /// (inputs changed; the paper scales them up).
    InputChange {
        /// When the inputs change.
        at: SimTime,
        /// Execution-time multiplier (must be positive).
        factor: f64,
    },
    /// During `[at, at + duration)`, extra invocations arrive, multiplying
    /// the background load by roughly `factor`.
    Burst {
        /// Burst window start.
        at: SimTime,
        /// Burst window length.
        duration: SimDuration,
        /// Load multiplier (≥ 1).
        factor: f64,
    },
}

impl Perturbation {
    /// Returns the execution-time multiplier in force at `now` (1.0 if this
    /// perturbation does not affect execution times or has not started).
    pub fn exec_factor_at(&self, now: SimTime) -> f64 {
        match *self {
            Perturbation::InputChange { at, factor } if now >= at => factor,
            _ => 1.0,
        }
    }

    /// Applies a [`Perturbation::Burst`] to a trace by injecting extra
    /// invocations of existing functions, sampled uniformly, spread evenly
    /// over the burst window. Returns the rewritten trace.
    ///
    /// Non-burst perturbations return the trace unchanged (they act inside
    /// the simulator instead).
    pub fn apply_to_trace(&self, trace: Trace, seed: u64) -> Trace {
        let Perturbation::Burst {
            at,
            duration,
            factor,
        } = *self
        else {
            return trace;
        };
        if trace.functions().is_empty() || duration.is_zero() || factor <= 1.0 {
            return trace;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let (functions, mut invocations) = trace.into_parts();

        // Estimate background arrivals inside the window, then add
        // (factor - 1)× as many extras.
        let end = at + duration;
        let background = invocations
            .iter()
            .filter(|inv| inv.arrival >= at && inv.arrival < end)
            .count();
        let extras = ((factor - 1.0) * background.max(1) as f64).round() as usize;
        for _ in 0..extras {
            let func = functions[rng.gen_range(0..functions.len())].id;
            let offset = SimDuration::from_micros(rng.gen_range(0..duration.as_micros().max(1)));
            invocations.push(Invocation::new(func, at + offset));
        }
        Trace::new(functions, invocations).expect("perturbed trace stays valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticTrace;

    fn base() -> Trace {
        SyntheticTrace::builder()
            .functions(20)
            .duration(SimDuration::from_mins(120))
            .seed(9)
            .build()
    }

    #[test]
    fn input_change_factor_switches_at_boundary() {
        let p = Perturbation::InputChange {
            at: SimTime::from_micros(100),
            factor: 1.5,
        };
        assert_eq!(p.exec_factor_at(SimTime::from_micros(99)), 1.0);
        assert_eq!(p.exec_factor_at(SimTime::from_micros(100)), 1.5);
        assert_eq!(p.exec_factor_at(SimTime::from_micros(500)), 1.5);
    }

    #[test]
    fn burst_has_no_exec_factor() {
        let p = Perturbation::Burst {
            at: SimTime::ZERO,
            duration: SimDuration::from_mins(5),
            factor: 3.0,
        };
        assert_eq!(p.exec_factor_at(SimTime::from_micros(1)), 1.0);
    }

    #[test]
    fn burst_injects_load() {
        let trace = base();
        let window_start = SimTime::ZERO + SimDuration::from_mins(30);
        let window = SimDuration::from_mins(10);
        let before = trace
            .invocations()
            .iter()
            .filter(|i| i.arrival >= window_start && i.arrival < window_start + window)
            .count();
        let p = Perturbation::Burst {
            at: window_start,
            duration: window,
            factor: 3.0,
        };
        let bursted = p.apply_to_trace(trace, 1);
        let after = bursted
            .invocations()
            .iter()
            .filter(|i| i.arrival >= window_start && i.arrival < window_start + window)
            .count();
        assert!(
            after as f64 >= before as f64 * 2.5,
            "burst {before} -> {after} too small"
        );
    }

    #[test]
    fn input_change_leaves_trace_unchanged() {
        let trace = base();
        let p = Perturbation::InputChange {
            at: SimTime::ZERO,
            factor: 2.0,
        };
        assert_eq!(p.apply_to_trace(trace.clone(), 0), trace);
    }

    #[test]
    fn trivial_bursts_are_noops() {
        let trace = base();
        let p = Perturbation::Burst {
            at: SimTime::ZERO,
            duration: SimDuration::ZERO,
            factor: 5.0,
        };
        assert_eq!(p.apply_to_trace(trace.clone(), 0), trace);
        let p = Perturbation::Burst {
            at: SimTime::ZERO,
            duration: SimDuration::from_mins(1),
            factor: 1.0,
        };
        assert_eq!(p.apply_to_trace(trace.clone(), 0), trace);
    }
}
