//! Self-profile JSON: a stable-key-order writer and a minimal parser.
//!
//! The writer emits keys in one fixed order with one phase/counter object
//! per line, so profiles diff cleanly under `git diff` and line tools.
//! The parser is a small recursive-descent JSON reader specialized to the
//! needs of `ccprof diff` (the workspace's vendored serde_json stand-in
//! serializes but does not parse); it accepts any standard JSON document
//! and maps the known keys, ignoring unknown ones so older readers accept
//! newer profiles.
//!
//! Wall-trace spans are deliberately *not* part of this document — they go
//! to the Perfetto export — so baseline profiles stay small enough to
//! commit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::phase::{PerfCounter, Phase};
use crate::profile::{AllocSummary, PhaseRow, SelfProfile, ThreadInfo};

/// Schema version stamped into every document.
pub const SCHEMA_VERSION: u64 = 1;

/// Serializes a profile to the stable-key-order JSON document.
pub fn to_json(profile: &SelfProfile) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"cc_prof\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"label\": {},", quote(&profile.label));
    let _ = writeln!(out, "  \"wall_ns\": {},", profile.wall_ns);
    out.push_str("  \"phases\": [");
    for (i, row) in profile.phases.iter().enumerate() {
        let sep = if i + 1 < profile.phases.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            out,
            "\n    {{\"phase\": {}, \"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \
             \"max_ns\": {}, \"alloc_count\": {}, \"alloc_bytes\": {}}}{sep}",
            quote(row.phase.label()),
            row.count,
            row.total_ns,
            row.self_ns,
            row.max_ns,
            row.alloc_count,
            row.alloc_bytes,
        );
    }
    out.push_str(if profile.phases.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"counters\": [");
    for (i, &(counter, value)) in profile.counters.iter().enumerate() {
        let sep = if i + 1 < profile.counters.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            out,
            "\n    {{\"counter\": {}, \"value\": {value}}}{sep}",
            quote(counter.label()),
        );
    }
    out.push_str(if profile.counters.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    let _ = writeln!(
        out,
        "  \"alloc\": {{\"installed\": {}, \"total_count\": {}, \"total_bytes\": {}, \
         \"unattributed_count\": {}, \"unattributed_bytes\": {}, \"peak_live_bytes\": {}}},",
        profile.alloc.installed,
        profile.alloc.total_count,
        profile.alloc.total_bytes,
        profile.alloc.unattributed_count,
        profile.alloc.unattributed_bytes,
        profile.alloc.peak_live_bytes,
    );
    out.push_str("  \"threads\": [");
    for (i, thread) in profile.threads.iter().enumerate() {
        let sep = if i + 1 < profile.threads.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            out,
            "\n    {{\"tid\": {}, \"label\": {}}}{sep}",
            thread.tid,
            quote(&thread.label),
        );
    }
    out.push_str(if profile.threads.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    let _ = writeln!(
        out,
        "  \"trace_events_dropped\": {},",
        profile.trace_events_dropped
    );
    let _ = writeln!(out, "  \"unbalanced_exits\": {}", profile.unbalanced_exits);
    out.push_str("}\n");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (just enough structure for profile documents).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a self-profile JSON document produced by [`to_json`].
pub fn from_json(text: &str) -> Result<SelfProfile, String> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing content"));
    }
    let version = root
        .get("cc_prof")
        .and_then(Value::as_u64)
        .ok_or("missing cc_prof version key")?;
    if version > SCHEMA_VERSION {
        return Err(format!("unsupported cc_prof schema version {version}"));
    }
    let u64_field = |key: &str| root.get(key).and_then(Value::as_u64).unwrap_or(0);

    let mut phases = Vec::new();
    for item in root.get("phases").and_then(Value::as_arr).unwrap_or(&[]) {
        let label = item
            .get("phase")
            .and_then(Value::as_str)
            .ok_or("phase row missing label")?;
        // Unknown phases (from a newer writer) are skipped, not fatal.
        let Some(phase) = Phase::from_label(label) else {
            continue;
        };
        let field = |key: &str| item.get(key).and_then(Value::as_u64).unwrap_or(0);
        phases.push(PhaseRow {
            phase,
            count: field("count"),
            total_ns: field("total_ns"),
            self_ns: field("self_ns"),
            max_ns: field("max_ns"),
            alloc_count: field("alloc_count"),
            alloc_bytes: field("alloc_bytes"),
        });
    }
    let mut counters = Vec::new();
    for item in root.get("counters").and_then(Value::as_arr).unwrap_or(&[]) {
        let label = item
            .get("counter")
            .and_then(Value::as_str)
            .ok_or("counter row missing label")?;
        let Some(counter) = PerfCounter::from_label(label) else {
            continue;
        };
        counters.push((
            counter,
            item.get("value").and_then(Value::as_u64).unwrap_or(0),
        ));
    }
    let alloc = root.get("alloc").map_or_else(AllocSummary::default, |a| {
        let field = |key: &str| a.get(key).and_then(Value::as_u64).unwrap_or(0);
        AllocSummary {
            installed: a.get("installed").and_then(Value::as_bool).unwrap_or(false),
            total_count: field("total_count"),
            total_bytes: field("total_bytes"),
            unattributed_count: field("unattributed_count"),
            unattributed_bytes: field("unattributed_bytes"),
            peak_live_bytes: field("peak_live_bytes"),
        }
    });
    let mut threads = Vec::new();
    for item in root.get("threads").and_then(Value::as_arr).unwrap_or(&[]) {
        threads.push(ThreadInfo {
            tid: item.get("tid").and_then(Value::as_u64).unwrap_or(0) as u32,
            label: item
                .get("label")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
        });
    }
    Ok(SelfProfile {
        label: root
            .get("label")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string(),
        wall_ns: u64_field("wall_ns"),
        phases,
        counters,
        alloc,
        threads,
        trace: Vec::new(),
        trace_events_dropped: u64_field("trace_events_dropped"),
        unbalanced_exits: u64_field("unbalanced_exits"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SelfProfile {
        SelfProfile {
            label: "ten-k \"stress\"".to_string(),
            wall_ns: 123_456_789,
            phases: vec![
                PhaseRow {
                    phase: Phase::EngineRun,
                    count: 1,
                    total_ns: 123_000_000,
                    self_ns: 23_000_000,
                    max_ns: 123_000_000,
                    alloc_count: 7,
                    alloc_bytes: 4096,
                },
                PhaseRow {
                    phase: Phase::Arrival,
                    count: 10_000,
                    total_ns: 60_000_000,
                    self_ns: 40_000_000,
                    max_ns: 90_000,
                    alloc_count: 0,
                    alloc_bytes: 0,
                },
            ],
            counters: vec![
                (PerfCounter::PoolInsert, 9000),
                (PerfCounter::CandidateProbes, 31_337),
            ],
            alloc: AllocSummary {
                installed: true,
                total_count: 1234,
                total_bytes: 1 << 20,
                unattributed_count: 3,
                unattributed_bytes: 96,
                peak_live_bytes: 2 << 20,
            },
            threads: vec![
                ThreadInfo {
                    tid: 1,
                    label: "main".to_string(),
                },
                ThreadInfo {
                    tid: 2,
                    label: "feeder".to_string(),
                },
            ],
            trace: Vec::new(),
            trace_events_dropped: 5,
            unbalanced_exits: 0,
        }
    }

    #[test]
    fn json_round_trips_and_is_byte_stable() {
        let profile = sample();
        let json = to_json(&profile);
        let parsed = from_json(&json).expect("parses");
        assert_eq!(parsed, profile);
        // Stable ordering: serializing the parse reproduces bytes exactly.
        assert_eq!(to_json(&parsed), json);
        // Canonical key order is fixed, not insertion-dependent.
        let label_at = json.find("\"label\"").unwrap();
        let wall_at = json.find("\"wall_ns\"").unwrap();
        let phases_at = json.find("\"phases\"").unwrap();
        assert!(label_at < wall_at && wall_at < phases_at);
    }

    #[test]
    fn empty_profile_round_trips() {
        let profile = SelfProfile::default();
        let parsed = from_json(&to_json(&profile)).expect("parses");
        assert_eq!(parsed, profile);
    }

    #[test]
    fn unknown_keys_and_labels_are_tolerated() {
        let json = r#"{
            "cc_prof": 1,
            "label": "fwd-compat",
            "wall_ns": 10,
            "future_key": {"nested": [1, 2, 3]},
            "phases": [
                {"phase": "arrival", "count": 1, "total_ns": 5, "self_ns": 5, "max_ns": 5,
                 "alloc_count": 0, "alloc_bytes": 0},
                {"phase": "not_a_phase_yet", "count": 9, "total_ns": 9, "self_ns": 9,
                 "max_ns": 9, "alloc_count": 0, "alloc_bytes": 0}
            ],
            "counters": [{"counter": "unknown_counter", "value": 1}]
        }"#;
        let parsed = from_json(json).expect("parses");
        assert_eq!(parsed.label, "fwd-compat");
        assert_eq!(parsed.phases.len(), 1, "unknown phase skipped");
        assert!(parsed.counters.is_empty(), "unknown counter skipped");
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_json("{").is_err());
        assert!(from_json("[]").is_err(), "missing version key");
        assert!(from_json("{\"cc_prof\": 99}").is_err(), "future schema");
        assert!(from_json("{\"cc_prof\": 1} trailing").is_err());
    }
}
