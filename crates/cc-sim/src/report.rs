//! Output of one simulation run.

use cc_metrics::ServiceStats;
use cc_types::{Arch, Cost, Fnv1a, ServiceRecord, StartKind};

// The canonical byte digest now lives in `cc_types::hash` so the replay
// layer (which must not depend on cc-sim) can share it; re-exported here
// because this crate's API established the name.
pub use cc_types::fnv1a;

/// Everything measured during one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Name of the policy that produced this run.
    pub policy: String,
    /// Aggregated service-time statistics.
    pub stats: ServiceStats,
    /// Raw per-invocation records (for CDFs and custom analyses).
    pub records: Vec<ServiceRecord>,
    /// Total keep-alive expenditure (reservations minus refunds).
    pub keep_alive_spend: Cost,
    /// Keep-alive spend per interval, in dollars (can dip negative when an
    /// interval's refunds exceed its reservations).
    pub spend_per_interval: Vec<f64>,
    /// Warm instances alive at each interval tick.
    pub warm_pool_series: Vec<f64>,
    /// Compressed warm instances alive at each interval tick.
    pub compressed_series: Vec<f64>,
    /// Times an instance was stored compressed on entering the pool.
    pub compression_events: u64,
    /// Compression events per interval (where in time compression happens —
    /// the paper's Fig. 11 signal).
    pub compression_events_per_interval: Vec<f64>,
    /// Fraction of execution cores busy at each interval tick.
    pub utilization_series: Vec<f64>,
    /// Warm instances dropped to make room for others.
    pub evictions: u64,
    /// Pre-warm commands dropped for lack of capacity.
    pub dropped_prewarms: u64,
    /// Wall-clock time spent inside policy callbacks (decision overhead).
    pub decision_time: std::time::Duration,
}

impl SimReport {
    /// FNV-1a digest over a canonical byte encoding of everything the
    /// simulator measures (wall-clock `decision_time` excluded — it is the
    /// one nondeterministic field).
    ///
    /// This is the workspace's equality oracle: the golden-determinism
    /// tests pin per-policy constants to it, and `simbench --shards N`
    /// compares sharded digests against serial ones to prove the parallel
    /// driver is behavior-preserving. The encoding is load-bearing — any
    /// change invalidates every recorded golden constant, so change it
    /// only together with the constants and an explanation.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.bytes(self.policy.as_bytes());
        h.u64(self.records.len() as u64);
        for r in &self.records {
            h.u64(r.function.index() as u64);
            h.u64(r.arrival.as_micros());
            h.u64(r.wait.as_micros());
            h.u64(r.start_penalty.as_micros());
            h.u64(r.execution.as_micros());
            h.u64(match r.kind {
                StartKind::WarmUncompressed => 0,
                StartKind::WarmCompressed => 1,
                StartKind::Cold => 2,
            });
            h.u64(match r.arch {
                Arch::X86 => 0,
                Arch::Arm => 1,
            });
        }
        h.u64(self.keep_alive_spend.as_picodollars());
        h.u64(self.evictions);
        h.u64(self.dropped_prewarms);
        h.u64(self.compression_events);
        for series in [
            &self.spend_per_interval,
            &self.warm_pool_series,
            &self.compressed_series,
            &self.compression_events_per_interval,
            &self.utilization_series,
        ] {
            h.u64(series.len() as u64);
            for &v in series {
                h.f64(v);
            }
        }
        h.f64(self.stats.mean_service_time_secs());
        h.f64(self.stats.warm_fraction());
        h.finish()
    }

    /// Mean service time in seconds — the paper's headline number.
    /// `0.0` (never NaN) for a zero-invocation run.
    pub fn mean_service_time_secs(&self) -> f64 {
        if self.stats.invocations() == 0 {
            return 0.0;
        }
        self.stats.mean_service_time_secs()
    }

    /// Warm-start fraction over the whole run.
    /// `0.0` (never NaN) for a zero-invocation run.
    pub fn warm_fraction(&self) -> f64 {
        if self.stats.invocations() == 0 {
            return 0.0;
        }
        self.stats.warm_fraction()
    }

    /// Decision overhead as a fraction of total simulated service time.
    /// `0.0` (never NaN) for a zero-invocation run.
    pub fn decision_overhead_fraction(&self) -> f64 {
        let total_service: f64 = self
            .records
            .iter()
            .map(|r| r.service_time().as_secs_f64())
            .sum();
        if total_service == 0.0 {
            return 0.0;
        }
        self.decision_time.as_secs_f64() / total_service
    }
}
