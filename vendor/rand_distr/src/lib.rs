//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements the distribution subset the workspace samples from —
//! [`Exp`], [`Normal`], [`LogNormal`] — via inverse-transform and
//! Box-Muller methods. All samplers are stateless (`&self`), so a
//! distribution can be shared and the stream is fully determined by the
//! generator passed in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, RngCore};

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// A distribution that can be sampled with any RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Exp, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1-u avoids ln(0) since u ∈ [0, 1).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be non-negative and both
    /// parameters finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller, using one of the two variates. Stateless sampling
        // costs one discarded variate but keeps `&self` and determinism.
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        let r = (-2.0 * (1.0 - u1).ln()).sqrt();
        let z = r * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// The generic parameter mirrors upstream's `LogNormal<F>`; only `f64` is
/// supported here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F = f64> {
    norm: Normal,
    _float: std::marker::PhantomData<F>,
}

impl LogNormal<f64> {
    /// Creates the distribution from the underlying normal's `mu` and
    /// `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal<f64>, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
            _float: std::marker::PhantomData,
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_converges() {
        let dist = Exp::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let dist = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let dist = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| dist.sample(&mut rng) > 0.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok(), "zero sigma is a point mass");
    }
}
