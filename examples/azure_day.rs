//! A full policy shoot-out on one simulated "Azure day".
//!
//! Generates a day-long synthetic trace, persists it through the Azure-style
//! combined CSV schema (round-tripping the I/O path a real-dataset user
//! would take), then runs every policy the paper compares — SitW,
//! FaasCache, IceBreaker, CodeCrunch, and the Oracle — under the same
//! keep-alive budget.
//!
//! ```sh
//! cargo run --release --example azure_day
//! ```

use codecrunch_suite::metrics::P2Quantile;
use codecrunch_suite::prelude::*;
use codecrunch_suite::trace::azure;

fn main() {
    let trace = SyntheticTrace::builder()
        .functions(120)
        .duration(SimDuration::from_mins(24 * 60))
        .seed(2024)
        .build();

    // Round-trip through the CSV schema, exactly as if the trace had been
    // loaded from the Azure dataset files.
    let mut csv = Vec::new();
    azure::write_combined_csv(&trace, &mut csv).expect("serialize trace");
    let trace = azure::read_combined_csv(&csv[..]).expect("parse trace");
    println!(
        "azure-style trace: {} functions, {} invocations, {:.1} KiB as CSV",
        trace.functions().len(),
        trace.invocations().len(),
        csv.len() as f64 / 1024.0
    );

    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    let unlimited = ClusterConfig::paper_cluster();

    // The paper normalizes every policy to SitW's natural spend.
    let mut sitw_probe = SitW::new();
    let natural = Simulation::new(unlimited.clone(), &trace, &workload).run(&mut sitw_probe);
    let minutes = trace.duration().as_mins_f64().max(1.0);
    let budget = natural.keep_alive_spend.scale(1.0 / minutes);
    println!(
        "SitW natural keep-alive spend: ${:.6} (budget ${:.9}/min granted to all policies)\n",
        natural.keep_alive_spend.as_dollars(),
        budget.as_dollars()
    );
    let config = unlimited.with_budget(budget);

    let mut policies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SitW::new()),
        Box::new(FaasCache::new()),
        Box::new(IceBreaker::new()),
        Box::new(CodeCrunch::new()),
        Box::new(Oracle::new(&trace)),
    ];

    println!(
        "{:<14} {:>12} {:>9} {:>9} {:>9} {:>12}",
        "policy", "service (s)", "p99 (s)", "warm %", "cold %", "spend ($)"
    );
    let mut results = Vec::new();
    for policy in policies.iter_mut() {
        let report = Simulation::new(config.clone(), &trace, &workload).run(policy.as_mut());
        // Stream the per-invocation service times through the P2 estimator
        // (constant memory even on the --large scale).
        let mut p99 = P2Quantile::new(0.99);
        for record in &report.records {
            p99.observe(record.service_time().as_secs_f64());
        }
        println!(
            "{:<14} {:>12.3} {:>9.2} {:>8.1}% {:>8.1}% {:>12.6}",
            report.policy,
            report.mean_service_time_secs(),
            p99.estimate().unwrap_or(0.0),
            report.warm_fraction() * 100.0,
            report.stats.cold_fraction() * 100.0,
            report.keep_alive_spend.as_dollars(),
        );
        results.push(report);
    }

    let crunch = results
        .iter()
        .find(|r| r.policy == "codecrunch")
        .expect("codecrunch ran");
    let oracle = results
        .iter()
        .find(|r| r.policy == "oracle")
        .expect("oracle ran");
    println!(
        "\nCodeCrunch is within {:.1}% of the Oracle's mean service time.",
        (crunch.mean_service_time_secs() / oracle.mean_service_time_secs() - 1.0) * 100.0
    );
}
