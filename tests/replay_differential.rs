//! Differential replay tests: the JSONL event stream is a *complete*
//! record of a run's telemetry.
//!
//! The contract: reconstructing [`Telemetry`] offline from an exported
//! event stream (`cc_replay::reconstruct`) reproduces the live
//! accumulator field-for-field — same digest, same per-interval table,
//! same final report, same snapshot line — for every policy, in both the
//! serial `JsonlSink` path and the sharded mux path at any worker count.
//! The stream must also pass the invariant auditor with zero violations,
//! which is the golden guarantee the CI audit smoke step relies on.

use codecrunch_suite::prelude::*;

/// Same mid-size scenario the golden determinism tests pin: large enough
/// to exercise eviction, compression, budget flow, and queueing across
/// both architectures.
fn scenario() -> (Trace, Workload, ClusterConfig) {
    let trace = SyntheticTrace::builder()
        .functions(60)
        .duration(SimDuration::from_mins(90))
        .seed(4242)
        .build();
    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.35);
    (trace, workload, config)
}

const POLICIES: [&str; 6] = [
    "fixed_keepalive",
    "sitw",
    "faascache",
    "icebreaker",
    "oracle",
    "codecrunch",
];

fn policy_under_test(name: &str) -> Box<dyn Scheduler> {
    let (trace, _, _) = scenario();
    match name {
        "fixed_keepalive" => Box::new(FixedKeepAlive::ten_minutes()),
        "sitw" => Box::new(SitW::new()),
        "faascache" => Box::new(FaasCache::new()),
        "icebreaker" => Box::new(IceBreaker::new()),
        "oracle" => Box::new(Oracle::new(&trace)),
        "codecrunch" => Box::new(CodeCrunch::new()),
        other => panic!("unknown policy {other}"),
    }
}

/// Asserts the replayed accumulator equals the live one on every exposed
/// surface: digest (every field), interval table, report, snapshot line.
fn assert_telemetry_equal(name: &str, live: &Telemetry, replayed: &Telemetry) {
    assert_eq!(
        replayed.digest(),
        live.digest(),
        "{name}: replayed telemetry digest diverges from live"
    );
    assert_eq!(
        replayed.interval_rows(),
        live.interval_rows(),
        "{name}: replayed interval table diverges from live"
    );
    assert_eq!(
        replayed.report(),
        live.report(),
        "{name}: replayed report diverges from live"
    );
    assert_eq!(
        replayed.snapshot_line(),
        live.snapshot_line(),
        "{name}: replayed snapshot diverges from live"
    );
}

/// Serial path: for every policy, a live run teeing into `Telemetry` and
/// a `JsonlSink` must be exactly reproducible from the JSONL bytes alone,
/// and the stream must satisfy every engine invariant.
#[test]
fn serial_replay_reproduces_live_telemetry_for_every_policy() {
    for name in POLICIES {
        let (trace, workload, config) = scenario();
        let mut live = Telemetry::new(config.interval);
        let mut jsonl = JsonlSink::new(Vec::new());
        let mut policy = policy_under_test(name);
        {
            let mut tee = Tee(&mut live, &mut jsonl);
            Simulation::new(config, &trace, &workload).run_with_sink(policy.as_mut(), &mut tee);
        }
        let bytes = jsonl.finish().expect("in-memory writer cannot fail");
        let text = String::from_utf8(bytes).expect("jsonl is utf-8");

        let log = decode_stream(&text).expect("live stream must decode");
        assert!(!log.tagged, "{name}: serial stream must be untagged");
        assert_eq!(log.shards.len(), 1);

        let audit = audit_log(&log, false);
        assert!(
            audit.is_clean(),
            "{name}: live stream violates engine invariants:\n{}",
            audit.summary()
        );

        let replayed = reconstruct(&log.shards[0]);
        assert_telemetry_equal(name, &live, &replayed);
    }
}

/// One policy replayed inside a shard; the live telemetry travels back
/// with the report so the merged stream can be checked against it.
fn shard_job<'a>(
    name: &'a str,
    trace: &'a Trace,
    workload: &'a Workload,
    config: &'a ClusterConfig,
) -> impl Fn(&mut SamplingSink<ChannelSink>) -> Telemetry + Send + 'a {
    move |sink: &mut SamplingSink<ChannelSink>| {
        let mut policy = policy_under_test(name);
        let mut telemetry = Telemetry::new(config.interval);
        let mut tee = Tee(&mut telemetry, sink);
        Simulation::new(config.clone(), trace, workload).run_with_sink(policy.as_mut(), &mut tee);
        telemetry
    }
}

fn sharded_stream(workers: usize) -> (Vec<Telemetry>, String) {
    let (trace, workload, config) = scenario();
    let jobs: Vec<_> = POLICIES
        .iter()
        .map(|&name| shard_job(name, &trace, &workload, &config))
        .collect();
    let shard_config = ShardedRunConfig {
        workers,
        channel_capacity: 1024,
        lossy: false,
        sample_every: 1,
    };
    let (results, merged, mux) =
        run_sharded_jsonl(jobs, &shard_config, Vec::new()).expect("in-memory mux cannot fail");
    assert_eq!(mux.dropped_total, 0, "blocking channel must be lossless");
    let live: Vec<Telemetry> = results
        .into_iter()
        .map(|r| r.outcome.expect("shard panicked"))
        .collect();
    (live, String::from_utf8(merged).expect("jsonl is utf-8"))
}

/// Sharded path: the merged shard-tagged stream is identical at any
/// worker count, every shard block passes the auditor, and each block
/// reconstructs its policy's live telemetry exactly.
#[test]
fn sharded_replay_reproduces_live_telemetry_per_shard() {
    let (live_w1, text_w1) = sharded_stream(1);
    let (_, text_w2) = sharded_stream(2);
    assert_eq!(
        text_w1, text_w2,
        "merged stream must not depend on the worker count"
    );

    let log = decode_stream(&text_w1).expect("merged stream must decode");
    assert!(log.tagged, "multi-shard stream must carry shard markers");
    assert_eq!(log.shards.len(), POLICIES.len());

    let audit = audit_log(&log, false);
    assert!(
        audit.is_clean(),
        "sharded stream violates engine invariants:\n{}",
        audit.summary()
    );

    for ((shard, live), name) in log.shards.iter().zip(&live_w1).zip(POLICIES) {
        let end = shard.end.expect("tagged shard must carry its end marker");
        assert_eq!(end.events, shard.events.len() as u64);
        assert_eq!(end.dropped, 0);
        let replayed = reconstruct(shard);
        assert_telemetry_equal(name, live, &replayed);
    }
}
