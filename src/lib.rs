//! # CodeCrunch reproduction suite
//!
//! A full reproduction of *CodeCrunch: Improving Serverless Performance
//! via Function Compression and Cost-Aware Warmup Location Optimization*
//! (Roy, Patel, Garg, Tiwari — ASPLOS 2024), built as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`codecrunch`] — the paper's scheduler (SRE optimization, `P_est`
//!   estimation, compression + x86/ARM selection under a budget).
//! - [`sim`] — the discrete-event cluster simulator standing in for the
//!   paper's 31-node EC2 testbed.
//! - [`policies`] — the baselines: SitW, FaasCache, IceBreaker, Oracle,
//!   and the Fig. 8 enhancement wrapper.
//! - [`trace`] — synthetic Azure-like traces, CSV I/O, perturbations.
//! - [`workload`] — the SeBS/ServerlessBench-calibrated profile catalog.
//! - [`compress`] — from-scratch LZ77/Huffman codecs, synthetic images,
//!   and the compression latency model.
//! - [`opt`] — discrete optimizers including Sequential Random Embedding.
//! - [`replay`] — offline event-log replay: JSONL decoding, stream
//!   invariant auditing, and exact telemetry reconstruction.
//! - [`serve`] — always-on streaming service mode: clock-paced ingestion
//!   with backpressure and graceful drain, proven batch-equivalent.
//! - [`fft`] — the FFT substrate behind the IceBreaker baseline.
//! - [`metrics`] / [`types`] — measurement and vocabulary types.
//!
//! # Quickstart
//!
//! ```
//! use codecrunch_suite::prelude::*;
//!
//! let trace = SyntheticTrace::builder()
//!     .functions(25)
//!     .duration(SimDuration::from_mins(90))
//!     .seed(7)
//!     .build();
//! let workload = Workload::from_trace(
//!     &trace,
//!     &Catalog::paper_catalog(),
//!     &CompressionModel::paper_default(),
//! );
//! let mut policy = CodeCrunch::new();
//! let report = Simulation::new(ClusterConfig::paper_cluster(), &trace, &workload)
//!     .run(&mut policy);
//! println!(
//!     "mean service {:.2}s, warm {:.0}%",
//!     report.mean_service_time_secs(),
//!     report.warm_fraction() * 100.0
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cc_compress as compress;
pub use cc_fft as fft;
pub use cc_metrics as metrics;
pub use cc_obs as obs;
pub use cc_opt as opt;
pub use cc_policies as policies;
pub use cc_replay as replay;
pub use cc_serve as serve;
pub use cc_shard as shard;
pub use cc_sim as sim;
pub use cc_trace as trace;
pub use cc_types as types;
pub use cc_workload as workload;
pub use codecrunch;

/// The most common imports for driving experiments.
pub mod prelude {
    pub use cc_bound::{
        dp_lower_bound, exhaustive_reference, local_search_upper_bound, measured_cost_of_records,
        measured_cost_of_report, segment_lower_bound, GapReport, HindsightInput, PolicyGap,
    };
    pub use cc_compress::{Codec, CompressionModel, CrunchFast, EntropyClass, FsImage};
    pub use cc_policies::{Enhanced, FaasCache, IceBreaker, Oracle, SitW};
    pub use cc_replay::{
        audit_log, audit_shard, decode_line, decode_stream, reconstruct, reconstruct_with_interval,
        AuditReport, ReplayLog, ShardStream,
    };
    pub use cc_serve::{
        Clock, IngestQueue, PacedSource, RealClock, ServeHandle, ServeOptions, ServeOutcome,
        Server, VirtualClock,
    };
    pub use cc_shard::{
        mux_jsonl, run_sharded, run_sharded_jsonl, ChannelSinkFactory, MuxReport, NullSinkFactory,
        ShardResult, ShardedRunConfig, SinkFactory,
    };
    pub use cc_sim::{
        fnv1a, run_parallel, run_streaming, ArrivalSource, BufferSink, ChannelSink,
        ChromeTraceSink, ClusterConfig, Event, EventSink, Fetch, FixedKeepAlive, JsonlSink,
        NullSink, ParallelOptions, ParallelOutcome, RuntimeKind, SamplingSink, Scheduler,
        SharedTelemetry, SimReport, Simulation, SliceSource, Tee, Telemetry,
    };
    pub use cc_trace::{Perturbation, StreamingTrace, SyntheticTrace, Trace};
    pub use cc_types::{
        Arch, Cost, FunctionId, Invocation, MemoryMb, SimDuration, SimTime, StartKind,
    };
    pub use cc_workload::{Catalog, Workload};
    pub use codecrunch::{ArchPolicy, CodeCrunch, CodeCrunchConfig};
}
