//! Quickstart: run CodeCrunch against the production-default fixed
//! keep-alive policy on a synthetic Azure-like trace and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use codecrunch_suite::prelude::*;

fn main() {
    // A three-hour trace of 80 functions with the default load peaks.
    let trace = SyntheticTrace::builder()
        .functions(80)
        .duration(SimDuration::from_mins(180))
        .seed(42)
        .build();
    println!(
        "trace: {} functions, {} invocations over {:.0} minutes",
        trace.functions().len(),
        trace.invocations().len(),
        trace.duration().as_mins_f64()
    );

    // Resolve every trace function against the benchmark catalog.
    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );

    let config = ClusterConfig::paper_cluster();

    // Baseline: keep everything alive 10 minutes, uncompressed.
    let mut fixed = FixedKeepAlive::ten_minutes();
    let baseline = Simulation::new(config.clone(), &trace, &workload).run(&mut fixed);

    // Give CodeCrunch the baseline's spend as its budget (the paper's
    // normalization), then run it.
    let minutes = trace.duration().as_mins_f64().max(1.0);
    let budget = baseline.keep_alive_spend.scale(1.0 / minutes);
    let mut crunch = CodeCrunch::new();
    let report = Simulation::new(config.with_budget(budget), &trace, &workload).run(&mut crunch);

    println!(
        "\n{:<22} {:>12} {:>10} {:>14}",
        "policy", "service (s)", "warm %", "spend ($)"
    );
    for r in [&baseline, &report] {
        println!(
            "{:<22} {:>12.3} {:>9.1}% {:>14.6}",
            r.policy,
            r.mean_service_time_secs(),
            r.warm_fraction() * 100.0,
            r.keep_alive_spend.as_dollars()
        );
    }

    let gain = 1.0 - report.mean_service_time_secs() / baseline.mean_service_time_secs();
    println!(
        "\nCodeCrunch improves mean service time by {:.1}% at a {:.1}% lower keep-alive cost \
         ({} compressions, {} evictions).",
        gain * 100.0,
        (1.0 - report.keep_alive_spend.as_dollars() / baseline.keep_alive_spend.as_dollars())
            * 100.0,
        report.compression_events,
        report.evictions,
    );
}
