//! Bit-granular I/O used by the entropy coder.

use crate::DecodeError;

/// Writes bits most-significant-first into a byte buffer.
///
/// # Example
///
/// ```
/// use cc_compress::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0b1, 1);
/// let bytes = w.finish();
/// assert_eq!(bytes, vec![0b1011_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits currently buffered in `acc` (0..8).
    pending: u32,
    acc: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Writes the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            let bit = ((value >> i) & 1) as u8;
            self.acc = (self.acc << 1) | bit;
            self.pending += 1;
            if self.pending == 8 {
                self.bytes.push(self.acc);
                self.acc = 0;
                self.pending = 0;
            }
        }
    }

    /// Number of complete bytes written so far (excludes buffered bits).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Flushes any buffered bits (zero-padded) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.pending > 0 {
            self.acc <<= 8 - self.pending;
            self.bytes.push(self.acc);
        }
        self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
///
/// # Example
///
/// ```
/// use cc_compress::BitReader;
///
/// let mut r = BitReader::new(&[0b1011_0000]);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bit()?, 1);
/// # Ok::<(), cc_compress::DecodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit index (global, 0-based, MSB-first).
    bit: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, bit: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] past the end of input.
    pub fn read_bit(&mut self) -> Result<u8, DecodeError> {
        let byte_idx = self.bit / 8;
        let &byte = self
            .bytes
            .get(byte_idx)
            .ok_or(DecodeError::Truncated { offset: byte_idx })?;
        let shift = 7 - (self.bit % 8) as u32;
        self.bit += 1;
        Ok((byte >> shift) & 1)
    }

    /// Reads `count` bits (MSB-first) into the low bits of a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] past the end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64, DecodeError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn writer_pads_final_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        assert_eq!(w.finish(), vec![0b1100_0000]);
    }

    #[test]
    fn empty_writer_is_empty() {
        assert!(BitWriter::new().finish().is_empty());
    }

    #[test]
    fn reader_errors_past_end() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(matches!(
            r.read_bit(),
            Err(DecodeError::Truncated { offset: 1 })
        ));
    }

    #[test]
    fn multi_byte_value() {
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.bits_read(), 16);
    }

    proptest! {
        #[test]
        fn roundtrip_bit_runs(values in prop::collection::vec((0u64..u64::MAX, 1u32..=64), 0..50)) {
            let mut w = BitWriter::new();
            for &(v, c) in &values {
                w.write_bits(v, c);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, c) in &values {
                let mask = if c == 64 { u64::MAX } else { (1u64 << c) - 1 };
                prop_assert_eq!(r.read_bits(c).unwrap(), v & mask);
            }
        }
    }
}
