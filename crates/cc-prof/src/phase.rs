//! The closed vocabulary of profiled phases and hot-path counters.
//!
//! Phases are a fixed enum rather than interned strings so the per-thread
//! aggregation tables are flat arrays indexed by discriminant — no hashing
//! on the probe path — and so the JSON export has one canonical order.

/// A profiled phase of the simulator's own execution (wall-clock, not
/// simulated time). Spans nest: a phase entered while another is open
/// becomes its child, and the parent's *self* time excludes the child.
///
/// The discriminant order is the canonical export order; add new phases at
/// the end to keep recorded baselines comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// One whole engine run (`Simulation::run*` / `run_streaming`): the
    /// root span every engine-loop phase nests under.
    EngineRun = 0,
    /// Handling one trace arrival: source chaining, the reuse/cold
    /// placement walk, and queueing.
    Arrival,
    /// Time inside policy callbacks (`on_arrival`, `place`,
    /// `on_completion`, `eviction_rank`, `on_interval`).
    PolicyDecision,
    /// Admitting a finished or pre-warmed instance into the warm pool
    /// (cap enforcement, budget reservation, slab insert).
    PoolAdmit,
    /// Evicting warm instances to make room (`make_room`): victim
    /// ranking and removal.
    PoolEvict,
    /// Draining due keep-alive expirations from the pool's calendar.
    ExpiryDrain,
    /// Handling one execution completion (node bookkeeping, the
    /// keep-alive decision, admission, pending retry).
    Completion,
    /// One optimization-interval tick: sampling, `on_interval`, and
    /// command execution.
    Tick,
    /// Retrying queued invocations after capacity was freed.
    PendingDrain,
    /// One SRE optimizer round (sub-problem sampling, inner descent,
    /// splice) inside a policy's interval callback.
    SreRound,
    /// The parallel pipeline's arrival-prefetch thread (includes time
    /// blocked on channel backpressure).
    Feeder,
    /// An encoder worker formatting one event batch into JSONL bytes.
    Encode,
    /// The ordered chunk writer (mux) thread of the parallel pipeline or
    /// the sharded driver.
    MuxWrite,
    /// The telemetry-folding thread of the parallel pipeline.
    TelemetryFold,
    /// A `BatchSink` flush on the decision thread: batch materialization
    /// and fan-out sends (includes send blocking).
    BatchFlush,
    /// One sharded-driver worker executing one shard job end to end.
    ShardWorker,
}

impl Phase {
    /// Every phase, in canonical (discriminant) order.
    pub const ALL: [Phase; 16] = [
        Phase::EngineRun,
        Phase::Arrival,
        Phase::PolicyDecision,
        Phase::PoolAdmit,
        Phase::PoolEvict,
        Phase::ExpiryDrain,
        Phase::Completion,
        Phase::Tick,
        Phase::PendingDrain,
        Phase::SreRound,
        Phase::Feeder,
        Phase::Encode,
        Phase::MuxWrite,
        Phase::TelemetryFold,
        Phase::BatchFlush,
        Phase::ShardWorker,
    ];

    /// Number of phases (array table size).
    pub const COUNT: usize = Phase::ALL.len();

    /// Stable snake_case label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            Phase::EngineRun => "engine_run",
            Phase::Arrival => "arrival",
            Phase::PolicyDecision => "policy_decision",
            Phase::PoolAdmit => "pool_admit",
            Phase::PoolEvict => "pool_evict",
            Phase::ExpiryDrain => "expiry_drain",
            Phase::Completion => "completion",
            Phase::Tick => "tick",
            Phase::PendingDrain => "pending_drain",
            Phase::SreRound => "sre_round",
            Phase::Feeder => "feeder",
            Phase::Encode => "encode",
            Phase::MuxWrite => "mux_write",
            Phase::TelemetryFold => "telemetry_fold",
            Phase::BatchFlush => "batch_flush",
            Phase::ShardWorker => "shard_worker",
        }
    }

    /// The phase with this label, if any (exporter inverse).
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.label() == label)
    }

    /// The phase with this discriminant, if in range.
    pub fn from_index(index: usize) -> Option<Phase> {
        Phase::ALL.get(index).copied()
    }

    /// The discriminant, as a table index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A monotonically accumulated hot-path counter. Counters are plain sums
/// with no span semantics; the `*_ns` ones accumulate nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PerfCounter {
    /// Warm-pool slab insertions.
    PoolInsert = 0,
    /// Warm-pool slab removals (reuse, eviction, expiry).
    PoolRemove,
    /// Candidate-index entries examined during warm-reuse walks.
    CandidateProbes,
    /// Nodes examined during cold-placement walks (slow path only).
    NodeScanProbes,
    /// Instances ranked by `eviction_rank` inside `make_room`.
    EvictionsRanked,
    /// Expirations drained from the calendar.
    ExpiryDrained,
    /// Batches flushed by `BatchSink`.
    BatchFlushes,
    /// Nanoseconds spent blocked in pipeline channel sends.
    ChannelSendBlockNs,
    /// Nanoseconds spent blocked in pipeline channel receives.
    ChannelRecvBlockNs,
    /// JSONL chunks written by the ordered mux.
    ChunksWritten,
}

impl PerfCounter {
    /// Every counter, in canonical (discriminant) order.
    pub const ALL: [PerfCounter; 10] = [
        PerfCounter::PoolInsert,
        PerfCounter::PoolRemove,
        PerfCounter::CandidateProbes,
        PerfCounter::NodeScanProbes,
        PerfCounter::EvictionsRanked,
        PerfCounter::ExpiryDrained,
        PerfCounter::BatchFlushes,
        PerfCounter::ChannelSendBlockNs,
        PerfCounter::ChannelRecvBlockNs,
        PerfCounter::ChunksWritten,
    ];

    /// Number of counters (array table size).
    pub const COUNT: usize = PerfCounter::ALL.len();

    /// Stable snake_case label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            PerfCounter::PoolInsert => "pool_insert",
            PerfCounter::PoolRemove => "pool_remove",
            PerfCounter::CandidateProbes => "candidate_probes",
            PerfCounter::NodeScanProbes => "node_scan_probes",
            PerfCounter::EvictionsRanked => "evictions_ranked",
            PerfCounter::ExpiryDrained => "expiry_drained",
            PerfCounter::BatchFlushes => "batch_flushes",
            PerfCounter::ChannelSendBlockNs => "channel_send_block_ns",
            PerfCounter::ChannelRecvBlockNs => "channel_recv_block_ns",
            PerfCounter::ChunksWritten => "chunks_written",
        }
    }

    /// The counter with this label, if any (exporter inverse).
    pub fn from_label(label: &str) -> Option<PerfCounter> {
        PerfCounter::ALL
            .iter()
            .copied()
            .find(|c| c.label() == label)
    }

    /// The discriminant, as a table index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_and_are_unique() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
            assert_eq!(Phase::from_label(phase.label()), Some(*phase));
            assert_eq!(Phase::from_index(i), Some(*phase));
        }
        for (i, counter) in PerfCounter::ALL.iter().enumerate() {
            assert_eq!(counter.index(), i);
            assert_eq!(PerfCounter::from_label(counter.label()), Some(*counter));
        }
        let mut labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.extend(PerfCounter::ALL.iter().map(|c| c.label()));
        let unique: std::collections::BTreeSet<&str> = labels.iter().copied().collect();
        assert_eq!(unique.len(), labels.len(), "labels must be unique");
    }

    #[test]
    fn out_of_range_lookups_fail() {
        assert_eq!(Phase::from_label("nope"), None);
        assert_eq!(Phase::from_index(Phase::COUNT), None);
        assert_eq!(PerfCounter::from_label("nope"), None);
    }
}
