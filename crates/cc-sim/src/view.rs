//! Read-only view of cluster state handed to policies.

use std::collections::HashMap;

use cc_types::{Arch, FunctionId, MemoryMb, SimTime};
use cc_workload::{FunctionSpec, Workload};

use crate::node::{NodeState, WarmId, WarmInstance};
use crate::{BudgetLedger, ClusterConfig};

/// A read-only snapshot of the cluster offered to policy callbacks.
///
/// Everything a policy may legitimately observe is here: the clock, node
/// states, warm-pool contents, the budget ledger, the resolved function
/// specs, and the current queueing pressure. Policies must not (and cannot)
/// see the future of the trace — except [`Oracle`](https://docs.rs/cc-policies),
/// which captures the trace at construction instead.
pub struct ClusterView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Static cluster configuration.
    pub config: &'a ClusterConfig,
    /// All node states.
    pub nodes: &'a [NodeState],
    /// All warm instances, by id.
    pub instances: &'a HashMap<WarmId, WarmInstance>,
    /// Warm-instance ids per function.
    pub by_function: &'a HashMap<FunctionId, Vec<WarmId>>,
    /// The budget ledger.
    pub ledger: &'a BudgetLedger,
    /// Resolved per-function specs.
    pub workload: &'a Workload,
    /// Number of invocations waiting for capacity.
    pub pending: usize,
}

impl ClusterView<'_> {
    /// The spec of one function.
    pub fn spec(&self, function: FunctionId) -> &FunctionSpec {
        self.workload.spec(function)
    }

    /// Warm instances currently alive for `function`.
    pub fn warm_instances_of(&self, function: FunctionId) -> Vec<&WarmInstance> {
        self.by_function
            .get(&function)
            .into_iter()
            .flatten()
            .filter_map(|id| self.instances.get(id))
            .collect()
    }

    /// Whether `function` has any warm instance.
    pub fn is_warm(&self, function: FunctionId) -> bool {
        self.by_function
            .get(&function)
            .is_some_and(|v| !v.is_empty())
    }

    /// Total free cores on nodes of `arch`.
    pub fn free_cores(&self, arch: Arch) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.arch == arch)
            .map(NodeState::free_cores)
            .sum()
    }

    /// Total free memory on nodes of `arch`.
    pub fn free_memory(&self, arch: Arch) -> MemoryMb {
        self.nodes
            .iter()
            .filter(|n| n.arch == arch)
            .map(NodeState::free_memory)
            .sum()
    }

    /// Total memory held by warm instances across the cluster.
    pub fn total_warm_memory(&self) -> MemoryMb {
        self.nodes.iter().map(|n| n.warm_memory).sum()
    }

    /// Number of warm instances across the cluster.
    pub fn warm_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of warm instances stored compressed.
    pub fn compressed_count(&self) -> usize {
        self.instances.values().filter(|i| i.compressed).count()
    }

    /// Fraction of all execution cores currently busy, in `[0, 1]` — the
    /// load signal policies use to detect peaks.
    pub fn busy_core_fraction(&self) -> f64 {
        let total: u32 = self.nodes.iter().map(|n| n.cores).sum();
        let busy: u32 = self.nodes.iter().map(|n| n.busy_cores).sum();
        if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64
        }
    }
}
