//! Identifier newtypes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a unique serverless function within a trace.
///
/// Function ids are dense (`0..n`) so they can index `Vec`-backed per-function
/// state tables.
///
/// # Example
///
/// ```
/// use cc_types::FunctionId;
///
/// let f = FunctionId::new(7);
/// assert_eq!(f.index(), 7);
/// assert_eq!(f.to_string(), "fn#7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FunctionId(u32);

impl FunctionId {
    /// Creates a function id from its dense index.
    pub const fn new(index: u32) -> Self {
        FunctionId(index)
    }

    /// Returns the dense index as a `usize` suitable for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for FunctionId {
    fn from(v: u32) -> Self {
        FunctionId(v)
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Identifies a worker node in the simulated cluster.
///
/// Node ids are dense across the whole cluster regardless of architecture.
///
/// # Example
///
/// ```
/// use cc_types::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index as a `usize` suitable for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_id_roundtrip() {
        let f = FunctionId::new(42);
        assert_eq!(f.index(), 42);
        assert_eq!(f.as_u32(), 42);
        assert_eq!(FunctionId::from(42u32), f);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(FunctionId::new(1) < FunctionId::new(2));
        assert!(NodeId::new(0) < NodeId::new(5));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(NodeId::new(9).to_string(), "node#9");
        assert_eq!(FunctionId::default().to_string(), "fn#0");
    }
}
