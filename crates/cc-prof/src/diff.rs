//! Profile comparison: attributes a perf regression to a phase instead of
//! "the stress replay got slower".
//!
//! Two comparison modes:
//!
//! * **absolute** (default): per-phase self-nanoseconds, right when the
//!   two profiles come from the same machine in the same session (a local
//!   before/after run).
//! * **relative** (`--relative`): per-phase *share* of wall clock
//!   (`self_ns / wall_ns`), right when the profiles come from different
//!   hosts — CI runners vs the machine that recorded the committed
//!   baseline — where absolute nanoseconds are incomparable but the shape
//!   of the time distribution is.
//!
//! In both modes a phase only regresses if it exceeds the growth
//! threshold *and* clears a minimum share of new wall clock, so phases in
//! the measurement-noise floor (a 2 µs phase tripling) cannot fail a
//! gate. Allocation bytes are compared per-phase with the same threshold
//! whenever both profiles measured them.

use std::fmt::Write as _;

use crate::phase::Phase;
use crate::profile::{fmt_bytes, fmt_ns, SelfProfile};

/// Knobs for [`diff_profiles`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Allowed growth as a ratio: 0.5 passes anything up to 1.5x the
    /// baseline, 2.0 up to 3x.
    pub threshold: f64,
    /// Compare wall-clock *shares* instead of absolute nanoseconds.
    pub relative: bool,
    /// A phase must hold at least this share of new wall clock to count
    /// as a regression (noise floor).
    pub min_share: f64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            threshold: 0.5,
            relative: false,
            min_share: 0.01,
        }
    }
}

/// What a phase's metric did between baseline and new.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold (or below the noise floor).
    Ok,
    /// Grew past the threshold while above the noise floor.
    Regressed,
    /// Absent in the baseline, now above the noise floor.
    New,
}

/// One phase's comparison.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Phase under comparison.
    pub phase: Phase,
    /// Baseline self time, ns.
    pub base_self_ns: u64,
    /// New self time, ns.
    pub new_self_ns: u64,
    /// Baseline share of wall clock.
    pub base_share: f64,
    /// New share of wall clock.
    pub new_share: f64,
    /// Baseline attributed alloc bytes.
    pub base_alloc_bytes: u64,
    /// New attributed alloc bytes.
    pub new_alloc_bytes: u64,
    /// Wall (or share) verdict.
    pub wall_verdict: Verdict,
    /// Alloc-bytes verdict ([`Verdict::Ok`] when not measured in both).
    pub alloc_verdict: Verdict,
}

/// The full comparison produced by [`diff_profiles`].
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Options the comparison ran under.
    pub options: DiffOptions,
    /// Baseline wall clock, ns.
    pub base_wall_ns: u64,
    /// New wall clock, ns.
    pub new_wall_ns: u64,
    /// Per-phase rows, canonical phase order, phases present in either.
    pub rows: Vec<DiffRow>,
    /// Whether total wall clock itself regressed (absolute mode only).
    pub wall_regressed: bool,
}

impl DiffReport {
    /// Whether anything regressed (drives the nonzero exit).
    pub fn has_regressions(&self) -> bool {
        self.wall_regressed
            || self
                .rows
                .iter()
                .any(|r| r.wall_verdict != Verdict::Ok || r.alloc_verdict != Verdict::Ok)
    }

    /// The regressed phase with the largest share increase, if any — the
    /// one-line attribution simbench prints on a baseline failure.
    pub fn top_regression(&self) -> Option<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.wall_verdict != Verdict::Ok || r.alloc_verdict != Verdict::Ok)
            .max_by(|a, b| {
                (a.new_share - a.base_share)
                    .partial_cmp(&(b.new_share - b.base_share))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Renders the human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mode = if self.options.relative {
            "relative (share of wall)"
        } else {
            "absolute (self ns)"
        };
        let _ = writeln!(
            out,
            "ccprof diff: mode {mode}, threshold {:.2}x, noise floor {:.1}% of wall",
            1.0 + self.options.threshold,
            100.0 * self.options.min_share
        );
        let _ = writeln!(
            out,
            "  wall: {} -> {}{}",
            fmt_ns(self.base_wall_ns),
            fmt_ns(self.new_wall_ns),
            if self.wall_regressed {
                "  REGRESSED"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>7} {:>7} {:>10} {:>10}  verdict",
            "phase", "base self", "new self", "base%", "new%", "base B", "new B"
        );
        for row in &self.rows {
            let verdict = match (row.wall_verdict, row.alloc_verdict) {
                (Verdict::Ok, Verdict::Ok) => "ok",
                (Verdict::New, _) => "NEW",
                (Verdict::Regressed, _) => "REGRESSED",
                (Verdict::Ok, Verdict::Regressed) => "ALLOC-REGRESSED",
                (Verdict::Ok, Verdict::New) => "ALLOC-NEW",
            };
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>12} {:>6.1}% {:>6.1}% {:>10} {:>10}  {verdict}",
                row.phase.label(),
                fmt_ns(row.base_self_ns),
                fmt_ns(row.new_self_ns),
                100.0 * row.base_share,
                100.0 * row.new_share,
                fmt_bytes(row.base_alloc_bytes),
                fmt_bytes(row.new_alloc_bytes),
            );
        }
        out
    }
}

fn share(profile: &SelfProfile, phase: Phase) -> f64 {
    profile.self_share(phase)
}

/// Compares `new` against `base` under `options`.
pub fn diff_profiles(base: &SelfProfile, new: &SelfProfile, options: DiffOptions) -> DiffReport {
    let growth_ok = |base_v: f64, new_v: f64| new_v <= base_v * (1.0 + options.threshold);
    let both_alloc = base.alloc.installed && new.alloc.installed;

    let mut rows = Vec::new();
    for phase in Phase::ALL {
        let base_row = base.row(phase);
        let new_row = new.row(phase);
        if base_row.is_none() && new_row.is_none() {
            continue;
        }
        let base_self_ns = base_row.map_or(0, |r| r.self_ns);
        let new_self_ns = new_row.map_or(0, |r| r.self_ns);
        let base_share = share(base, phase);
        let new_share = share(new, phase);
        let base_alloc_bytes = base_row.map_or(0, |r| r.alloc_bytes);
        let new_alloc_bytes = new_row.map_or(0, |r| r.alloc_bytes);

        let above_floor = new_share >= options.min_share;
        let (base_metric, new_metric) = if options.relative {
            (base_share, new_share)
        } else {
            (base_self_ns as f64, new_self_ns as f64)
        };
        let wall_verdict = if !above_floor || growth_ok(base_metric, new_metric) {
            Verdict::Ok
        } else if base_metric == 0.0 {
            Verdict::New
        } else {
            Verdict::Regressed
        };

        // Alloc bytes are host-independent, so always compared
        // absolutely; the floor is a share of total new alloc bytes.
        let alloc_floor = options.min_share * new.alloc.total_bytes as f64;
        let alloc_verdict = if !both_alloc
            || (new_alloc_bytes as f64) < alloc_floor
            || growth_ok(base_alloc_bytes as f64, new_alloc_bytes as f64)
        {
            Verdict::Ok
        } else if base_alloc_bytes == 0 {
            Verdict::New
        } else {
            Verdict::Regressed
        };

        rows.push(DiffRow {
            phase,
            base_self_ns,
            new_self_ns,
            base_share,
            new_share,
            base_alloc_bytes,
            new_alloc_bytes,
            wall_verdict,
            alloc_verdict,
        });
    }

    let wall_regressed = !options.relative
        && base.wall_ns > 0
        && !growth_ok(base.wall_ns as f64, new.wall_ns as f64);

    DiffReport {
        options,
        base_wall_ns: base.wall_ns,
        new_wall_ns: new.wall_ns,
        rows,
        wall_regressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PhaseRow;

    fn profile(wall_ns: u64, rows: &[(Phase, u64, u64)]) -> SelfProfile {
        SelfProfile {
            label: "t".to_string(),
            wall_ns,
            phases: rows
                .iter()
                .map(|&(phase, self_ns, alloc_bytes)| PhaseRow {
                    phase,
                    count: 1,
                    total_ns: self_ns,
                    self_ns,
                    max_ns: self_ns,
                    alloc_count: u64::from(alloc_bytes > 0),
                    alloc_bytes,
                })
                .collect(),
            ..SelfProfile::default()
        }
    }

    #[test]
    fn within_threshold_passes() {
        let base = profile(1_000_000, &[(Phase::Arrival, 400_000, 0)]);
        let new = profile(1_100_000, &[(Phase::Arrival, 500_000, 0)]);
        let report = diff_profiles(&base, &new, DiffOptions::default());
        assert!(!report.has_regressions(), "{}", report.render());
    }

    #[test]
    fn injected_regression_is_caught_and_attributed() {
        let base = profile(
            1_000_000,
            &[
                (Phase::Arrival, 400_000, 0),
                (Phase::Completion, 300_000, 0),
            ],
        );
        let new = profile(
            2_000_000,
            &[
                (Phase::Arrival, 1_400_000, 0),
                (Phase::Completion, 310_000, 0),
            ],
        );
        let report = diff_profiles(&base, &new, DiffOptions::default());
        assert!(report.has_regressions());
        assert!(report.wall_regressed, "wall doubled");
        let top = report.top_regression().expect("attributed");
        assert_eq!(top.phase, Phase::Arrival);
        assert_eq!(top.wall_verdict, Verdict::Regressed);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn relative_mode_ignores_uniform_slowdown() {
        // Same shape, 3x slower host: absolute mode would fail, relative
        // mode must not.
        let base = profile(1_000_000, &[(Phase::Arrival, 400_000, 0)]);
        let new = profile(3_000_000, &[(Phase::Arrival, 1_200_000, 0)]);
        let relative = DiffOptions {
            relative: true,
            ..DiffOptions::default()
        };
        assert!(!diff_profiles(&base, &new, relative).has_regressions());
        assert!(diff_profiles(&base, &new, DiffOptions::default()).has_regressions());
    }

    #[test]
    fn relative_mode_catches_shape_change() {
        let base = profile(
            1_000_000,
            &[
                (Phase::Arrival, 100_000, 0),
                (Phase::Completion, 800_000, 0),
            ],
        );
        let new = profile(
            1_000_000,
            &[
                (Phase::Arrival, 600_000, 0),
                (Phase::Completion, 300_000, 0),
            ],
        );
        let relative = DiffOptions {
            relative: true,
            threshold: 2.0,
            ..DiffOptions::default()
        };
        let report = diff_profiles(&base, &new, relative);
        assert!(report.has_regressions());
        assert_eq!(report.top_regression().unwrap().phase, Phase::Arrival);
    }

    #[test]
    fn noise_floor_suppresses_tiny_phases() {
        // A 2 µs phase tripling is irrelevant at 1 ms wall.
        let base = profile(1_000_000, &[(Phase::Tick, 2_000, 0)]);
        let new = profile(1_000_000, &[(Phase::Tick, 6_000, 0)]);
        let report = diff_profiles(&base, &new, DiffOptions::default());
        assert!(!report.has_regressions());
    }

    #[test]
    fn new_phase_above_floor_is_flagged() {
        let base = profile(1_000_000, &[(Phase::Arrival, 400_000, 0)]);
        let new = profile(
            1_000_000,
            &[(Phase::Arrival, 400_000, 0), (Phase::PoolEvict, 200_000, 0)],
        );
        let report = diff_profiles(&base, &new, DiffOptions::default());
        assert!(report.has_regressions());
        let evict = report
            .rows
            .iter()
            .find(|r| r.phase == Phase::PoolEvict)
            .unwrap();
        assert_eq!(evict.wall_verdict, Verdict::New);
    }

    #[test]
    fn alloc_regression_requires_both_measured() {
        let mut base = profile(1_000_000, &[(Phase::Arrival, 400_000, 1_000_000)]);
        let mut new = profile(1_000_000, &[(Phase::Arrival, 400_000, 10_000_000)]);
        // Not installed on either side: no alloc verdicts.
        let report = diff_profiles(&base, &new, DiffOptions::default());
        assert!(!report.has_regressions());

        base.alloc.installed = true;
        base.alloc.total_bytes = 1_000_000;
        new.alloc.installed = true;
        new.alloc.total_bytes = 10_000_000;
        let report = diff_profiles(&base, &new, DiffOptions::default());
        assert!(report.has_regressions());
        assert_eq!(report.rows[0].alloc_verdict, Verdict::Regressed);
        assert!(report.render().contains("ALLOC-REGRESSED"));
    }
}
