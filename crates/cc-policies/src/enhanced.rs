//! The Fig. 8 enhancement wrapper: compression + x86/ARM selection for any
//! baseline policy.

use cc_sim::{ClusterView, Command, KeepDecision, Scheduler, WarmInstance};
use cc_types::{Arch, FunctionId, SimTime};

use crate::faster_arch;

/// Wraps any baseline with CodeCrunch's two mechanical ideas while leaving
/// the baseline's keep-alive decision logic intact (the paper's "enhanced
/// SitW/FaasCache/IceBreaker" treatment):
///
/// 1. **Heterogeneity**: cold starts are placed on the architecture that
///    runs the function faster, overriding the baseline's placement.
/// 2. **Compression**: when the baseline keeps an instance alive and the
///    function is compression-favorable on its node's architecture, the
///    instance is stored compressed whenever the warm pool is under
///    memory pressure (≥ the pressure threshold of the per-node cap).
///
/// # Example
///
/// ```
/// use cc_policies::{Enhanced, FaasCache};
/// use cc_sim::Scheduler;
///
/// let enhanced = Enhanced::new(FaasCache::new());
/// assert_eq!(enhanced.name(), "enhanced-faascache");
/// ```
#[derive(Debug, Clone)]
pub struct Enhanced<P> {
    inner: P,
    name: String,
    pressure_threshold: f64,
}

impl<P: Scheduler> Enhanced<P> {
    /// Wraps `inner` with the default pressure threshold (50% of the warm
    /// cap in use).
    pub fn new(inner: P) -> Enhanced<P> {
        let name = format!("enhanced-{}", inner.name());
        Enhanced {
            inner,
            name,
            pressure_threshold: 0.5,
        }
    }

    /// Adjusts the warm-memory pressure threshold above which favorable
    /// functions are compressed.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `[0, 1]`.
    pub fn with_pressure_threshold(mut self, threshold: f64) -> Enhanced<P> {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        self.pressure_threshold = threshold;
        self
    }

    /// Access to the wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn under_pressure(&self, view: &ClusterView<'_>) -> bool {
        let cap = view.config.warm_memory_cap().as_mb() as f64 * view.config.total_nodes() as f64;
        if cap <= 0.0 {
            return false;
        }
        view.total_warm_memory().as_mb() as f64 / cap >= self.pressure_threshold
    }
}

impl<P: Scheduler> Scheduler for Enhanced<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_arrival(&mut self, function: FunctionId, now: SimTime) {
        self.inner.on_arrival(function, now);
    }

    fn place(&mut self, function: FunctionId, view: &ClusterView<'_>) -> Arch {
        // Let the baseline observe the placement for its own bookkeeping,
        // then override with the function's faster architecture.
        let _ = self.inner.place(function, view);
        faster_arch(function, view)
    }

    fn on_completion(
        &mut self,
        function: FunctionId,
        arch: Arch,
        view: &ClusterView<'_>,
    ) -> KeepDecision {
        let base = self.inner.on_completion(function, arch, view);
        if base.keep_alive.is_zero() || base.compress {
            return base;
        }
        let spec = view.spec(function);
        if spec.compression_favorable(arch) && self.under_pressure(view) {
            KeepDecision::compressed(base.keep_alive)
        } else {
            base
        }
    }

    fn on_interval(&mut self, view: &ClusterView<'_>) -> Vec<Command> {
        self.inner.on_interval(view)
    }

    fn eviction_rank(&mut self, instance: &WarmInstance, view: &ClusterView<'_>) -> f64 {
        self.inner.eviction_rank(instance, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SitW;
    use cc_compress::CompressionModel;
    use cc_sim::{ClusterConfig, FixedKeepAlive, Simulation};
    use cc_trace::SyntheticTrace;
    use cc_types::SimDuration;
    use cc_workload::{Catalog, Workload};

    fn setup() -> (cc_trace::Trace, Workload) {
        let trace = SyntheticTrace::builder()
            .functions(50)
            .duration(SimDuration::from_mins(240))
            .seed(51)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        (trace, workload)
    }

    #[test]
    fn enhancement_compresses_under_pressure() {
        let (trace, workload) = setup();
        // Tight warm cap creates sustained pressure.
        let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.25);
        let mut enhanced = Enhanced::new(FixedKeepAlive::ten_minutes());
        let report = Simulation::new(config, &trace, &workload).run(&mut enhanced);
        assert!(
            report.compression_events > 0,
            "pressure should trigger compression"
        );
    }

    #[test]
    fn enhancement_does_not_regress_service_time_much() {
        let (trace, workload) = setup();
        let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.25);
        let mut base = SitW::new();
        let mut enhanced = Enhanced::new(SitW::new());
        let r_base = Simulation::new(config.clone(), &trace, &workload).run(&mut base);
        let r_enh = Simulation::new(config, &trace, &workload).run(&mut enhanced);
        // The paper reports >10% improvement; at small scale we only insist
        // the enhancement does not hurt.
        assert!(
            r_enh.mean_service_time_secs() <= r_base.mean_service_time_secs() * 1.05,
            "enhanced {}s vs base {}s",
            r_enh.mean_service_time_secs(),
            r_base.mean_service_time_secs()
        );
    }

    #[test]
    fn name_reflects_wrapping() {
        assert_eq!(Enhanced::new(SitW::new()).name(), "enhanced-sitw");
    }

    #[test]
    #[should_panic(expected = "threshold must be in [0, 1]")]
    fn rejects_bad_threshold() {
        let _ = Enhanced::new(SitW::new()).with_pressure_threshold(2.0);
    }
}
