//! Fig. 13: sensitivity to the keep-alive budget.
//!
//! Paper result: CodeCrunch at 0.5× SitW's spend already matches SitW's
//! service time, and at 0.25× it is only ≈5% worse; more budget keeps
//! helping.

use serde_json::json;

use cc_policies::SitW;
use codecrunch::CodeCrunch;

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// Fig. 13 experiment.
pub struct Fig13;

impl Experiment for Fig13 {
    fn id(&self) -> &'static str {
        "fig13"
    }

    fn title(&self) -> &'static str {
        "CodeCrunch service time vs keep-alive budget, against the SitW reference (Fig. 13)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let unlimited = scale.cluster();
        let sitw_budget = sitw_budget_per_interval(&trace, &workload, &unlimited);

        // The dashed reference line: SitW under its own (full) budget.
        let mut sitw = SitW::new();
        let sitw_report = run_policy(
            &mut sitw,
            &unlimited.clone().with_budget(sitw_budget),
            &trace,
            &workload,
        );
        let reference = sitw_report.mean_service_time_secs();

        let multipliers = [0.25, 0.5, 1.0, 2.0];
        let mut lines = vec![format!(
            "SitW reference service time: {reference:.3}s at budget 1.0x"
        )];
        let mut rows = Vec::new();
        for &m in &multipliers {
            let config = unlimited.clone().with_budget(sitw_budget.scale(m));
            let mut policy = CodeCrunch::new();
            let report = run_policy(&mut policy, &config, &trace, &workload);
            lines.push(format!(
                "codecrunch @ {m:>4.2}x budget: {:>8.3}s ({:+.1}% vs SitW), warm {:.1}%, spend ${:.6}",
                report.mean_service_time_secs(),
                (report.mean_service_time_secs() / reference - 1.0) * 100.0,
                report.warm_fraction() * 100.0,
                report.keep_alive_spend.as_dollars()
            ));
            rows.push(json!({
                "budget_multiplier": m,
                "mean_service_secs": report.mean_service_time_secs(),
                "warm_fraction": report.warm_fraction(),
                "spend_dollars": report.keep_alive_spend.as_dollars(),
            }));
        }
        lines.push("(paper: ~SitW-parity at 0.5x, +5% at 0.25x of SitW's expenditure)".to_owned());

        ExperimentOutput::new(
            self.id(),
            lines,
            json!({"sitw_reference_secs": reference, "rows": rows}),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_monotone_in_budget() {
        let out = Fig13.run(&Scale::smoke());
        let rows = out.data["rows"].as_array().unwrap();
        let services: Vec<f64> = rows
            .iter()
            .map(|r| r["mean_service_secs"].as_f64().unwrap())
            .collect();
        // More budget should never make things substantially worse.
        for pair in services.windows(2) {
            assert!(
                pair[1] <= pair[0] * 1.05,
                "service should not degrade with budget: {services:?}"
            );
        }
    }

    #[test]
    fn full_budget_codecrunch_not_worse_than_sitw() {
        let out = Fig13.run(&Scale::smoke());
        let reference = out.data["sitw_reference_secs"].as_f64().unwrap();
        let at_full = out.data["rows"][2]["mean_service_secs"].as_f64().unwrap();
        assert!(
            at_full <= reference * 1.05,
            "codecrunch @1x {at_full} vs sitw {reference}"
        );
    }
}
