//! Sequential Random Embedding — the paper's optimizer.

use rand::rngs::StdRng;
use rand::SeedableRng;

use cc_types::FnChoice;

use crate::separable::{DescentScratch, TermBaseline};
use crate::space::{
    combine_solutions_into, sample_subproblems_into, IndexGroups, SubproblemScratch,
};
use crate::{CoordinateDescent, Objective, OptOutcome};

/// Reusable working storage for [`Sre`]'s round loop.
///
/// One SRE run churns through a family of short-lived buffers — sampling
/// weights, sub-problem index groups, the working-solution copy handed to
/// the inner descent, the touched-index list, the per-round snapshots, and
/// the descent's own working vectors. A long-lived scheduler that
/// re-optimizes every interval can hold one `SreScratch` and pass it to
/// the `_with_scratch` entry points so those buffers are allocated once
/// and recycled forever after: a steady-state serial round performs
/// **zero** heap allocations (the parallel path still allocates per-thread
/// copies). Groups and round snapshots are flat index-range-over-buffer
/// layouts rather than nested `Vec<Vec<_>>`, so refilling them never
/// re-allocates. Results are bit-identical with or without scratch reuse;
/// the scratch carries no state between runs other than spare capacity.
#[derive(Debug, Default)]
pub struct SreScratch {
    subproblems: SubproblemScratch,
    groups: IndexGroups,
    touched: Vec<usize>,
    /// Round snapshots, rounds-major: round `r` is `[r * n, (r + 1) * n)`.
    round_solutions: Vec<FnChoice>,
    /// The solution copy handed to the serial inner descent; recycled from
    /// the returned outcome after every group.
    work: Vec<FnChoice>,
    /// Per-round pending splice list `(function index, optimized choice)`,
    /// applied only after every group has optimized against the same
    /// pre-round working solution.
    splices: Vec<(usize, FnChoice)>,
    /// Output buffer for the final mean/majority combination.
    combined: Vec<FnChoice>,
    /// Pre-round snapshot used by the probe's accepted-move diff.
    probe_snapshot: Vec<FnChoice>,
    descent: DescentScratch,
    /// Shared per-round term tables: every sub-problem in a round descends
    /// from the same pre-round solution, so the separable path computes
    /// the O(N) service/cost baseline once per round here instead of once
    /// per sub-problem (see [`TermBaseline`]).
    baseline: TermBaseline,
}

/// The inner sub-problem optimizer handed to the round loop: takes a copy
/// of the working solution, the sampled function-index group, the caller's
/// descent scratch, and the round's shared term baseline (empty on the
/// generic, non-separable paths); returns the optimized copy.
type SubsetOptimizer<'a> =
    dyn Fn(Vec<FnChoice>, &[usize], &mut DescentScratch, &TermBaseline) -> OptOutcome + Sync + 'a;

/// Refreshes the shared [`TermBaseline`] from the round's starting
/// solution; `None` on the generic paths, which have no term structure.
type BaselinePrepare<'a> = dyn Fn(&[FnChoice], &mut TermBaseline) + 'a;

/// Per-round progress snapshot, reported through the optional probe of
/// [`Sre::optimize_probed`] / [`Sre::optimize_separable_probed`].
///
/// Probing is observation-only: the probed and unprobed runs produce
/// identical solutions, costs, and [`OptOutcome::evaluations`] (the one
/// extra objective evaluation needed for [`SreRoundStats::cost`] is not
/// counted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SreRoundStats {
    /// Round ordinal (0-based).
    pub round: u32,
    /// Disjoint sub-problems sampled this round.
    pub subproblems: u32,
    /// Choice dimensions optimized this round (3 per sampled function).
    pub dimensions: u32,
    /// Objective value of the spliced (and repaired) working solution.
    pub cost: f64,
    /// Coordinates (arch / compress / keep-alive each count) whose value
    /// changed versus the round's start.
    pub accepted_moves: u64,
    /// Objective evaluations consumed by this round's searches and repair.
    pub evaluations: u64,
}

/// Sequential Random Embedding over the choice space.
///
/// Per round, SRE samples disjoint low-dimensional sub-problems
/// (probabilistically favoring rarely-optimized functions), runs the inner
/// coordinate descent on each **in parallel**, and splices the sub-problem
/// optima back into the working solution. After `rounds` rounds, the final
/// answer is the per-dimension mean/majority of the round solutions — or
/// the best single round if the combination turns out infeasible or worse.
///
/// The per-round dimensionality (`num_subproblems × funcs_per_subproblem ×
/// 3 × rounds`) is kept roughly 10× below the full `3N`, per the paper.
///
/// # Example
///
/// ```
/// use cc_opt::{Objective, Sre};
/// use cc_types::{Arch, FnChoice};
///
/// struct PreferArm;
/// impl Objective for PreferArm {
///     fn num_functions(&self) -> usize {
///         12
///     }
///     fn evaluate(&self, s: &[FnChoice]) -> f64 {
///         s.iter().filter(|c| c.arch == Arch::X86).count() as f64
///     }
/// }
///
/// let mut counts = vec![0u32; 12];
/// let start = vec![FnChoice::production_default(); 12];
/// let out = Sre::scaled_to(12).optimize(&PreferArm, start, &mut counts);
/// // Three rounds of 2-function sub-problems move ~6 functions to ARM.
/// assert!(out.cost <= 7.0, "sub-problem optima spliced in, got {}", out.cost);
/// ```
#[derive(Debug, Clone)]
pub struct Sre {
    /// Functions per sub-problem (`D_SRE / 3` in the paper's notation).
    pub funcs_per_subproblem: usize,
    /// Sub-problems per round (`N_SRE`).
    pub num_subproblems: usize,
    /// Optimization rounds (`P_num`).
    pub rounds: usize,
    /// RNG seed for sub-problem sampling.
    pub seed: u64,
    /// Inner sub-problem optimizer.
    pub inner: CoordinateDescent,
    /// Run sub-problems on parallel threads (deterministic either way).
    pub parallel: bool,
}

impl Sre {
    /// Scales the SRE parameters to `n` functions the way the paper
    /// describes: sub-problem count and size grow with `n`. Each round
    /// samples roughly a third of the functions into sub-problems of at
    /// most a dozen, so across the three rounds most functions are
    /// revisited while every individual search stays low-dimensional —
    /// the joint spaces actually searched are exponentially smaller than
    /// the full `244^n` space.
    pub fn scaled_to(n: usize) -> Sre {
        let funcs_per_subproblem = n.div_ceil(24).clamp(2, 12);
        let num_subproblems = n.div_ceil(3 * funcs_per_subproblem).clamp(1, 16);
        Sre {
            funcs_per_subproblem,
            num_subproblems,
            rounds: 3,
            seed: 0,
            inner: CoordinateDescent {
                max_rounds: 16,
                eval_budget: 4_000,
            },
            parallel: true,
        }
    }

    /// Returns a copy with a different sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Sre {
        self.seed = seed;
        self
    }

    /// Optimizes starting from `start`.
    ///
    /// `opt_counts[i]` is how many times function `i` has been optimized in
    /// past rounds/intervals; SRE samples inversely to it and increments it
    /// for every function it optimizes (the caller persists it across
    /// intervals).
    ///
    /// # Panics
    ///
    /// Panics if `start` or `opt_counts` disagree with the objective size.
    pub fn optimize(
        &self,
        objective: &dyn Objective,
        start: Vec<FnChoice>,
        opt_counts: &mut [u32],
    ) -> OptOutcome {
        let inner = self.inner.clone();
        let mut scratch = SreScratch::default();
        self.run_rounds(
            objective,
            start,
            opt_counts,
            None,
            &move |s, group, _scratch, _baseline| inner.optimize_subset(objective, s, group),
            None,
            &mut scratch,
        )
    }

    /// [`Sre::optimize`] with a per-round progress probe (observation only;
    /// the returned outcome is identical to the unprobed run).
    pub fn optimize_probed(
        &self,
        objective: &dyn Objective,
        start: Vec<FnChoice>,
        opt_counts: &mut [u32],
        probe: &mut dyn FnMut(SreRoundStats),
    ) -> OptOutcome {
        let inner = self.inner.clone();
        let mut scratch = SreScratch::default();
        self.run_rounds(
            objective,
            start,
            opt_counts,
            Some(probe),
            &move |s, group, _scratch, _baseline| inner.optimize_subset(objective, s, group),
            None,
            &mut scratch,
        )
    }

    /// [`Sre::optimize`] specialized for [separable
    /// objectives](crate::SeparableObjective): the inner descent scores
    /// moves in O(1) via term deltas, keeping SRE's total cost linear in
    /// the number of invoked functions.
    pub fn optimize_separable<T: crate::SeparableObjective + ?Sized>(
        &self,
        objective: &T,
        start: Vec<FnChoice>,
        opt_counts: &mut [u32],
    ) -> OptOutcome {
        let mut scratch = SreScratch::default();
        self.optimize_separable_with_scratch(objective, start, opt_counts, &mut scratch)
    }

    /// [`Sre::optimize_separable`] reusing caller-held working storage.
    ///
    /// Identical result to the plain variant; a scheduler that optimizes
    /// every interval should hold one [`SreScratch`] and pass it here so
    /// the round loop stops allocating in steady state.
    pub fn optimize_separable_with_scratch<T: crate::SeparableObjective + ?Sized>(
        &self,
        objective: &T,
        start: Vec<FnChoice>,
        opt_counts: &mut [u32],
        scratch: &mut SreScratch,
    ) -> OptOutcome {
        let view = crate::SeparableView(objective);
        let inner = self.inner.clone();
        let prepare = |solution: &[FnChoice], baseline: &mut TermBaseline| {
            baseline.compute(objective, solution)
        };
        self.run_rounds(
            &view,
            start,
            opt_counts,
            None,
            &move |s, group, scratch, baseline| {
                inner.optimize_separable_subset_seeded(objective, s, group, scratch, baseline)
            },
            Some(&prepare),
            scratch,
        )
    }

    /// [`Sre::optimize_separable`] with a per-round progress probe
    /// (observation only; the returned outcome is identical to the
    /// unprobed run).
    pub fn optimize_separable_probed<T: crate::SeparableObjective + ?Sized>(
        &self,
        objective: &T,
        start: Vec<FnChoice>,
        opt_counts: &mut [u32],
        probe: &mut dyn FnMut(SreRoundStats),
    ) -> OptOutcome {
        let mut scratch = SreScratch::default();
        self.optimize_separable_probed_with_scratch(
            objective,
            start,
            opt_counts,
            probe,
            &mut scratch,
        )
    }

    /// [`Sre::optimize_separable_probed`] reusing caller-held working
    /// storage (see [`Sre::optimize_separable_with_scratch`]).
    pub fn optimize_separable_probed_with_scratch<T: crate::SeparableObjective + ?Sized>(
        &self,
        objective: &T,
        start: Vec<FnChoice>,
        opt_counts: &mut [u32],
        probe: &mut dyn FnMut(SreRoundStats),
        scratch: &mut SreScratch,
    ) -> OptOutcome {
        let view = crate::SeparableView(objective);
        let inner = self.inner.clone();
        let prepare = |solution: &[FnChoice], baseline: &mut TermBaseline| {
            baseline.compute(objective, solution)
        };
        self.run_rounds(
            &view,
            start,
            opt_counts,
            Some(probe),
            &move |s, group, scratch, baseline| {
                inner.optimize_separable_subset_seeded(objective, s, group, scratch, baseline)
            },
            Some(&prepare),
            scratch,
        )
    }

    /// Shared SRE machinery, parameterized over the sub-problem optimizer.
    ///
    /// All transient buffers (the flat group index list, the working
    /// solution handed to the descent, the pending-splice list, touched
    /// indices, the flat round snapshots, and the combination output) live
    /// in `scratch` and are recycled, so a caller reusing one scratch
    /// across intervals performs zero steady-state allocations on the
    /// serial path. Only the parallel path allocates (threads need owned
    /// solutions and their own descent scratch).
    ///
    /// Every group optimizes against the same pre-round working solution:
    /// splices are collected and applied only after the whole round, on
    /// both the serial and parallel paths, so the two agree bit-for-bit
    /// (a budget-constrained descent reads the *total* cost of its start,
    /// which an early in-place splice would perturb).
    ///
    /// That shared starting point is also why `prepare` exists: on the
    /// separable paths it refreshes the round's [`TermBaseline`] from the
    /// working solution exactly once, and every sub-problem descent seeds
    /// from it instead of re-deriving the O(N) term tables. Bit-identical
    /// either way — the baseline holds the very floats each descent would
    /// have computed.
    #[allow(clippy::too_many_arguments)]
    fn run_rounds(
        &self,
        objective: &dyn Objective,
        start: Vec<FnChoice>,
        opt_counts: &mut [u32],
        mut probe: Option<&mut dyn FnMut(SreRoundStats)>,
        optimize_subset: &SubsetOptimizer<'_>,
        prepare: Option<&BaselinePrepare<'_>>,
        scratch: &mut SreScratch,
    ) -> OptOutcome {
        let n = objective.num_functions();
        assert_eq!(start.len(), n, "start length must match objective");
        assert_eq!(
            opt_counts.len(),
            n,
            "opt_counts length must match objective"
        );
        if n == 0 {
            return OptOutcome {
                solution: start,
                cost: 0.0,
                evaluations: 0,
            };
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut current = start;
        let mut evaluations = 0u64;
        // Split-borrow the scratch once: the round loop needs several of
        // its buffers live at the same time.
        let SreScratch {
            subproblems,
            groups,
            touched,
            round_solutions,
            work,
            splices,
            combined,
            probe_snapshot,
            descent,
            baseline,
        } = scratch;
        round_solutions.clear();

        for round in 0..self.rounds {
            // Wall-clock probe (one relaxed atomic when profiling is off):
            // the optimizer is reached through `dyn Scheduler`, so the
            // engine's monomorphized profiler type cannot flow here.
            let _round_span = cc_prof::DynScope::new(cc_prof::Phase::SreRound);
            // Probe-only bookkeeping: a pre-round snapshot for the
            // accepted-move diff, and the evaluation watermark. Neither
            // costs anything on the unprobed path.
            if probe.is_some() {
                probe_snapshot.clear();
                probe_snapshot.extend_from_slice(&current);
            }
            let evals_before = evaluations;
            sample_subproblems_into(
                &mut rng,
                opt_counts,
                self.num_subproblems,
                self.funcs_per_subproblem,
                subproblems,
                groups,
            );
            splices.clear();
            // The term baseline is a function of the working solution, so
            // it must be refreshed after the previous round's splices and
            // repair — i.e. exactly once here, then shared by every group.
            if let Some(prepare) = prepare {
                prepare(&current, baseline);
            }
            if self.parallel && groups.len() > 1 {
                let current_ref = &current;
                let baseline_ref: &TermBaseline = baseline;
                let outcomes: Vec<OptOutcome> = std::thread::scope(|scope| {
                    let handles: Vec<_> = groups
                        .iter()
                        .map(|group| {
                            scope.spawn(move || {
                                let mut descent = DescentScratch::default();
                                optimize_subset(
                                    current_ref.clone(),
                                    group,
                                    &mut descent,
                                    baseline_ref,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("sub-problem thread panicked"))
                        .collect()
                });
                for (group, outcome) in groups.iter().zip(&outcomes) {
                    evaluations += outcome.evaluations;
                    for &idx in group {
                        splices.push((idx, outcome.solution[idx]));
                    }
                }
            } else {
                for group in groups.iter() {
                    let mut buf = std::mem::take(work);
                    buf.clear();
                    buf.extend_from_slice(&current);
                    let outcome = optimize_subset(buf, group, descent, baseline);
                    evaluations += outcome.evaluations;
                    for &idx in group {
                        splices.push((idx, outcome.solution[idx]));
                    }
                    // Recycle the descent's solution as the next group's
                    // working copy — the serial loop owns exactly one.
                    *work = outcome.solution;
                }
            }

            // Splice each sub-problem's optimized choices back in (groups
            // are disjoint, so every index appears at most once).
            touched.clear();
            for &(idx, choice) in splices.iter() {
                current[idx] = choice;
                opt_counts[idx] += 1;
                touched.push(idx);
            }
            // The sub-problems ran in parallel against the same budget
            // headroom, so the spliced solution can jointly overspend even
            // though each piece was feasible. Repair by scaling the
            // just-optimized keep-alive windows down until feasible.
            evaluations += 1;
            if !objective.is_feasible(&current) {
                for _ in 0..24 {
                    for &idx in touched.iter() {
                        current[idx].keep_alive = current[idx].keep_alive.scale(0.8);
                    }
                    evaluations += 1;
                    if objective.is_feasible(&current) {
                        break;
                    }
                }
                if !objective.is_feasible(&current) {
                    for &idx in touched.iter() {
                        current[idx].keep_alive = cc_types::SimDuration::ZERO;
                    }
                }
            }
            if let Some(probe) = probe.as_deref_mut() {
                let mut accepted_moves = 0u64;
                for &idx in touched.iter() {
                    let (a, b) = (probe_snapshot[idx], current[idx]);
                    accepted_moves += u64::from(a.arch != b.arch)
                        + u64::from(a.compress != b.compress)
                        + u64::from(a.keep_alive != b.keep_alive);
                }
                // This evaluate is probe-only and deliberately NOT counted
                // into `evaluations`, so probed and unprobed outcomes match.
                probe(SreRoundStats {
                    round: round as u32,
                    subproblems: groups.len() as u32,
                    dimensions: 3 * touched.len() as u32,
                    cost: objective.evaluate(&current),
                    accepted_moves,
                    evaluations: evaluations - evals_before,
                });
            }
            round_solutions.extend_from_slice(&current);
        }

        // Final answer: the mean of the round solutions — unless it is
        // infeasible or worse than the best round, in which case that
        // round wins.
        combine_solutions_into(round_solutions, n, combined);
        evaluations += 1;
        let combined_cost = if objective.is_feasible(combined) {
            objective.evaluate(combined)
        } else {
            f64::INFINITY
        };
        // First-minimum-wins, matching `Iterator::min_by` over the rounds
        // in order; the snapshots stay in the scratch for the next run.
        let mut best: Option<(f64, usize)> = None;
        for idx in 0..self.rounds {
            evaluations += 1;
            let cost = objective.evaluate(&round_solutions[idx * n..(idx + 1) * n]);
            let better = match best {
                None => true,
                Some((best_cost, _)) => cost.total_cmp(&best_cost) == std::cmp::Ordering::Less,
            };
            if better {
                best = Some((cost, idx));
            }
        }
        let (best_round_cost, best_idx) = best.expect("at least one round ran");

        // Reuse `current` (already the right length and capacity) as the
        // returned solution buffer: the caller gave us `start` and gets it
        // back refilled, so the whole run is allocation-neutral.
        current.clear();
        if combined_cost <= best_round_cost {
            current.extend_from_slice(combined);
            OptOutcome {
                solution: current,
                cost: combined_cost,
                evaluations,
            }
        } else {
            current.extend_from_slice(&round_solutions[best_idx * n..(best_idx + 1) * n]);
            OptOutcome {
                solution: current,
                cost: best_round_cost,
                evaluations,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::testing::Bowl;

    fn bowl(n: usize) -> Bowl {
        Bowl {
            n,
            target_mins: 7.0,
            max_total_mins: None,
        }
    }

    #[test]
    fn sre_improves_over_start() {
        let b = bowl(40);
        let start = vec![FnChoice::production_default(); 40];
        let start_cost = b.evaluate(&start);
        let mut counts = vec![0u32; 40];
        let out = Sre::scaled_to(40).optimize(&b, start, &mut counts);
        assert!(out.cost < start_cost, "{} !< {start_cost}", out.cost);
        // The functions SRE touched were counted.
        assert!(counts.iter().any(|&c| c > 0));
    }

    #[test]
    fn sre_is_deterministic() {
        let b = bowl(20);
        let start = vec![FnChoice::production_default(); 20];
        let a = Sre::scaled_to(20).optimize(&b, start.clone(), &mut [0; 20]);
        let c = Sre::scaled_to(20).optimize(&b, start, &mut [0; 20]);
        assert_eq!(a.solution, c.solution);
        assert_eq!(a.cost, c.cost);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let b = bowl(30);
        let start = vec![FnChoice::production_default(); 30];
        let mut parallel = Sre::scaled_to(30);
        parallel.num_subproblems = 4;
        let mut serial = parallel.clone();
        serial.parallel = false;
        let pa = parallel.optimize(&b, start.clone(), &mut [0; 30]);
        let se = serial.optimize(&b, start, &mut [0; 30]);
        assert_eq!(pa.solution, se.solution);
    }

    #[test]
    fn sre_subproblems_stay_low_dimensional() {
        let n = 100;
        let b = bowl(n);
        let start = vec![FnChoice::production_default(); n];
        let sre = Sre::scaled_to(n);
        // Each sub-problem search space stays tiny relative to the joint
        // space (244^12 vs 244^100), and total work per interval is linear
        // in n rather than exponential.
        assert!(sre.funcs_per_subproblem <= 12);
        let per_round = sre.num_subproblems * sre.funcs_per_subproblem * 3;
        assert!(
            per_round * sre.rounds <= 4 * n,
            "per-interval dimension visits {} should stay linear in n",
            per_round * sre.rounds
        );
        let mut counts = vec![0u32; n];
        let out = sre.optimize(&b, start.clone(), &mut counts);
        assert!(out.cost < b.evaluate(&start));
    }

    #[test]
    fn sre_respects_budget_feasibility() {
        let b = Bowl {
            n: 12,
            target_mins: 40.0,
            max_total_mins: Some(120.0),
        };
        let start = vec![FnChoice::drop_now(cc_types::Arch::X86); 12];
        let mut counts = vec![0u32; 12];
        let out = Sre::scaled_to(12).optimize(&b, start, &mut counts);
        assert!(b.is_feasible(&out.solution));
    }

    #[test]
    fn probing_does_not_perturb_the_outcome() {
        let b = bowl(30);
        let start = vec![FnChoice::production_default(); 30];
        let sre = Sre::scaled_to(30);
        let plain = sre.optimize(&b, start.clone(), &mut [0; 30]);
        let mut rounds = Vec::new();
        let probed = sre.optimize_probed(&b, start, &mut [0; 30], &mut |s| rounds.push(s));
        assert_eq!(plain.solution, probed.solution);
        assert_eq!(plain.cost, probed.cost);
        assert_eq!(plain.evaluations, probed.evaluations);
        assert_eq!(rounds.len(), sre.rounds);
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(r.round as usize, i);
            assert!(r.subproblems >= 1);
            assert!(r.dimensions >= 3 * r.subproblems);
            assert!(r.evaluations > 0);
            assert!(r.cost.is_finite());
        }
        // The descent actually moves coordinates on a bowl objective.
        assert!(rounds.iter().any(|r| r.accepted_moves > 0));
    }

    #[test]
    fn scratch_reuse_is_behavior_preserving() {
        use crate::SeparableObjective;

        /// Minimal separable bowl for exercising the scratch paths.
        struct SepBowl;
        impl SeparableObjective for SepBowl {
            fn num_functions(&self) -> usize {
                24
            }
            fn service_term(&self, _idx: usize, c: &FnChoice) -> f64 {
                let d = c.keep_alive.as_mins_f64() - 7.0;
                d * d + if c.compress { 0.0 } else { 2.0 }
            }
            fn cost_term(&self, _idx: usize, c: &FnChoice) -> f64 {
                c.keep_alive.as_mins_f64()
            }
            fn budget(&self) -> Option<f64> {
                Some(150.0)
            }
        }

        let start = vec![FnChoice::production_default(); 24];
        let mut scratch = SreScratch::default();
        // A dirty scratch (reused across differently-seeded runs) must
        // reproduce the allocating path bit-for-bit every time.
        for seed in 0..4 {
            let sre = Sre::scaled_to(24).with_seed(seed);
            let fresh = sre.optimize_separable(&SepBowl, start.clone(), &mut [0; 24]);
            let reused = sre.optimize_separable_with_scratch(
                &SepBowl,
                start.clone(),
                &mut [0; 24],
                &mut scratch,
            );
            assert_eq!(fresh.solution, reused.solution, "seed {seed} diverged");
            assert_eq!(fresh.cost, reused.cost);
            assert_eq!(fresh.evaluations, reused.evaluations);
        }
    }

    #[test]
    fn empty_objective_is_a_noop() {
        let b = bowl(0);
        let out = Sre::scaled_to(1).optimize(&b, vec![], &mut []);
        assert!(out.solution.is_empty());
        assert_eq!(out.evaluations, 0);
    }
}
