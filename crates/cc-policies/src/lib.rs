//! Baseline keep-alive policies for the CodeCrunch reproduction.
//!
//! The paper evaluates CodeCrunch against three published schedulers plus
//! an oracle; all four are implemented here against the
//! [`cc_sim::Scheduler`] interface:
//!
//! - [`SitW`] — *Serverless in the Wild* (Shahrad et al., ATC '20): the
//!   hybrid histogram policy deployed on Azure. Tracks each function's
//!   idle-time distribution; patterned functions get a tail-percentile
//!   keep-alive window (released early and pre-warmed just before the head
//!   percentile), patternless functions fall back to a fixed window.
//! - [`FaasCache`] — Fuerst & Sharma (ASPLOS '21): keep-alive as caching,
//!   with greedy-dual-size-frequency eviction.
//! - [`IceBreaker`] — Roy et al. (ASPLOS '22): FFT-based invocation-period
//!   prediction with pre-warming on a two-tier (fast/cheap) node mix.
//! - [`Oracle`] — future knowledge of the trace; warms each function up
//!   right before its next invocation on its best architecture.
//! - [`Enhanced`] — the paper's Fig. 8 treatment: wraps any policy with
//!   CodeCrunch's two mechanical ideas (function compression under memory
//!   pressure, per-function x86/ARM selection) while leaving the wrapped
//!   policy's keep-alive logic untouched.
//!
//! # Example
//!
//! ```
//! use cc_policies::{Enhanced, SitW};
//!
//! let baseline = SitW::new();
//! let enhanced = Enhanced::new(SitW::new());
//! # let _ = (baseline, enhanced);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enhanced;
mod faascache;
mod history;
mod icebreaker;
mod oracle;
mod sitw;

pub use enhanced::Enhanced;
pub use faascache::FaasCache;
pub use history::GapHistogram;
pub use icebreaker::IceBreaker;
pub use oracle::Oracle;
pub use sitw::SitW;

use cc_sim::ClusterView;
use cc_types::{Arch, FunctionId};

/// Picks the architecture with the lower cold-start-plus-execution time for
/// `function` — the "heterogeneity-aware" placement the paper adds to every
/// baseline for fair comparison.
pub(crate) fn faster_arch(function: FunctionId, view: &ClusterView<'_>) -> Arch {
    let spec = view.spec(function);
    let cost = |arch: Arch| spec.exec_time(arch) + spec.cold_start(arch);
    if cost(Arch::Arm) < cost(Arch::X86) {
        Arch::Arm
    } else {
        Arch::X86
    }
}
