//! The in-memory trace model.

use std::error::Error;
use std::fmt;

use cc_types::{FunctionId, Invocation, SimDuration, SimTime};

use crate::TraceFunction;

/// An error constructing or manipulating a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Function ids in the function table are not dense `0..n`.
    NonDenseFunctionIds {
        /// The index at which the id did not match.
        index: usize,
    },
    /// An invocation references a function not present in the table.
    UnknownFunction {
        /// The offending function id.
        id: FunctionId,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NonDenseFunctionIds { index } => {
                write!(f, "function table entry {index} does not have id {index}")
            }
            TraceError::UnknownFunction { id } => {
                write!(f, "invocation references unknown function {id}")
            }
        }
    }
}

impl Error for TraceError {}

/// A complete invocation trace: the function table plus a time-sorted
/// stream of invocations.
///
/// Invariants (enforced at construction):
/// - function ids are dense `0..n` and index the table,
/// - every invocation references a known function,
/// - invocations are sorted by arrival time (stable for ties).
///
/// # Example
///
/// ```
/// use cc_trace::{Trace, TraceFunction};
/// use cc_types::{FunctionId, Invocation, MemoryMb, SimDuration, SimTime};
///
/// let f = TraceFunction::new(FunctionId::new(0), SimDuration::from_secs(1), MemoryMb::new(128));
/// let trace = Trace::new(
///     vec![f],
///     vec![Invocation::new(FunctionId::new(0), SimTime::from_micros(5))],
/// )?;
/// assert_eq!(trace.invocations().len(), 1);
/// # Ok::<(), cc_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    functions: Vec<TraceFunction>,
    invocations: Vec<Invocation>,
}

impl Trace {
    /// Builds a trace, validating invariants and sorting invocations by
    /// arrival.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if function ids are not dense or an invocation
    /// references an unknown function.
    pub fn new(
        functions: Vec<TraceFunction>,
        mut invocations: Vec<Invocation>,
    ) -> Result<Self, TraceError> {
        for (index, f) in functions.iter().enumerate() {
            if f.id.index() != index {
                return Err(TraceError::NonDenseFunctionIds { index });
            }
        }
        for inv in &invocations {
            if inv.function.index() >= functions.len() {
                return Err(TraceError::UnknownFunction { id: inv.function });
            }
        }
        invocations.sort_by_key(|inv| inv.arrival);
        Ok(Trace {
            functions,
            invocations,
        })
    }

    /// The function table, indexed by [`FunctionId::index`].
    pub fn functions(&self) -> &[TraceFunction] {
        &self.functions
    }

    /// Metadata for one function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this trace.
    pub fn function(&self, id: FunctionId) -> &TraceFunction {
        &self.functions[id.index()]
    }

    /// The invocation stream, sorted by arrival time.
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    /// Arrival time of the last invocation (the trace's logical length).
    /// Zero for an empty trace.
    pub fn duration(&self) -> SimDuration {
        self.invocations
            .last()
            .map(|inv| inv.arrival.saturating_since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total invocations per minute across all functions — the load curve
    /// the paper's shaded "high invocation load" regions come from.
    pub fn load_per_minute(&self) -> Vec<u32> {
        let minute = SimDuration::from_mins(1);
        let mut counts = Vec::new();
        for inv in &self.invocations {
            let idx = inv.arrival.interval_index(minute) as usize;
            if idx >= counts.len() {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
        counts
    }

    /// Per-minute invocation counts for one function (the signal IceBreaker
    /// feeds its FFT).
    ///
    /// The result is dense over the whole trace duration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this trace.
    pub fn per_minute_counts(&self, id: FunctionId) -> Vec<f64> {
        assert!(id.index() < self.functions.len(), "unknown function {id}");
        let minute = SimDuration::from_mins(1);
        let total_minutes = self.duration().as_micros() / minute.as_micros() + 1;
        let mut counts = vec![0.0; total_minutes as usize];
        for inv in &self.invocations {
            if inv.function == id {
                counts[inv.arrival.interval_index(minute) as usize] += 1.0;
            }
        }
        counts
    }

    /// Decomposes into `(functions, invocations)`.
    pub fn into_parts(self) -> (Vec<TraceFunction>, Vec<Invocation>) {
        (self.functions, self.invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::MemoryMb;

    fn func(i: u32) -> TraceFunction {
        TraceFunction::new(
            FunctionId::new(i),
            SimDuration::from_secs(1),
            MemoryMb::new(128),
        )
    }

    fn inv(f: u32, micros: u64) -> Invocation {
        Invocation::new(FunctionId::new(f), SimTime::from_micros(micros))
    }

    #[test]
    fn sorts_invocations() {
        let t = Trace::new(vec![func(0)], vec![inv(0, 50), inv(0, 10), inv(0, 30)]).unwrap();
        let arrivals: Vec<u64> = t
            .invocations()
            .iter()
            .map(|i| i.arrival.as_micros())
            .collect();
        assert_eq!(arrivals, vec![10, 30, 50]);
    }

    #[test]
    fn rejects_unknown_function() {
        let err = Trace::new(vec![func(0)], vec![inv(3, 0)]).unwrap_err();
        assert_eq!(
            err,
            TraceError::UnknownFunction {
                id: FunctionId::new(3)
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn rejects_non_dense_ids() {
        let err = Trace::new(vec![func(1)], vec![]).unwrap_err();
        assert_eq!(err, TraceError::NonDenseFunctionIds { index: 0 });
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = Trace::new(vec![], vec![]).unwrap();
        assert_eq!(t.duration(), SimDuration::ZERO);
        assert!(t.load_per_minute().is_empty());
    }

    #[test]
    fn load_per_minute_buckets() {
        let m = 60_000_000u64;
        let t = Trace::new(
            vec![func(0), func(1)],
            vec![inv(0, 0), inv(1, 10), inv(0, 2 * m + 1)],
        )
        .unwrap();
        assert_eq!(t.load_per_minute(), vec![2, 0, 1]);
    }

    #[test]
    fn per_minute_counts_are_dense() {
        let m = 60_000_000u64;
        let t = Trace::new(
            vec![func(0), func(1)],
            vec![inv(0, 0), inv(0, 3 * m), inv(1, 5 * m)],
        )
        .unwrap();
        let counts = t.per_minute_counts(FunctionId::new(0));
        assert_eq!(counts, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn function_lookup() {
        let t = Trace::new(vec![func(0), func(1)], vec![]).unwrap();
        assert_eq!(t.function(FunctionId::new(1)).id.index(), 1);
        assert_eq!(t.functions().len(), 2);
    }
}
