//! Fig. 2: per-function performance affinity to x86 vs ARM.
//!
//! Paper result: ≈38% of functions run faster on ARM; the rest on x86.

use serde_json::json;

use cc_metrics::Cdf;
use cc_types::Arch;
use cc_workload::Catalog;

use crate::common::{ExperimentOutput, Scale};
use crate::Experiment;

/// Fig. 2 experiment.
pub struct Fig2;

impl Experiment for Fig2 {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "fraction of functions faster on ARM and the ARM/x86 speedup distribution (Fig. 2)"
    }

    fn run(&self, _scale: &Scale) -> ExperimentOutput {
        let catalog = Catalog::paper_catalog();
        let ratios: Vec<f64> = catalog
            .profiles()
            .iter()
            .map(|p| p.exec_time(Arch::Arm).as_secs_f64() / p.exec_time(Arch::X86).as_secs_f64())
            .collect();
        let cdf = Cdf::from_samples(ratios.clone());
        let arm_faster = cdf.fraction_at_or_below(1.0 - 1e-12);

        let mut fastest_on_arm: Vec<(&str, f64)> = catalog
            .profiles()
            .iter()
            .filter(|p| p.arm_faster())
            .map(|p| (p.name, 1.0 / p.arm_exec_ratio))
            .collect();
        fastest_on_arm.sort_by(|a, b| b.1.total_cmp(&a.1));

        let mut lines = vec![
            format!(
                "{:.1}% of functions run faster on ARM (paper: ~38%)",
                arm_faster * 100.0
            ),
            format!(
                "ARM/x86 execution-time ratio quantiles: p25={:.2} p50={:.2} p75={:.2}",
                cdf.quantile(0.25),
                cdf.quantile(0.50),
                cdf.quantile(0.75)
            ),
            "largest ARM speedups:".to_owned(),
        ];
        for (name, speedup) in fastest_on_arm.iter().take(5) {
            lines.push(format!("  {name:<26} {speedup:.2}x"));
        }

        let data = json!({
            "arm_over_x86_exec_ratios": ratios,
            "arm_faster_fraction": arm_faster,
        });
        ExperimentOutput::new(self.id(), lines, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_faster_fraction_matches_paper() {
        let out = Fig2.run(&Scale::smoke());
        let f = out.data["arm_faster_fraction"].as_f64().unwrap();
        assert!((f - 0.375).abs() < 0.01, "fraction {f}");
    }
}
