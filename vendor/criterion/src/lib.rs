//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`] (with `sample_size`, `warm_up_time`,
//! `measurement_time`, `throughput`), [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Differences from upstream, by design:
//!
//! - Statistics are mean/min/max over wall-clock samples — no bootstrap
//!   confidence intervals or outlier classification.
//! - Baselines are plain TSV files under `target/criterion-offline/`
//!   (`--save-baseline <name>` writes one, `--baseline <name>` compares
//!   against one and prints the delta per bench).
//! - When invoked by `cargo test` (the `--test` flag), every benchmark
//!   runs exactly one iteration as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a group: scales the reported rate line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`]; lets `bench_function` accept `&str`.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    save_baseline: Option<String>,
    compare_baseline: Option<String>,
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Builds a harness from the process arguments, ignoring flags this
    /// stand-in doesn't implement.
    pub fn from_args() -> Criterion {
        let mut test_mode = false;
        let mut filters = Vec::new();
        let mut save_baseline = None;
        let mut compare_baseline = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--save-baseline" => save_baseline = args.next(),
                "--baseline" | "--baseline-lenient" => compare_baseline = args.next(),
                "--bench" | "--profile-time" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" | "--color" | "--output-format" => {
                    // Flags with a value we don't use; consume the value so
                    // it isn't mistaken for a filter.
                    if arg != "--bench" {
                        args.next();
                    }
                }
                other if other.starts_with("--") => {}
                filter => filters.push(filter.to_string()),
            }
        }
        Criterion {
            test_mode,
            filters,
            save_baseline,
            compare_baseline,
            results: Vec::new(),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Directly benches a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        self.benchmark_group("").bench_function(id, f);
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }

    fn baseline_path(name: &str) -> std::path::PathBuf {
        std::path::Path::new("target/criterion-offline").join(format!("{name}.tsv"))
    }

    /// Writes/compares baselines after all groups ran. Called by
    /// `criterion_main!`.
    pub fn final_summary(&mut self) {
        if let Some(name) = self.compare_baseline.take() {
            let path = Self::baseline_path(&name);
            match std::fs::read_to_string(&path) {
                Ok(contents) => {
                    let prior: Vec<(String, f64)> = contents
                        .lines()
                        .filter_map(|line| {
                            let (bench, ns) = line.split_once('\t')?;
                            Some((bench.to_string(), ns.parse().ok()?))
                        })
                        .collect();
                    for (bench, mean_ns) in &self.results {
                        if let Some((_, old)) = prior.iter().find(|(b, _)| b == bench) {
                            let delta = (mean_ns - old) / old * 100.0;
                            println!(
                                "{bench:<40} vs baseline '{name}': {delta:+.1}% ({} -> {})",
                                format_ns(*old),
                                format_ns(*mean_ns)
                            );
                        }
                    }
                }
                Err(err) => eprintln!(
                    "baseline '{name}' not readable at {}: {err}",
                    path.display()
                ),
            }
        }
        if let Some(name) = self.save_baseline.take() {
            let path = Self::baseline_path(&name);
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let mut out = String::new();
            for (bench, mean_ns) in &self.results {
                let _ = writeln!(out, "{bench}\t{mean_ns}");
            }
            match std::fs::write(&path, out) {
                Ok(()) => println!("saved baseline '{name}' to {}", path.display()),
                Err(err) => eprintln!("failed to save baseline '{name}': {err}"),
            }
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement time budget for each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benches with a throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        self.run(id.into_benchmark_id(), &mut f);
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id, &mut |b| f(b, input));
    }

    /// Ends the group. (Reporting happens per-bench; kept for API parity.)
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let full_name = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if !self.criterion.matches_filter(&full_name) {
            return;
        }
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.criterion.test_mode {
            f(&mut bencher);
            println!("{full_name}: test ok");
            return;
        }

        // Warm-up, doubling the per-sample iteration count until one sample
        // costs at least ~1ms (or the warm-up budget runs out).
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            f(&mut bencher);
            let long_enough = bencher.elapsed >= Duration::from_millis(1);
            if Instant::now() >= warm_deadline && long_enough {
                break;
            }
            if !long_enough && bencher.iters < u64::MAX / 2 {
                bencher.iters *= 2;
            }
            if Instant::now() >= warm_deadline {
                break;
            }
        }

        // Measurement: up to sample_size samples within the time budget.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement;
        for i in 0..self.sample_size {
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
            if Instant::now() >= deadline && i >= 1 {
                break;
            }
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

        let mut line = format!(
            "{full_name:<40} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let rate = bytes as f64 / (mean / 1e9);
                let _ = write!(line, "  thrpt: {:.2} MiB/s", rate / (1024.0 * 1024.0));
            }
            Some(Throughput::Elements(elems)) => {
                let rate = elems as f64 / (mean / 1e9);
                let _ = write!(line, "  thrpt: {} elem/s", format_count(rate));
            }
            None => {}
        }
        println!("{line}");
        self.criterion.results.push((full_name, mean));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_count(x: f64) -> String {
    if x < 1e3 {
        format!("{x:.1}")
    } else if x < 1e6 {
        format!("{:.2}K", x / 1e3)
    } else if x < 1e9 {
        format!("{:.3}M", x / 1e6)
    } else {
        format!("{:.3}G", x / 1e9)
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Expands to `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("zstd", 3).id, "zstd/3");
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
    }

    #[test]
    fn group_runs_in_test_mode() {
        let mut criterion = Criterion {
            test_mode: true,
            filters: vec![],
            save_baseline: None,
            compare_baseline: None,
            results: Vec::new(),
        };
        let mut ran = 0;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| ran += 1));
        group.finish();
        assert_eq!(ran, 1);
    }
}
