//! CodeCrunch configuration and ablation switches.

use cc_types::{Arch, SimDuration};

/// Which architectures CodeCrunch may schedule onto (the Fig. 12
/// homogeneous-cluster ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchPolicy {
    /// Use both x86 and ARM (the full system).
    Both,
    /// x86 only.
    X86Only,
    /// ARM only.
    ArmOnly,
}

impl ArchPolicy {
    /// Whether `arch` is permitted under this policy.
    pub fn allows(self, arch: Arch) -> bool {
        match self {
            ArchPolicy::Both => true,
            ArchPolicy::X86Only => arch == Arch::X86,
            ArchPolicy::ArmOnly => arch == Arch::Arm,
        }
    }

    /// Clamps `arch` to a permitted architecture.
    pub fn clamp(self, arch: Arch) -> Arch {
        match self {
            ArchPolicy::Both => arch,
            ArchPolicy::X86Only => Arch::X86,
            ArchPolicy::ArmOnly => Arch::Arm,
        }
    }
}

/// Configuration of the CodeCrunch scheduler, exposing every ablation the
/// paper evaluates (Fig. 12) plus the SLA mode (Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct CodeCrunchConfig {
    /// Use SRE (`true`, the paper's system) or full-space coordinate
    /// descent under the same evaluation budget (`false`, the "without
    /// SRE" ablation).
    pub use_sre: bool,
    /// Allow storing warm instances compressed.
    pub allow_compression: bool,
    /// Architectures available for scheduling.
    pub arch_policy: ArchPolicy,
    /// Pin every keep-alive window to a fixed value instead of optimizing
    /// it (the "fixed 10-minute keep-alive" ablation).
    pub fixed_keep_alive: Option<SimDuration>,
    /// SLA mode: maximum allowed fractional service-time increase relative
    /// to an uncompressed warm start on x86 (e.g. `0.2` = 20%).
    pub sla_allowed_increase: Option<f64>,
    /// EWMA smoothing for observed execution times.
    pub exec_alpha: f64,
    /// Size of the `P_est` local window (the paper's `n_l`, default 10;
    /// swept 2..=100 in the sensitivity study).
    pub pest_local_window: usize,
    /// Seed for SRE's sub-problem sampling (mixed with the interval index,
    /// so every interval samples differently but deterministically).
    pub seed: u64,
    /// Objective-evaluation budget per interval, shared by both the SRE
    /// and no-SRE paths so Fig. 12's comparison is time-fair.
    pub eval_budget: u64,
}

impl Default for CodeCrunchConfig {
    fn default() -> Self {
        CodeCrunchConfig {
            use_sre: true,
            allow_compression: true,
            arch_policy: ArchPolicy::Both,
            fixed_keep_alive: None,
            sla_allowed_increase: None,
            exec_alpha: 0.3,
            pest_local_window: 10,
            seed: 0,
            eval_budget: 12_000,
        }
    }
}

impl CodeCrunchConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `exec_alpha` is outside `(0, 1]`, the SLA allowance is
    /// negative, or the evaluation budget is zero.
    pub fn validate(&self) {
        assert!(
            self.exec_alpha > 0.0 && self.exec_alpha <= 1.0,
            "exec_alpha must be in (0, 1]"
        );
        if let Some(sla) = self.sla_allowed_increase {
            assert!(sla >= 0.0, "SLA allowance must be non-negative");
        }
        assert!(self.eval_budget > 0, "evaluation budget must be positive");
        assert!(
            self.pest_local_window > 0,
            "P_est local window must be non-empty"
        );
    }

    /// A short name describing the configuration, used in reports.
    pub fn policy_name(&self) -> String {
        let mut name = String::from("codecrunch");
        if !self.use_sre {
            name.push_str("-nosre");
        }
        if !self.allow_compression {
            name.push_str("-nocompress");
        }
        match self.arch_policy {
            ArchPolicy::Both => {}
            ArchPolicy::X86Only => name.push_str("-x86only"),
            ArchPolicy::ArmOnly => name.push_str("-armonly"),
        }
        if self.fixed_keep_alive.is_some() {
            name.push_str("-fixedka");
        }
        if self.sla_allowed_increase.is_some() {
            name.push_str("-sla");
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_system() {
        let c = CodeCrunchConfig::default();
        c.validate();
        assert!(c.use_sre && c.allow_compression);
        assert_eq!(c.arch_policy, ArchPolicy::Both);
        assert_eq!(c.policy_name(), "codecrunch");
    }

    #[test]
    fn names_encode_ablations() {
        let c = CodeCrunchConfig {
            use_sre: false,
            allow_compression: false,
            arch_policy: ArchPolicy::ArmOnly,
            ..CodeCrunchConfig::default()
        };
        assert_eq!(c.policy_name(), "codecrunch-nosre-nocompress-armonly");
    }

    #[test]
    fn arch_policy_clamps() {
        assert_eq!(ArchPolicy::X86Only.clamp(Arch::Arm), Arch::X86);
        assert_eq!(ArchPolicy::Both.clamp(Arch::Arm), Arch::Arm);
        assert!(ArchPolicy::ArmOnly.allows(Arch::Arm));
        assert!(!ArchPolicy::ArmOnly.allows(Arch::X86));
    }

    #[test]
    #[should_panic(expected = "exec_alpha")]
    fn rejects_bad_alpha() {
        CodeCrunchConfig {
            exec_alpha: 2.0,
            ..CodeCrunchConfig::default()
        }
        .validate();
    }
}
