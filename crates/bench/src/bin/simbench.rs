//! Emits `BENCH_sim.json`: simulator throughput (invocations/second) per
//! policy on the 10 000-function stress scenario.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run --release -p bench --bin simbench            # writes BENCH_sim.json
//! cargo run --release -p bench --bin simbench -- --runs 5 --out BENCH_sim.json
//! ```
//!
//! Each policy is replayed `--runs` times (default 3) after one warm-up
//! replay; the reported figure is the best run, which is the least noisy
//! estimator on a shared machine.

use std::time::Instant;

use bench::BenchScenario;
use cc_policies::{FaasCache, IceBreaker, Oracle, SitW};
use cc_sim::{FixedKeepAlive, Scheduler, Simulation};
use codecrunch::CodeCrunch;

const USAGE: &str = "usage: simbench [--runs N] [--out PATH]";

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut runs: u32 = 3;
    let mut out = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                runs = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => usage_error("--runs takes a positive integer"),
                };
            }
            "--out" => {
                out = match args.next() {
                    Some(path) => path,
                    None => usage_error("--out takes a path"),
                };
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let scenario = BenchScenario::large();
    let invocations = scenario.trace.invocations().len() as u64;
    eprintln!(
        "scenario: {} functions, {invocations} invocations, {} nodes",
        scenario.trace.functions().len(),
        scenario.config.total_nodes(),
    );

    let oracle_trace = scenario.trace.clone();
    type PolicyFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let policies: Vec<(&str, PolicyFactory)> = vec![
        (
            "fixed_keepalive",
            Box::new(|| Box::new(FixedKeepAlive::ten_minutes()) as Box<dyn Scheduler>),
        ),
        (
            "sitw",
            Box::new(|| Box::new(SitW::new()) as Box<dyn Scheduler>),
        ),
        (
            "faascache",
            Box::new(|| Box::new(FaasCache::new()) as Box<dyn Scheduler>),
        ),
        (
            "icebreaker",
            Box::new(|| Box::new(IceBreaker::new()) as Box<dyn Scheduler>),
        ),
        (
            "oracle",
            Box::new(move || Box::new(Oracle::new(&oracle_trace)) as Box<dyn Scheduler>),
        ),
        (
            "codecrunch",
            Box::new(|| Box::new(CodeCrunch::new()) as Box<dyn Scheduler>),
        ),
    ];

    let mut entries = Vec::new();
    for (name, make) in &policies {
        // Warm-up replay (page in the trace, fault in allocator arenas).
        run_once(&scenario, make().as_mut());
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let started = Instant::now();
            run_once(&scenario, make().as_mut());
            best = best.min(started.elapsed().as_secs_f64());
        }
        let throughput = invocations as f64 / best;
        eprintln!("{name:>16}: {best:7.3} s  ({throughput:11.0} inv/s)");
        entries.push(serde_json::json!({
            "policy": *name,
            "seconds_per_replay": best,
            "invocations_per_sec": throughput,
        }));
    }

    let doc = serde_json::json!({
        "benchmark": "simulate_10k",
        "functions": scenario.trace.functions().len() as u64,
        "invocations": invocations,
        "nodes": scenario.config.total_nodes() as u64,
        "runs_per_policy": runs as u64,
        "results": entries,
    });
    let body = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out, body + "\n").expect("write output file");
    eprintln!("wrote {out}");
}

fn run_once(scenario: &BenchScenario, policy: &mut dyn Scheduler) {
    let report =
        Simulation::new(scenario.config.clone(), &scenario.trace, &scenario.workload).run(policy);
    assert_eq!(
        report.records.len() as u64,
        scenario.trace.invocations().len() as u64
    );
}
