//! The IceBreaker FFT-prediction baseline (Roy et al., ASPLOS '22).

use cc_types::FxHashMap;

use cc_fft::dominant_period;
use cc_sim::{ClusterView, Command, KeepDecision, Scheduler};
use cc_types::{Arch, FunctionId, SimDuration, SimTime};

/// IceBreaker predicts each function's invocation period with a Fourier
/// transform over its per-minute invocation counts and pre-warms the
/// function just before the predicted next invocation.
///
/// Node choice follows the original paper's two-tier scheme — a function is
/// warmed on the **fast** tier (x86 here) when its re-invocation is
/// imminent/likely, and on the **cheap** tier (ARM) otherwise. Crucially,
/// and as the CodeCrunch paper points out, this is *not*
/// function-performance-aware: IceBreaker never asks which architecture
/// runs this particular function faster.
///
/// The FFT over every function's full history each refresh interval is
/// exactly the "high decision-making overhead" the paper measures.
#[derive(Debug, Clone)]
pub struct IceBreaker {
    /// Per-minute invocation counts per function.
    counts: FxHashMap<FunctionId, Vec<f64>>,
    /// Arrivals observed since the last tick.
    pending_counts: FxHashMap<FunctionId, f64>,
    /// Cached period prediction (in minutes) per function.
    period: FxHashMap<FunctionId, Option<f64>>,
    /// Last arrival per function.
    last_arrival: FxHashMap<FunctionId, SimTime>,
    /// Ticks between FFT refreshes.
    refresh_every: u64,
    tick: u64,
    /// Keep-alive window granted after completion while waiting for the
    /// next prediction.
    post_completion_window: SimDuration,
}

impl IceBreaker {
    /// Creates the policy with a 5-tick FFT refresh cadence.
    pub fn new() -> IceBreaker {
        IceBreaker {
            counts: FxHashMap::default(),
            pending_counts: FxHashMap::default(),
            period: FxHashMap::default(),
            last_arrival: FxHashMap::default(),
            refresh_every: 5,
            tick: 0,
            post_completion_window: SimDuration::from_mins(2),
        }
    }

    /// Predicted next invocation of `function`, if its history shows a
    /// dominant period.
    fn predicted_next(&self, function: FunctionId) -> Option<SimTime> {
        let period_mins = (*self.period.get(&function)?)?;
        let last = *self.last_arrival.get(&function)?;
        Some(last + SimDuration::from_secs_f64(period_mins * 60.0))
    }
}

impl Default for IceBreaker {
    fn default() -> Self {
        IceBreaker::new()
    }
}

impl Scheduler for IceBreaker {
    fn name(&self) -> &str {
        "icebreaker"
    }

    fn on_arrival(&mut self, function: FunctionId, now: SimTime) {
        *self.pending_counts.entry(function).or_insert(0.0) += 1.0;
        self.last_arrival.insert(function, now);
    }

    fn place(&mut self, _function: FunctionId, view: &ClusterView<'_>) -> Arch {
        // Two-tier placement: the fast tier when it has room, else cheap.
        if view.free_cores(Arch::X86) > 0 {
            Arch::X86
        } else {
            Arch::Arm
        }
    }

    fn on_completion(
        &mut self,
        function: FunctionId,
        _arch: Arch,
        _view: &ClusterView<'_>,
    ) -> KeepDecision {
        match self.period.get(&function) {
            // Periodic function: a pre-warm will cover the next invocation,
            // keep only a short safety window now.
            Some(Some(_)) => KeepDecision::uncompressed(self.post_completion_window),
            // Unknown or patternless: moderate keep-alive fallback.
            _ => KeepDecision::uncompressed(SimDuration::from_mins(10)),
        }
    }

    fn on_interval(&mut self, view: &ClusterView<'_>) -> Vec<Command> {
        self.tick += 1;
        // Roll the per-minute counters forward.
        let touched: Vec<FunctionId> = self.counts.keys().copied().collect();
        for f in touched {
            let pending = self.pending_counts.remove(&f).unwrap_or(0.0);
            self.counts.get_mut(&f).expect("key exists").push(pending);
        }
        for (f, pending) in self.pending_counts.drain() {
            self.counts.entry(f).or_default().push(pending);
        }

        // Refresh the FFT predictions — deliberately over every function's
        // full history, reproducing IceBreaker's overhead profile.
        if self.tick.is_multiple_of(self.refresh_every) {
            for (f, signal) in &self.counts {
                if signal.len() >= 8 {
                    self.period.insert(*f, dominant_period(signal));
                }
            }
        }

        // Pre-warm functions predicted to fire within the next interval.
        let horizon = view.now + view.config.interval * 2;
        let mut commands = Vec::new();
        // Sorted for cross-run determinism (map iteration order is arbitrary).
        let mut functions: Vec<FunctionId> = self.counts.keys().copied().collect();
        functions.sort_unstable();
        for f in functions {
            if view.is_warm(f) {
                continue;
            }
            let Some(next) = self.predicted_next(f) else {
                continue;
            };
            if next >= view.now && next <= horizon {
                let period_mins = self.period[&f].expect("checked by predicted_next");
                // Frequent (short-period) functions go to the fast tier.
                let arch = if period_mins <= 30.0 {
                    Arch::X86
                } else {
                    Arch::Arm
                };
                commands.push(Command::Prewarm {
                    function: f,
                    arch,
                    keep_alive: SimDuration::from_mins(3),
                    compress: false,
                });
            }
        }
        commands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_compress::CompressionModel;
    use cc_sim::{ClusterConfig, Simulation};
    use cc_trace::{PatternMix, SyntheticTrace};
    use cc_workload::{Catalog, Workload};

    #[test]
    fn predicts_periodic_functions_and_prewarms() {
        // Strongly periodic workload: IceBreaker should find periods.
        let mix = PatternMix {
            periodic: 1.0,
            multi_periodic: 0.0,
            poisson: 0.0,
            bursty: 0.0,
            rare: 0.0,
        };
        let mut b = SyntheticTrace::builder();
        b.functions(20)
            .duration(SimDuration::from_mins(240))
            .seed(31)
            .pattern_mix(mix)
            .without_peaks();
        let trace = b.build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let mut policy = IceBreaker::new();
        let report =
            Simulation::new(ClusterConfig::small(3, 3), &trace, &workload).run(&mut policy);
        assert_eq!(report.records.len(), trace.invocations().len());
        let with_period = policy.period.values().filter(|p| p.is_some()).count();
        assert!(with_period > 0, "no periods detected on a periodic trace");
        assert!(
            report.warm_fraction() > 0.2,
            "warm {}",
            report.warm_fraction()
        );
    }

    #[test]
    fn handles_patternless_traces() {
        let mix = PatternMix {
            periodic: 0.0,
            multi_periodic: 0.0,
            poisson: 1.0,
            bursty: 0.0,
            rare: 0.0,
        };
        let mut b = SyntheticTrace::builder();
        b.functions(15)
            .duration(SimDuration::from_mins(90))
            .seed(32)
            .pattern_mix(mix);
        let trace = b.build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let mut policy = IceBreaker::new();
        let report =
            Simulation::new(ClusterConfig::small(2, 2), &trace, &workload).run(&mut policy);
        assert_eq!(report.records.len(), trace.invocations().len());
    }

    #[test]
    fn predicted_next_requires_history() {
        let policy = IceBreaker::new();
        assert_eq!(policy.predicted_next(FunctionId::new(0)), None);
    }
}
