//! Idle-time histograms shared by history-driven policies.

use cc_types::SimTime;

/// Number of one-minute bins (idle times at or above an hour share the last
/// bin — they exceed the platform's keep-alive bound anyway).
const BINS: usize = 61;

/// A per-function histogram of idle times (gaps between consecutive
/// invocations), in one-minute bins — the core data structure of the SitW
/// hybrid histogram policy.
///
/// # Example
///
/// ```
/// use cc_policies::GapHistogram;
/// use cc_types::{SimDuration, SimTime};
///
/// let mut h = GapHistogram::new();
/// let mut t = SimTime::ZERO;
/// for _ in 0..20 {
///     h.record(t);
///     t += SimDuration::from_mins(5);
/// }
/// // Gaps of exactly 5 minutes land in bin 5, whose upper edge is 6.
/// assert_eq!(h.percentile_minutes(99.0), Some(6));
/// assert!(h.is_patterned());
/// ```
#[derive(Debug, Clone)]
pub struct GapHistogram {
    bins: [u32; BINS],
    count: u32,
    sum_mins: f64,
    sum_sq_mins: f64,
    last_arrival: Option<SimTime>,
}

impl GapHistogram {
    /// Creates an empty histogram.
    pub fn new() -> GapHistogram {
        GapHistogram {
            bins: [0; BINS],
            count: 0,
            sum_mins: 0.0,
            sum_sq_mins: 0.0,
            last_arrival: None,
        }
    }

    /// Records an invocation arrival; the gap since the previous arrival
    /// (if any) enters the histogram.
    pub fn record(&mut self, now: SimTime) {
        if let Some(last) = self.last_arrival {
            let gap_mins = now.saturating_since(last).as_mins_f64();
            let bin = (gap_mins.floor() as usize).min(BINS - 1);
            self.bins[bin] += 1;
            self.count += 1;
            self.sum_mins += gap_mins;
            self.sum_sq_mins += gap_mins * gap_mins;
        }
        self.last_arrival = Some(now);
    }

    /// Number of recorded gaps.
    pub fn gap_count(&self) -> u32 {
        self.count
    }

    /// Time of the most recent arrival.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    /// Mean gap in minutes (`None` before any gap).
    pub fn mean_minutes(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_mins / self.count as f64)
    }

    /// Coefficient of variation of the gaps (`None` before two gaps).
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        let mean = self.sum_mins / self.count as f64;
        if mean <= 0.0 {
            return Some(0.0);
        }
        let var = (self.sum_sq_mins / self.count as f64 - mean * mean).max(0.0);
        Some(var.sqrt() / mean)
    }

    /// The `p`-th percentile of the gap distribution in whole minutes
    /// (upper edge of the bin), or `None` before any gap.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile_minutes(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 0 {
            return None;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u32;
        let mut seen = 0u32;
        for (bin, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper edge of the bin: a gap in bin k lies in [k, k+1).
                return Some(bin as u64 + 1);
            }
        }
        Some(BINS as u64)
    }

    /// SitW's "representative pattern" test: enough history and gaps
    /// concentrated enough that the histogram predicts usefully.
    pub fn is_patterned(&self) -> bool {
        self.count >= 4 && self.coefficient_of_variation().is_some_and(|cv| cv < 2.0)
    }
}

impl Default for GapHistogram {
    fn default() -> Self {
        GapHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::SimDuration;

    fn at(mins: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(mins)
    }

    #[test]
    fn empty_histogram() {
        let h = GapHistogram::new();
        assert_eq!(h.gap_count(), 0);
        assert_eq!(h.percentile_minutes(99.0), None);
        assert_eq!(h.mean_minutes(), None);
        assert!(!h.is_patterned());
    }

    #[test]
    fn first_arrival_creates_no_gap() {
        let mut h = GapHistogram::new();
        h.record(at(3));
        assert_eq!(h.gap_count(), 0);
        assert_eq!(h.last_arrival(), Some(at(3)));
    }

    #[test]
    fn regular_gaps_are_patterned() {
        let mut h = GapHistogram::new();
        for i in 0..10 {
            h.record(at(i * 7));
        }
        assert_eq!(h.gap_count(), 9);
        assert!(h.is_patterned());
        assert_eq!(h.percentile_minutes(50.0), Some(8));
        assert_eq!(h.mean_minutes(), Some(7.0));
        assert_eq!(h.coefficient_of_variation(), Some(0.0));
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = GapHistogram::new();
        // Gaps: 1, 1, 1, 10 minutes.
        for &m in &[0u64, 1, 2, 3, 13] {
            h.record(at(m));
        }
        assert_eq!(h.percentile_minutes(50.0), Some(2));
        assert_eq!(h.percentile_minutes(100.0), Some(11));
    }

    #[test]
    fn huge_gaps_clamp_to_last_bin() {
        let mut h = GapHistogram::new();
        h.record(at(0));
        h.record(at(500));
        assert_eq!(h.percentile_minutes(100.0), Some(61));
    }

    #[test]
    fn erratic_gaps_are_not_patterned() {
        let mut h = GapHistogram::new();
        // Wildly varying gaps: 1, 59, 1, 59...
        let mut t = 0;
        for i in 0..10 {
            t += if i % 2 == 0 { 1 } else { 59 };
            h.record(at(t));
        }
        let cv = h.coefficient_of_variation().unwrap();
        assert!(cv > 0.8, "cv {cv}");
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn rejects_bad_percentile() {
        let _ = GapHistogram::new().percentile_minutes(150.0);
    }
}
