//! §5: CodeCrunch helps short-running functions too.
//!
//! Paper result: even for functions with service time < 1 second,
//! CodeCrunch reduces service time by 8.6% / 12.1% / 11.7% over
//! IceBreaker / FaasCache / SitW — cold-start elimination matters *most*
//! when execution itself is short.

use serde_json::json;

use cc_policies::{FaasCache, IceBreaker, SitW};
use cc_sim::{Scheduler, SimReport};
use cc_types::{FunctionId, SimDuration};
use codecrunch::CodeCrunch;

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// Short-function table experiment.
pub struct TabShortFns;

/// Mean service time restricted to the given function subset.
fn mean_service_over(report: &SimReport, subset: &[bool]) -> f64 {
    let samples: Vec<f64> = report
        .records
        .iter()
        .filter(|r| subset[r.function.index()])
        .map(|r| r.service_time().as_secs_f64())
        .collect();
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

impl Experiment for TabShortFns {
    fn id(&self) -> &'static str {
        "tab_short_fns"
    }

    fn title(&self) -> &'static str {
        "service-time improvement restricted to short-running functions (§5 text)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let unlimited = scale.cluster();
        let budget = sitw_budget_per_interval(&trace, &workload, &unlimited);
        let config = unlimited.with_budget(budget);

        // "Short-running": execution under a second on x86 (the paper cuts
        // on service < 1s; execution is the stable per-function property).
        let short: Vec<bool> = (0..workload.len())
            .map(|i| {
                workload
                    .spec(FunctionId::new(i as u32))
                    .exec_time(cc_types::Arch::X86)
                    < SimDuration::from_secs(1)
            })
            .collect();
        let short_count = short.iter().filter(|&&s| s).count();

        let mut policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(SitW::new()),
            Box::new(FaasCache::new()),
            Box::new(IceBreaker::new()),
            Box::new(CodeCrunch::new()),
        ];
        let mut lines = vec![format!(
            "{short_count}/{} functions are short-running (exec < 1s on x86)",
            workload.len()
        )];
        lines.push(format!(
            "{:<12} {:>16} {:>16}",
            "policy", "short-fn svc (s)", "all-fn svc (s)"
        ));
        let mut rows = Vec::new();
        for policy in policies.iter_mut() {
            let report = run_policy(policy.as_mut(), &config, &trace, &workload);
            let short_mean = mean_service_over(&report, &short);
            lines.push(format!(
                "{:<12} {:>16.3} {:>16.3}",
                report.policy,
                short_mean,
                report.mean_service_time_secs()
            ));
            rows.push(json!({
                "policy": report.policy,
                "short_mean_service_secs": short_mean,
                "mean_service_secs": report.mean_service_time_secs(),
            }));
        }
        let get = |name: &str| {
            rows.iter()
                .find(|r| r["policy"] == name)
                .and_then(|r| r["short_mean_service_secs"].as_f64())
                .unwrap_or(f64::NAN)
        };
        let crunch = get("codecrunch");
        lines.push(format!(
            "short-fn improvement: {:.1}% vs sitw / {:.1}% vs faascache / {:.1}% vs icebreaker \
             (paper: 11.7% / 12.1% / 8.6%)",
            (1.0 - crunch / get("sitw")) * 100.0,
            (1.0 - crunch / get("faascache")) * 100.0,
            (1.0 - crunch / get("icebreaker")) * 100.0
        ));

        ExperimentOutput::new(
            self.id(),
            lines,
            json!({"rows": rows, "short_function_count": short_count}),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codecrunch_serves_short_functions_competitively() {
        let out = TabShortFns.run(&Scale::smoke());
        let rows = out.data["rows"].as_array().unwrap();
        let get = |name: &str| {
            rows.iter().find(|r| r["policy"] == name).unwrap()["short_mean_service_secs"]
                .as_f64()
                .unwrap()
        };
        let crunch = get("codecrunch");
        let best_baseline = ["sitw", "faascache", "icebreaker"]
            .iter()
            .map(|p| get(p))
            .fold(f64::INFINITY, f64::min);
        assert!(
            crunch <= best_baseline * 1.10,
            "codecrunch {crunch} vs best baseline {best_baseline}"
        );
    }
}
