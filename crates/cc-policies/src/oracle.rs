//! The Oracle upper bound: future knowledge of the trace.

use cc_types::FxHashMap;

use cc_sim::{ClusterView, Command, KeepDecision, Scheduler};
use cc_trace::Trace;
use cc_types::{Arch, FunctionId, SimDuration, SimTime, KEEP_ALIVE_MAX};

/// The theoretically-best-but-infeasible policy: it knows every future
/// invocation, so it
///
/// - keeps an instance alive exactly until its next invocation when that is
///   imminent,
/// - otherwise drops it and pre-warms a fresh instance just before the next
///   invocation (paying the cold start off the critical path),
/// - and places every function on its faster architecture.
///
/// As in the paper, Oracle still pays real keep-alive costs and competes
/// for real capacity — it is an upper bound on scheduling quality, not a
/// free pass.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Sorted arrival times per function.
    arrivals: FxHashMap<FunctionId, Vec<SimTime>>,
    /// Index of the next unconsumed arrival per function.
    cursor: FxHashMap<FunctionId, usize>,
    /// `(arrived, completed)` counters per function, to detect in-flight
    /// invocations at completion time.
    in_flight: FxHashMap<FunctionId, (u64, u64)>,
}

impl Oracle {
    /// Builds the oracle from the full trace (the "offline future
    /// knowledge" of the paper).
    pub fn new(trace: &Trace) -> Oracle {
        let mut arrivals: FxHashMap<FunctionId, Vec<SimTime>> = FxHashMap::default();
        for inv in trace.invocations() {
            arrivals.entry(inv.function).or_default().push(inv.arrival);
        }
        Oracle {
            arrivals,
            cursor: FxHashMap::default(),
            in_flight: FxHashMap::default(),
        }
    }

    /// The next invocation of `function` strictly after `now`.
    fn next_invocation(&mut self, function: FunctionId, now: SimTime) -> Option<SimTime> {
        let times = self.arrivals.get(&function)?;
        let cursor = self.cursor.entry(function).or_insert(0);
        while *cursor < times.len() && times[*cursor] <= now {
            *cursor += 1;
        }
        times.get(*cursor).copied()
    }
}

impl Scheduler for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn on_arrival(&mut self, function: FunctionId, _now: SimTime) {
        self.in_flight.entry(function).or_insert((0, 0)).0 += 1;
    }

    fn place(&mut self, function: FunctionId, view: &ClusterView<'_>) -> Arch {
        crate::faster_arch(function, view)
    }

    fn on_completion(
        &mut self,
        function: FunctionId,
        arch: Arch,
        view: &ClusterView<'_>,
    ) -> KeepDecision {
        let counters = self.in_flight.entry(function).or_insert((0, 0));
        counters.1 += 1;
        let in_flight = counters.0.saturating_sub(counters.1);
        if in_flight > 0 {
            // Another invocation of this function has already arrived and
            // may be queued: keep the instance hot for it.
            return KeepDecision::uncompressed(SimDuration::from_mins(2));
        }
        let Some(next) = self.next_invocation(function, view.now) else {
            return KeepDecision::DROP; // never invoked again
        };
        let gap = next.saturating_since(view.now);
        let spec = view.spec(function);
        let cold = spec.cold_start(arch);
        // A generous margin so queueing delays cannot expire the instance
        // moments before its invocation gets a core.
        let margin = SimDuration::from_secs(30);
        if gap + margin > KEEP_ALIVE_MAX {
            return KeepDecision::DROP; // a pre-warm will handle it
        }
        // With an unconstrained budget, keeping the instance exactly until
        // its next invocation is always optimal.
        if !view.ledger.is_budgeted() {
            return KeepDecision::uncompressed(gap + margin);
        }
        // Under a budget: keeping alive until `next` is still the best use
        // of credit when affordable — an exact window wastes nothing, and
        // a pre-warm would occupy a core for the cold-start duration,
        // stealing capacity from real executions. Fall back to dropping
        // (and pre-warming later) only when the credit does not cover the
        // window.
        let spec = view.spec(function);
        let cost = view
            .config
            .rate(arch)
            .keep_alive_cost(spec.memory, gap + margin);
        if cost <= view.ledger.balance() {
            KeepDecision::uncompressed(gap + margin)
        } else {
            let keep_threshold = SimDuration::from_mins(2).max(cold * 4);
            if gap <= keep_threshold {
                KeepDecision::uncompressed(gap + margin)
            } else {
                KeepDecision::DROP
            }
        }
    }

    fn eviction_rank(&mut self, instance: &cc_sim::WarmInstance, view: &ClusterView<'_>) -> f64 {
        // Belady's rule, the optimal eviction policy: under memory
        // pressure, sacrifice the instance whose next invocation is
        // furthest away (never-again instances first).
        match self.next_invocation(instance.function, view.now) {
            None => f64::MIN,
            Some(next) => -next.saturating_since(view.now).as_secs_f64(),
        }
    }

    fn on_interval(&mut self, view: &ClusterView<'_>) -> Vec<Command> {
        // Pre-warm every function whose next invocation lands within the
        // coming interval (plus cold-start lead time), on its faster arch.
        let mut commands = Vec::new();
        let mut functions: Vec<FunctionId> = self.arrivals.keys().copied().collect();
        // Map iteration order is arbitrary; command order affects
        // placement, so sort for cross-run determinism.
        functions.sort_unstable();
        for function in functions {
            if view.is_warm(function) {
                continue;
            }
            let spec = view.spec(function);
            let arch = crate::faster_arch(function, view);
            let cold = spec.cold_start(arch);
            let Some(next) = self.next_invocation(function, view.now) else {
                continue;
            };
            let lead = view.now + cold;
            if next > lead && next <= lead + view.config.interval {
                let keep_alive = next.saturating_since(lead) + SimDuration::from_secs(30);
                commands.push(Command::Prewarm {
                    function,
                    arch,
                    keep_alive,
                    compress: false,
                });
            }
        }
        commands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_compress::CompressionModel;
    use cc_sim::{ClusterConfig, FixedKeepAlive, Simulation};
    use cc_trace::SyntheticTrace;
    use cc_workload::{Catalog, Workload};

    fn setup(seed: u64) -> (Trace, Workload) {
        let trace = SyntheticTrace::builder()
            .functions(30)
            .duration(SimDuration::from_mins(180))
            .seed(seed)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        (trace, workload)
    }

    #[test]
    fn oracle_beats_fixed_keepalive() {
        let (trace, workload) = setup(41);
        let config = ClusterConfig::small(3, 3);
        let mut oracle = Oracle::new(&trace);
        let mut fixed = FixedKeepAlive::ten_minutes();
        let r_oracle = Simulation::new(config.clone(), &trace, &workload).run(&mut oracle);
        let r_fixed = Simulation::new(config, &trace, &workload).run(&mut fixed);
        assert!(
            r_oracle.mean_service_time_secs() <= r_fixed.mean_service_time_secs(),
            "oracle {}s vs fixed {}s",
            r_oracle.mean_service_time_secs(),
            r_fixed.mean_service_time_secs()
        );
        // Oracle optimizes service time, not warm count; allow a sliver of
        // warm-fraction slack but demand it spends less doing it.
        assert!(
            r_oracle.warm_fraction() >= r_fixed.warm_fraction() - 0.02,
            "oracle warm {} vs fixed {}",
            r_oracle.warm_fraction(),
            r_fixed.warm_fraction()
        );
        assert!(
            r_oracle.keep_alive_spend <= r_fixed.keep_alive_spend,
            "oracle should not outspend the fixed baseline"
        );
    }

    #[test]
    fn oracle_achieves_high_warm_fraction() {
        let (trace, workload) = setup(42);
        let mut oracle = Oracle::new(&trace);
        let report =
            Simulation::new(ClusterConfig::small(3, 3), &trace, &workload).run(&mut oracle);
        assert!(
            report.warm_fraction() > 0.6,
            "oracle warm fraction {}",
            report.warm_fraction()
        );
    }

    #[test]
    fn next_invocation_advances_past_now() {
        let (trace, _) = setup(43);
        let mut oracle = Oracle::new(&trace);
        let f = trace.invocations()[0].function;
        let first = trace.invocations()[0].arrival;
        let next = oracle.next_invocation(f, first);
        assert!(next.is_none() || next.unwrap() > first);
    }
}
