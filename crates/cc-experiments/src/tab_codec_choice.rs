//! §3.2: why CodeCrunch picks an lz4-class codec over an xz-class one.
//!
//! The paper argues that a compression-focused codec "can increase the
//! decompression time, and hence, negate the benefit of warm starts". This
//! experiment quantifies that: the same CodeCrunch run with the warm pool
//! compressed by the fast codec (≈2.5× ratio, ≈0.35 s decode) versus the
//! dense codec (≈3.3× ratio, ≈6 s decode at the paper's image sizes).

use serde_json::json;

use cc_compress::{CodecKind, CompressionModel};
use cc_types::StartKind;
use cc_workload::{Catalog, Workload};
use codecrunch::CodeCrunch;

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// Codec-choice experiment.
pub struct TabCodecChoice;

impl Experiment for TabCodecChoice {
    fn id(&self) -> &'static str {
        "tab_codec_choice"
    }

    fn title(&self) -> &'static str {
        "lz4-class vs xz-class warm-pool compression (§3.2 codec-choice argument)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let model = CompressionModel::paper_default();
        let catalog = Catalog::paper_catalog();
        let unlimited = scale.cluster();

        let mut lines = vec![format!(
            "{:<8} {:>12} {:>8} {:>18} {:>14}",
            "codec", "service (s)", "warm %", "compressed starts", "mean decode (s)"
        )];
        let mut rows = Vec::new();
        for codec in CodecKind::ALL {
            let workload = Workload::from_trace_with_codec(&trace, &catalog, &model, codec);
            let budget = sitw_budget_per_interval(&trace, &workload, &unlimited).scale(0.5);
            let config = unlimited.clone().with_budget(budget);
            let mut policy = CodeCrunch::new();
            let report = run_policy(&mut policy, &config, &trace, &workload);
            let compressed_starts = report.stats.breakdown(StartKind::WarmCompressed).count;
            let decodes: Vec<f64> = report
                .records
                .iter()
                .filter(|r| r.kind == StartKind::WarmCompressed)
                .map(|r| r.start_penalty.as_secs_f64())
                .collect();
            let mean_decode = if decodes.is_empty() {
                0.0
            } else {
                decodes.iter().sum::<f64>() / decodes.len() as f64
            };
            lines.push(format!(
                "{:<8} {:>12.3} {:>7.1}% {:>18} {:>14.2}",
                format!("{codec:?}"),
                report.mean_service_time_secs(),
                report.warm_fraction() * 100.0,
                compressed_starts,
                mean_decode
            ));
            rows.push(json!({
                "codec": format!("{codec:?}"),
                "mean_service_secs": report.mean_service_time_secs(),
                "warm_fraction": report.warm_fraction(),
                "compressed_starts": compressed_starts,
                "mean_decode_secs": mean_decode,
            }));
        }
        lines.push(
            "(the dense codec's larger ratio buys more warm capacity, but its decode \
             latency erodes — or erases — the warm-start advantage, which is why the \
             paper selects lz4)"
                .to_owned(),
        );

        ExperimentOutput::new(self.id(), lines, json!({ "rows": rows }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_codec_wins_on_service_time() {
        let out = TabCodecChoice.run(&Scale::smoke());
        let rows = out.data["rows"].as_array().unwrap();
        let fast = rows[0]["mean_service_secs"].as_f64().unwrap();
        let dense = rows[1]["mean_service_secs"].as_f64().unwrap();
        assert!(
            fast <= dense * 1.02,
            "fast codec {fast}s should beat dense {dense}s"
        );
        // The dense codec's decode latency must actually show up.
        let fast_decode = rows[0]["mean_decode_secs"].as_f64().unwrap();
        let dense_decode = rows[1]["mean_decode_secs"].as_f64().unwrap();
        if dense_decode > 0.0 && fast_decode > 0.0 {
            assert!(dense_decode > fast_decode * 2.0);
        }
    }
}
