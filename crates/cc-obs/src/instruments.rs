//! Streaming instruments built on the event stream.
//!
//! These are the primitive accumulators [`Telemetry`](crate::Telemetry)
//! composes: monotonic [`Counter`]s, up/down [`Gauge`]s with peak
//! tracking, and the constant-memory [`LogHistogram`] for latency-shaped
//! distributions whose dynamic range spans microseconds to minutes.
//! Quantile estimation over exact values reuses
//! [`cc_metrics::P2Quantile`]; this module only adds what `cc-metrics`
//! does not have.

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// An up/down gauge that remembers its high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
    peak: i64,
}

impl Gauge {
    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&mut self, delta: i64) {
        self.value += delta;
        self.peak = self.peak.max(self.value);
    }

    /// The current level.
    pub fn get(self) -> i64 {
        self.value
    }

    /// The highest level ever reached.
    pub fn peak(self) -> i64 {
        self.peak
    }
}

/// Number of power-of-two buckets (covers the full `u64` range).
const BUCKETS: usize = 65;

/// A log-bucketed histogram of non-negative integer observations
/// (typically microseconds).
///
/// Bucket `b` holds values in `[2^(b-1), 2^b)`, with bucket 0 holding the
/// value 0 — so relative resolution is a constant 2× at every magnitude
/// and memory is a fixed 65 words. Exact enough for the "where did the
/// time go" question telemetry answers; use [`cc_metrics::P2Quantile`]
/// when sub-bucket quantile precision matters.
///
/// # Example
///
/// ```
/// use cc_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [0, 1, 3, 900, 1_000_000] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1_000_000);
/// assert!(h.quantile(0.5) >= 3 && h.quantile(0.5) < 1024);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The exclusive upper bound of bucket `b` (0 for bucket 0 means "the
    /// value zero").
    fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            1u64 << b
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// An upper bound on the `q`-quantile (`q ∈ [0, 1]`): the exclusive
    /// upper edge of the bucket containing that rank, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(b).min(self.max).max(if b == 0 {
                    0
                } else {
                    1u64 << (b - 1)
                });
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_inclusive, upper_exclusive, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                (lo, Self::bucket_upper(b).max(lo), c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);

        let mut g = Gauge::default();
        g.add(3);
        g.add(2);
        g.add(-4);
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 5);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let mut h = LogHistogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 5);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // 0 | [1,2) | [2,4) ×2 | [1024, 2048)
        assert_eq!(buckets[0], (0, 0, 1));
        assert_eq!(buckets[1], (1, 2, 1));
        assert_eq!(buckets[2], (2, 4, 2));
        assert_eq!(buckets[3], (1024, 2048, 1));
    }

    #[test]
    fn quantiles_bound_the_rank() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // The p50 rank (500) lives in bucket [256, 512).
        let p50 = h.quantile(0.5);
        assert!((256..=512).contains(&p50), "p50 bound {p50}");
        // The max rank is clamped to the observed max.
        assert_eq!(h.quantile(1.0), 1000);
        // Rank clamps to the first sample; its bucket [1, 2) reports the
        // exclusive upper edge.
        assert_eq!(h.quantile(0.0), 2);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn mean_tracks_sum() {
        let mut h = LogHistogram::new();
        h.observe(10);
        h.observe(30);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.max(), 30);
    }
}
