//! §3.1: sensitivity of CodeCrunch to the `P_est` local window size.
//!
//! Paper result: with *local* defined as anywhere from the last 2 to the
//! last 100 invocations, CodeCrunch's effectiveness changes by no more
//! than 2.6% — the estimator blends local and global statistics, so the
//! window size is not a sensitive hyperparameter.

use serde_json::json;

use codecrunch::{CodeCrunch, CodeCrunchConfig};

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// P_est window-sensitivity experiment.
pub struct TabPestWindow;

impl Experiment for TabPestWindow {
    fn id(&self) -> &'static str {
        "tab_pest_window"
    }

    fn title(&self) -> &'static str {
        "sensitivity to the P_est local window size (paper §3.1: ≤2.6% from 2 to 100)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let unlimited = scale.cluster();
        let budget = sitw_budget_per_interval(&trace, &workload, &unlimited).scale(0.5);
        let config = unlimited.with_budget(budget);

        let windows = [2usize, 5, 10, 25, 100];
        let mut lines = vec![format!(
            "{:<10} {:>12} {:>8}",
            "window", "service (s)", "warm %"
        )];
        let mut services = Vec::new();
        let mut rows = Vec::new();
        for &window in &windows {
            let mut policy = CodeCrunch::with_config(CodeCrunchConfig {
                pest_local_window: window,
                ..CodeCrunchConfig::default()
            });
            let report = run_policy(&mut policy, &config, &trace, &workload);
            lines.push(format!(
                "{:<10} {:>12.3} {:>7.1}%",
                window,
                report.mean_service_time_secs(),
                report.warm_fraction() * 100.0
            ));
            services.push(report.mean_service_time_secs());
            rows.push(json!({
                "window": window,
                "mean_service_secs": report.mean_service_time_secs(),
                "warm_fraction": report.warm_fraction(),
            }));
        }
        let min = services.iter().copied().fold(f64::INFINITY, f64::min);
        let max = services.iter().copied().fold(0.0, f64::max);
        let spread = (max / min - 1.0) * 100.0;
        lines.push(format!(
            "service-time spread across windows: {spread:.1}% (paper: <=2.6%)"
        ));

        ExperimentOutput::new(
            self.id(),
            lines,
            json!({"rows": rows, "spread_percent": spread}),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_size_is_not_a_sensitive_hyperparameter() {
        let out = TabPestWindow.run(&Scale::smoke());
        let spread = out.data["spread_percent"].as_f64().unwrap();
        // Paper: ≤2.6% at Azure scale; allow more slack at smoke scale.
        assert!(spread < 10.0, "spread {spread}% too sensitive");
    }
}
