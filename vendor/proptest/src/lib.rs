//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`Strategy`] implementations for numeric ranges, tuples,
//! `any::<T>()`, `prop::collection::vec`, `prop::option::of`, `Just`, and
//! `prop_map`, plus the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its seed and case number;
//!   re-running is deterministic, so the failure reproduces exactly.
//! - **Deterministic seeding.** The RNG seed derives from the test
//!   function's name, so runs are reproducible across machines with no
//!   regression files (`*.proptest-regressions` files are ignored).
//! - Default case count is 64 (upstream: 256) to keep debug-profile suite
//!   times reasonable; override per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for a named test (FNV-1a over the name).
    pub fn for_test(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (resampling, up to a retry
    /// bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.sample(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; property tests here never rely on NaN/Inf.
        rng.gen_range(-1e12f64..1e12)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A size specification for collections: fixed or ranged.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of values drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Option<S::Value>`.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `None` roughly a quarter of the time, `Some` of the
        /// inner strategy otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use super::{any, prop, Arbitrary, Just, ProptestConfig, SizeRange, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` runs `config.cases` times with fresh
/// strategy samples bound to its argument patterns.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( #[test] fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    // Sample every strategy, then run the body; the body
                    // returns Err on prop_assert failure and Ok(()) both on
                    // success and on prop_assume rejection.
                    let strategies = ( $($strat,)+ );
                    let ( $($pat,)+ ) = $crate::Strategy::sample(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, message
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_sampling_per_name() {
        let strat = (0u64..100, 0.0f64..1.0);
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a).0, strat.sample(&mut b).0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in -2i64..=2, f in 0.5f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u8..4, any::<bool>()), flag in any::<bool>()) {
            prop_assert!(a < 4);
            let _ = b;
            prop_assume!(flag);
            prop_assert!(flag);
        }

        #[test]
        fn prop_map_applies(v in (0u8..2).prop_map(|b| b == 1)) {
            prop_assert_eq!(v as u8 <= 1, true);
        }
    }
}
