//! Event-log replay for the CodeCrunch simulator.
//!
//! `cc-obs` makes a simulation run fully observable as a canonical JSONL
//! event stream; this crate closes the loop by making that stream fully
//! *recoverable*. It has three layers, each consuming the one below:
//!
//! 1. **Decoder** ([`decode`]) — parses the canonical JSONL back into the
//!    typed [`Event`](cc_obs::Event) enum, including the sharded framing
//!    (`shard_begin`/`shard_end` markers) written by `cc_shard::mux_jsonl`.
//!    Every malformed input is a typed [`DecodeError`]/[`StreamError`] with
//!    a byte or line position — never a panic. Because the encoder is
//!    canonical (stable key order, shortest-round-trip floats), decoding is
//!    exact: re-encoding a decoded event reproduces the input line
//!    byte-for-byte.
//! 2. **Auditor** ([`audit`]) — a single pass over a decoded stream that
//!    checks the engine's conservation laws (admit/release pairing, no use
//!    after eviction, budget debit/credit balance, monotone timestamps,
//!    compression pairing, per-interval sample consistency) and reports
//!    every violation with its line number. Lossy or sampled captures are
//!    audited in an explicit degraded mode instead of producing false
//!    positives.
//! 3. **Reconstructor** ([`reconstruct`]) — rebuilds the
//!    [`Telemetry`](cc_obs::Telemetry) accumulator purely from the log, so
//!    every live table, report, and digest can be reproduced offline,
//!    byte-for-byte. `ccstat replay <file.jsonl>` is a thin CLI over this.
//!
//! The differential contract — *replayed telemetry equals live telemetry,
//! field for field, for every policy, serial and sharded* — is enforced by
//! the workspace's `replay_differential` golden test.
//!
//! # Example
//!
//! ```
//! use cc_obs::{EventSink, JsonlSink, Telemetry};
//! use cc_replay::{audit_log, decode_stream, reconstruct};
//! use cc_types::SimDuration;
//!
//! // A live run writes JSONL and accumulates telemetry...
//! let interval = SimDuration::from_micros(60_000_000);
//! let mut live = Telemetry::new(interval);
//! let mut sink = JsonlSink::new(Vec::new());
//! let event = cc_obs::Event::PrewarmDropped {
//!     at: cc_types::SimTime::from_micros(5),
//!     function: cc_types::FunctionId::new(3),
//!     arch: cc_types::Arch::X86,
//! };
//! live.record(&event);
//! sink.record(&event);
//!
//! // ...and the log alone reproduces it exactly.
//! let text = String::from_utf8(sink.finish().unwrap()).unwrap();
//! let log = decode_stream(&text).unwrap();
//! assert!(audit_log(&log, false).is_clean());
//! let replayed = cc_replay::reconstruct_with_interval(&log.shards[0], interval);
//! assert_eq!(replayed.digest(), live.digest());
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod decode;
pub mod reconstruct;

pub use audit::{audit_log, audit_shard, AuditReport, ShardAudit, Violation};
pub use decode::{
    decode_line, decode_stream, DecodeError, DecodeErrorKind, Line, ReplayLog, ShardEndInfo,
    ShardStream, StreamError, StreamErrorKind,
};
pub use reconstruct::{
    infer_interval, reconstruct, reconstruct_records, reconstruct_with_interval, DEFAULT_INTERVAL,
};
