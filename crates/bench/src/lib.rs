//! Shared fixtures for the Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_compress::CompressionModel;
use cc_sim::ClusterConfig;
use cc_trace::{StreamingTrace, StreamingTraceBuilder, SyntheticTrace, Trace};
use cc_types::SimDuration;
use cc_workload::{Catalog, Workload};

/// A small but non-trivial benchmark scenario: enough functions and
/// invocations that policy differences register, small enough that a
/// Criterion iteration stays in the tens of milliseconds.
pub struct BenchScenario {
    /// The trace.
    pub trace: Trace,
    /// The resolved workload.
    pub workload: Workload,
    /// The cluster configuration.
    pub config: ClusterConfig,
}

impl BenchScenario {
    /// Builds the standard benchmark scenario.
    pub fn new() -> BenchScenario {
        let trace = SyntheticTrace::builder()
            .functions(40)
            .duration(SimDuration::from_mins(60))
            .seed(11)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        BenchScenario {
            trace,
            workload,
            config: ClusterConfig::small(2, 2),
        }
    }
}

impl BenchScenario {
    /// The hot-path stress scenario: 10 000 functions on a 124-node
    /// cluster (the paper's 13+18 topology scaled 4×) with a warm-memory
    /// cap tight enough that demand always exceeds it, so the pool holds
    /// thousands of instances and eviction (`make_room`) fires constantly.
    /// This is the scale at which per-arrival sorts, per-cold-start node
    /// sorts, and cluster-wide eviction scans dominate; the indexing
    /// refactor targets exactly this.
    pub fn large() -> BenchScenario {
        let trace = SyntheticTrace::builder()
            .functions(10_000)
            .duration(SimDuration::from_mins(20))
            .seed(12)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        BenchScenario {
            trace,
            workload,
            config: ClusterConfig::small(52, 72).with_warm_memory_fraction(0.4),
        }
    }
}

impl Default for BenchScenario {
    fn default() -> Self {
        BenchScenario::new()
    }
}

/// A streaming benchmark scenario: the invocation stream is generated on
/// the fly (O(#functions) memory) instead of being materialized, which is
/// what makes the million-function scale reachable at all. Each replay
/// pulls a fresh, identically-seeded stream from [`StreamScenario::source`].
pub struct StreamScenario {
    builder: StreamingTraceBuilder,
    /// The resolved workload (from the function table alone).
    pub workload: Workload,
    /// The cluster configuration.
    pub config: ClusterConfig,
    /// Number of unique functions.
    pub functions: usize,
    /// Expected invocation count (Poisson mean) — the actual count is
    /// deterministic per seed but only known after a replay.
    pub expected_invocations: usize,
}

impl StreamScenario {
    /// The headline scale: one million functions over two simulated days,
    /// ~12M invocations, on the 124-node stress cluster.
    pub fn million() -> StreamScenario {
        StreamScenario::sized(1_000_000, 48 * 60, 8 * 60)
    }

    /// A CI-sized streaming scenario: 20k functions over half a day,
    /// ~250k invocations — large enough to exercise the feeder/encoder
    /// pipeline, small enough for a per-push smoke run.
    pub fn smoke() -> StreamScenario {
        StreamScenario::sized(20_000, 12 * 60, 2 * 60)
    }

    /// Builds a streaming scenario with `functions` functions over
    /// `duration_mins` minutes and a median per-function mean gap of
    /// `gap_mins` minutes.
    pub fn sized(functions: usize, duration_mins: u64, gap_mins: u64) -> StreamScenario {
        let mut builder = StreamingTrace::builder();
        builder
            .functions(functions)
            .duration(SimDuration::from_mins(duration_mins))
            .seed(31)
            .mean_gap_median(SimDuration::from_mins(gap_mins));
        let probe = builder.build();
        let workload = Workload::from_functions(
            probe.functions(),
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        StreamScenario {
            expected_invocations: probe.expected_invocations(),
            functions,
            builder,
            workload,
            config: ClusterConfig::small(52, 72).with_warm_memory_fraction(0.4),
        }
    }

    /// A fresh, identically-seeded arrival stream (one per replay).
    pub fn source(&self) -> StreamingTrace {
        self.builder.build()
    }
}
