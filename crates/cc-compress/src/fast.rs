//! `CrunchFast`: an LZ4-style byte-oriented LZ77 codec.
//!
//! The frame layout is:
//!
//! ```text
//! magic "CCF1" | LEB128 original length | token stream
//! ```
//!
//! and the token stream is a sequence of LZ4-style sequences:
//!
//! ```text
//! token byte:  [ literal-run : 4 bits | match-len - 4 : 4 bits ]
//! optional literal-run extension bytes (each 255 continues)
//! literal bytes
//! 2-byte little-endian match offset (absent for the terminal sequence)
//! optional match-len extension bytes
//! ```
//!
//! A nibble value of 15 signals that extension bytes follow: each `0xFF`
//! extension byte adds 255 and the first non-`0xFF` byte terminates the
//! run. Decoding stops when the declared original length has been produced,
//! so the final sequence carries literals only.

use crate::{fnv1a64, Codec, DecodeError};

/// Frame magic for the fast codec.
const MAGIC: &[u8; 4] = b"CCF1";
/// Minimum match length worth encoding (below this, literals are cheaper).
const MIN_MATCH: usize = 4;
/// Maximum backwards offset representable in the 2-byte offset field.
const MAX_OFFSET: usize = u16::MAX as usize;
/// log2 of the match-finder hash table size.
const HASH_BITS: u32 = 15;

/// The LZ4-style codec: greedy hash-table match finding, byte-aligned
/// output, decompression that is a straight memcpy loop.
///
/// Plays the role of the paper's `lz4` (fast decode, moderate ratio).
///
/// # Example
///
/// ```
/// use cc_compress::{Codec, CrunchFast};
///
/// let data = b"abcabcabcabcabcabc".to_vec();
/// let frame = CrunchFast.compress(&data);
/// assert_eq!(CrunchFast.decompress(&frame)?, data);
/// # Ok::<(), cc_compress::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CrunchFast;

/// Writes `value` as a LEB128 varint.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, returning `(value, bytes_consumed)`.
pub(crate) fn read_varint(input: &[u8], at: usize) -> Result<(u64, usize), DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut pos = at;
    loop {
        let &byte = input
            .get(pos)
            .ok_or(DecodeError::Truncated { offset: pos })?;
        if shift >= 63 && byte > 1 {
            return Err(DecodeError::BadHeader);
        }
        value |= u64::from(byte & 0x7F) << shift;
        pos += 1;
        if byte & 0x80 == 0 {
            return Ok((value, pos - at));
        }
        shift += 7;
    }
}

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Appends a nibble-extended length: writes extension bytes for
/// `value >= 15`.
fn push_extended_len(out: &mut Vec<u8>, mut value: usize) {
    // Caller has already packed min(value, 15) into the token nibble.
    if value < 15 {
        return;
    }
    value -= 15;
    while value >= 255 {
        out.push(0xFF);
        value -= 255;
    }
    out.push(value as u8);
}

/// Reads a nibble-extended length given the 4-bit `nibble` already parsed.
fn read_extended_len(input: &[u8], pos: &mut usize, nibble: usize) -> Result<usize, DecodeError> {
    if nibble < 15 {
        return Ok(nibble);
    }
    let mut len = 15usize;
    loop {
        let &byte = input
            .get(*pos)
            .ok_or(DecodeError::Truncated { offset: *pos })?;
        *pos += 1;
        len += byte as usize;
        if byte != 0xFF {
            return Ok(len);
        }
    }
}

/// One LZ77 sequence: a run of literals followed by an optional match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[doc(hidden)]
pub struct Sequence {
    /// Start of the literal run in the input.
    pub literal_start: usize,
    /// Length of the literal run.
    pub literal_len: usize,
    /// Backwards match offset (`0` means "no match": terminal sequence).
    pub offset: usize,
    /// Match length (`0` iff `offset == 0`).
    pub match_len: usize,
}

/// Length of the common prefix of `input[a..]` and `input[b..]`, compared
/// eight bytes at a time (`a < b`, so every in-bounds read on the `b` side
/// guarantees the `a` side is in bounds too). The first differing word
/// locates the mismatching byte via the XOR's trailing zeros; the last
/// `< 8` bytes fall back to a byte loop.
fn match_extension(input: &[u8], mut a: usize, mut b: usize) -> usize {
    debug_assert!(a < b);
    let n = input.len();
    let mut ext = 0usize;
    while b + 8 <= n {
        let wa = u64::from_le_bytes(input[a..a + 8].try_into().expect("8 bytes"));
        let wb = u64::from_le_bytes(input[b..b + 8].try_into().expect("8 bytes"));
        let diff = wa ^ wb;
        if diff != 0 {
            return ext + (diff.trailing_zeros() / 8) as usize;
        }
        a += 8;
        b += 8;
        ext += 8;
    }
    while b < n && input[a] == input[b] {
        a += 1;
        b += 1;
        ext += 1;
    }
    ext
}

/// Greedy LZ77 parse shared by both codecs.
#[doc(hidden)]
pub fn parse_sequences(input: &[u8]) -> Vec<Sequence> {
    let n = input.len();
    let mut sequences = Vec::new();
    if n == 0 {
        return sequences;
    }
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut anchor = 0usize; // start of the pending literal run
    let mut i = 0usize;
    // Last MIN_MATCH-1 bytes can never start a match.
    while i + MIN_MATCH <= n {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        let found = candidate != usize::MAX
            && i - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH];
        if !found {
            i += 1;
            continue;
        }
        // Extend the match as far as it goes (word-at-a-time).
        let len = MIN_MATCH + match_extension(input, candidate + MIN_MATCH, i + MIN_MATCH);
        sequences.push(Sequence {
            literal_start: anchor,
            literal_len: i - anchor,
            offset: i - candidate,
            match_len: len,
        });
        // Index a few positions inside the match so later data can refer
        // back into it, then jump past it.
        let end = i + len;
        let mut j = i + 1;
        while j + MIN_MATCH <= n && j < end {
            table[hash4(&input[j..])] = j;
            j += 2;
        }
        i = end;
        anchor = end;
    }
    sequences.push(Sequence {
        literal_start: anchor,
        literal_len: n - anchor,
        offset: 0,
        match_len: 0,
    });
    sequences
}

impl Codec for CrunchFast {
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, input.len() as u64);
        out.extend_from_slice(&fnv1a64(input).to_le_bytes());
        for seq in parse_sequences(input) {
            let lit_nibble = seq.literal_len.min(15);
            let match_code = if seq.offset == 0 {
                0
            } else {
                (seq.match_len - MIN_MATCH).min(15)
            };
            out.push(((lit_nibble << 4) | match_code) as u8);
            push_extended_len(&mut out, seq.literal_len);
            out.extend_from_slice(&input[seq.literal_start..seq.literal_start + seq.literal_len]);
            if seq.offset != 0 {
                out.extend_from_slice(&(seq.offset as u16).to_le_bytes());
                push_extended_len(&mut out, seq.match_len - MIN_MATCH);
            }
        }
        out
    }

    fn decompress(&self, frame: &[u8]) -> Result<Vec<u8>, DecodeError> {
        if frame.len() < MAGIC.len() || &frame[..MAGIC.len()] != MAGIC {
            return Err(if frame.len() < MAGIC.len() {
                DecodeError::Truncated {
                    offset: frame.len(),
                }
            } else {
                DecodeError::BadHeader
            });
        }
        let mut pos = MAGIC.len();
        let (expected, consumed) = read_varint(frame, pos)?;
        let expected = usize::try_from(expected).map_err(|_| DecodeError::BadHeader)?;
        pos += consumed;
        let digest_bytes = frame.get(pos..pos + 8).ok_or(DecodeError::Truncated {
            offset: frame.len(),
        })?;
        let declared_digest = u64::from_le_bytes(digest_bytes.try_into().expect("8 bytes"));
        pos += 8;

        // Cap the upfront reservation: `expected` is attacker-controlled and
        // a hostile header must not trigger a huge allocation before the
        // (truncated) body is even inspected.
        let mut out = Vec::with_capacity(expected.min(1 << 20));
        while out.len() < expected {
            let &token = frame
                .get(pos)
                .ok_or(DecodeError::Truncated { offset: pos })?;
            pos += 1;
            let lit_len = read_extended_len(frame, &mut pos, (token >> 4) as usize)?;
            let lits = frame
                .get(pos..pos + lit_len)
                .ok_or(DecodeError::Truncated {
                    offset: frame.len(),
                })?;
            out.extend_from_slice(lits);
            pos += lit_len;
            if out.len() >= expected {
                break;
            }
            let off_bytes = frame.get(pos..pos + 2).ok_or(DecodeError::Truncated {
                offset: frame.len(),
            })?;
            let offset = u16::from_le_bytes([off_bytes[0], off_bytes[1]]) as usize;
            pos += 2;
            let match_len =
                read_extended_len(frame, &mut pos, (token & 0x0F) as usize)? + MIN_MATCH;
            copy_match(&mut out, offset, match_len)?;
        }
        if out.len() != expected {
            return Err(DecodeError::LengthMismatch {
                expected,
                actual: out.len(),
            });
        }
        let actual_digest = fnv1a64(&out);
        if actual_digest != declared_digest {
            return Err(DecodeError::ChecksumMismatch {
                expected: declared_digest,
                actual: actual_digest,
            });
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "crunch-fast"
    }
}

/// Copies an overlapping LZ77 match (`offset` may be less than `len`).
///
/// Non-overlapping matches (`offset >= len`) are a single
/// `extend_from_within` (a memcpy). Overlapping matches — the RLE-style
/// case — are materialized in doubling chunks: the stream being produced
/// is periodic with period `offset`, so any copy whose source lags the
/// write position by a *multiple of the period* preserves the bytes
/// exactly, and each chunk can be as large as everything materialized so
/// far (rounded down to a period multiple). `O(log(len/offset))` memcpys
/// instead of `len` byte pushes, no `unsafe`.
pub(crate) fn copy_match(out: &mut Vec<u8>, offset: usize, len: usize) -> Result<(), DecodeError> {
    if offset == 0 || offset > out.len() {
        return Err(DecodeError::BadMatchOffset {
            offset,
            produced: out.len(),
        });
    }
    let start = out.len() - offset;
    if offset >= len {
        out.extend_from_within(start..start + len);
        return Ok(());
    }
    // Seed one full period, then double.
    out.extend_from_within(start..start + offset);
    let mut filled = offset;
    while filled < len {
        let lag = filled - filled % offset;
        let take = (len - filled).min(lag);
        let end = out.len();
        out.extend_from_within(end - lag..end - lag + take);
        filled += take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let frame = CrunchFast.compress(data);
        CrunchFast.decompress(&frame).expect("roundtrip decode")
    }

    /// Byte-at-a-time reference for [`match_extension`]: the loop the
    /// word-wise version replaced, kept as the differential oracle.
    fn match_extension_scalar(input: &[u8], a: usize, b: usize) -> usize {
        let n = input.len();
        let mut ext = 0;
        while b + ext < n && input[a + ext] == input[b + ext] {
            ext += 1;
        }
        ext
    }

    /// Byte-at-a-time reference for [`copy_match`], kept as the
    /// differential oracle for the chunked version.
    fn copy_match_scalar(out: &mut Vec<u8>, offset: usize, len: usize) {
        assert!(offset != 0 && offset <= out.len());
        let start = out.len() - offset;
        for k in 0..len {
            let byte = out[start + k];
            out.push(byte);
        }
    }

    /// Reference greedy parse using the scalar extension loop; must emit
    /// the exact sequence list the vectorized parse does (the frame bytes
    /// — and therefore every golden digest downstream — depend on it).
    fn parse_sequences_scalar(input: &[u8]) -> Vec<Sequence> {
        let n = input.len();
        let mut sequences = Vec::new();
        if n == 0 {
            return sequences;
        }
        let mut table = vec![usize::MAX; 1 << HASH_BITS];
        let mut anchor = 0usize;
        let mut i = 0usize;
        while i + MIN_MATCH <= n {
            let h = hash4(&input[i..]);
            let candidate = table[h];
            table[h] = i;
            let found = candidate != usize::MAX
                && i - candidate <= MAX_OFFSET
                && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH];
            if !found {
                i += 1;
                continue;
            }
            let mut len = MIN_MATCH;
            while i + len < n && input[candidate + len] == input[i + len] {
                len += 1;
            }
            sequences.push(Sequence {
                literal_start: anchor,
                literal_len: i - anchor,
                offset: i - candidate,
                match_len: len,
            });
            let end = i + len;
            let mut j = i + 1;
            while j + MIN_MATCH <= n && j < end {
                table[hash4(&input[j..])] = j;
                j += 2;
            }
            i = end;
            anchor = end;
        }
        sequences.push(Sequence {
            literal_start: anchor,
            literal_len: n - anchor,
            offset: 0,
            match_len: 0,
        });
        sequences
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn tiny_inputs_are_literals() {
        for len in 1..=8 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(roundtrip(&data), data);
        }
    }

    #[test]
    fn repetitive_input_compresses() {
        let data = b"serverless ".repeat(500);
        let frame = CrunchFast.compress(&data);
        assert!(
            frame.len() < data.len() / 4,
            "expected >4x on repetitive input, got {} -> {}",
            data.len(),
            frame.len()
        );
        assert_eq!(CrunchFast.decompress(&frame).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle() {
        // Classic RLE case: offset 1, long match.
        let data = vec![7u8; 10_000];
        let frame = CrunchFast.compress(&data);
        assert!(frame.len() < 100);
        assert_eq!(CrunchFast.decompress(&frame).unwrap(), data);
    }

    #[test]
    fn incompressible_input_survives() {
        // A pseudo-random byte sequence with no 4-byte repeats.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        let frame = CrunchFast.compress(&data);
        assert_eq!(CrunchFast.decompress(&frame).unwrap(), data);
        // Expansion is bounded by the token overhead.
        assert!(frame.len() < data.len() + data.len() / 32 + 32);
    }

    #[test]
    fn long_literal_and_match_extensions() {
        // >15 literals then a >19-byte match exercises both extension paths.
        let mut data: Vec<u8> = (0u8..=255).collect();
        data.extend(std::iter::repeat_n(42u8, 1000));
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            CrunchFast.decompress(b"XXXX\x00"),
            Err(DecodeError::BadHeader)
        );
    }

    #[test]
    fn truncated_frames_never_return_wrong_data() {
        // Truncation must either fail or — when only the terminal
        // zero-literal token was cut — still decode to the exact original.
        let data = b"hello world hello world hello".repeat(10);
        let frame = CrunchFast.compress(&data);
        for cut in 1..frame.len() {
            match CrunchFast.decompress(&frame[..cut]) {
                Err(_) => {}
                Ok(decoded) => assert_eq!(decoded, data, "cut at {cut}"),
            }
        }
    }

    #[test]
    fn rejects_bad_match_offset() {
        let mut frame = Vec::new();
        frame.extend_from_slice(MAGIC);
        write_varint(&mut frame, 10);
        frame.extend_from_slice(&0u64.to_le_bytes()); // placeholder digest
                                                      // Token: 1 literal, match nibble 0 (match len 4), then offset 9 —
                                                      // but only 1 byte has been produced.
        frame.push(0x10);
        frame.push(b'a');
        frame.extend_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            CrunchFast.decompress(&frame),
            Err(DecodeError::BadMatchOffset { .. })
        ));
    }

    #[test]
    fn literal_corruption_fails_the_checksum() {
        // Incompressible data: the frame body is one long literal run, so
        // flipping a payload bit keeps the structure valid — only the
        // checksum can catch it.
        let mut state = 0x9E3779B9u32;
        let data: Vec<u8> = (0..200)
            .map(|_| {
                state = state.wrapping_mul(747796405).wrapping_add(2891336453);
                (state >> 24) as u8
            })
            .collect();
        let mut frame = CrunchFast.compress(&data);
        let corrupt_at = frame.len() - 10; // deep inside the literal run
        frame[corrupt_at] ^= 0x01;
        assert!(matches!(
            CrunchFast.decompress(&frame),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn any_single_byte_corruption_is_detected() {
        let data = b"the quick brown fox jumps over the lazy dog ".repeat(8);
        let frame = CrunchFast.compress(&data);
        for i in 0..frame.len() {
            let mut corrupted = frame.clone();
            corrupted[i] ^= 0xFF;
            match CrunchFast.decompress(&corrupted) {
                Err(_) => {}
                Ok(decoded) => {
                    assert_eq!(decoded, data, "undetected corruption at byte {i}")
                }
            }
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, used) = read_varint(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn sequences_cover_input_exactly() {
        let data = b"abcdefabcdefabcdefabcdef-XYZ";
        let seqs = parse_sequences(data);
        let total: usize = seqs.iter().map(|s| s.literal_len + s.match_len).sum();
        assert_eq!(total, data.len());
        assert_eq!(seqs.last().unwrap().offset, 0);
    }

    #[test]
    fn overlap_copy_matches_scalar_at_every_offset_len() {
        // Exhaustive small cases: every (offset, len) pair up to a few
        // periods, over a non-periodic seed, covers the seed/double/tail
        // chunk boundaries of the vectorized copy.
        let seed: Vec<u8> = (0u8..37).collect();
        for offset in 1..=seed.len() {
            for len in 0..120 {
                let mut fast = seed.clone();
                let mut scalar = seed.clone();
                copy_match(&mut fast, offset, len).expect("valid offset");
                copy_match_scalar(&mut scalar, offset, len);
                assert_eq!(fast, scalar, "offset={offset} len={len}");
            }
        }
    }

    #[test]
    fn word_extension_matches_scalar_near_boundaries() {
        // Mismatch placed at every lane of the 8-byte word, plus
        // end-of-input cutoffs in the byte-wise tail.
        for mismatch_at in 0..20 {
            for tail in 0..10 {
                let mut data = vec![5u8; 8 + mismatch_at + tail];
                let b = 8;
                if b + mismatch_at < data.len() {
                    data[b + mismatch_at] = 6;
                }
                assert_eq!(
                    match_extension(&data, 0, b),
                    match_extension_scalar(&data, 0, b),
                    "mismatch_at={mismatch_at} tail={tail}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(roundtrip(&data), data);
        }

        #[test]
        fn parse_matches_scalar_on_arbitrary(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(parse_sequences(&data), parse_sequences_scalar(&data));
        }

        #[test]
        fn parse_matches_scalar_on_low_entropy(
            alphabet in 1u8..8,
            data in prop::collection::vec(any::<u8>(), 0..4096),
        ) {
            let data: Vec<u8> = data.into_iter().map(|b| b % alphabet).collect();
            prop_assert_eq!(parse_sequences(&data), parse_sequences_scalar(&data));
        }

        #[test]
        fn copy_match_matches_scalar_on_adversarial_overlaps(
            seed in prop::collection::vec(any::<u8>(), 1..64),
            offset in 1usize..64,
            len in 0usize..512,
        ) {
            // Self-referential copies where offset < len are the hard
            // case: each output byte may read bytes produced earlier in
            // the same match.
            let offset = offset.min(seed.len());
            let mut fast = seed.clone();
            let mut scalar = seed;
            copy_match(&mut fast, offset, len).expect("offset clamped to seed length");
            copy_match_scalar(&mut scalar, offset, len);
            prop_assert_eq!(fast, scalar);
        }

        #[test]
        fn roundtrip_low_entropy(
            alphabet in 1u8..8,
            data in prop::collection::vec(any::<u8>(), 0..4096),
        ) {
            let data: Vec<u8> = data.into_iter().map(|b| b % alphabet).collect();
            prop_assert_eq!(roundtrip(&data), data);
        }

        #[test]
        fn decompress_never_panics(frame in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = CrunchFast.decompress(&frame);
        }
    }
}
