//! Fig. 10: the keep-alive budget creditor.
//!
//! (a) CodeCrunch achieves a higher warm-start fraction than SitW under
//! the same budget (paper: +18 points), and (b) its per-minute budget
//! spend dips below the accrual rate in quiet periods and spikes above it
//! during peaks — the saved-up credit at work.

use serde_json::json;

use cc_policies::SitW;
use codecrunch::CodeCrunch;

use crate::common::{
    downsample, fmt_series, run_policy, sitw_budget_per_interval, sparkline, ExperimentOutput,
    Scale,
};
use crate::Experiment;

/// Fig. 10 experiment.
pub struct Fig10;

impl Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }

    fn title(&self) -> &'static str {
        "warm starts and per-minute budget spend under the creditor (Fig. 10)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let unlimited = scale.cluster();
        // Half of SitW's natural spend: scarce enough that crediting matters.
        let budget = sitw_budget_per_interval(&trace, &workload, &unlimited).scale(0.5);
        let config = unlimited.with_budget(budget);

        let mut sitw = SitW::new();
        let mut crunch = CodeCrunch::new();
        let r_sitw = run_policy(&mut sitw, &config, &trace, &workload);
        let r_crunch = run_policy(&mut crunch, &config, &trace, &workload);

        let warm_sitw = r_sitw.stats.warm_fraction_series();
        let warm_crunch = r_crunch.stats.warm_fraction_series();
        let spend = r_crunch.spend_per_interval.clone();
        let accrual = budget.as_dollars();
        let over_accrual = spend.iter().filter(|&&s| s > accrual * 1.2).count();
        let under_accrual = spend.iter().filter(|&&s| s < accrual * 0.8).count();

        let chunk = (scale.minutes as usize / 24).max(1);
        let lines = vec![
            format!(
                "warm starts: codecrunch {:.1}% vs sitw {:.1}% under the same budget (paper: +18 points)",
                r_crunch.warm_fraction() * 100.0,
                r_sitw.warm_fraction() * 100.0
            ),
            format!(
                "warm% series codecrunch: {}",
                fmt_series(&downsample(&warm_crunch, chunk), 2)
            ),
            format!(
                "warm% series sitw:       {}",
                fmt_series(&downsample(&warm_sitw, chunk), 2)
            ),
            format!(
                "budget accrual ${accrual:.9}/min; spend dips below it in {under_accrual} minutes \
                 and exceeds it in {over_accrual} minutes — saved credit spent at peaks"
            ),
            format!(
                "spend series ($/min): {}",
                fmt_series(&downsample(&spend, chunk), 9)
            ),
            format!("spend shape:          {}", sparkline(&downsample(&spend, chunk))),
        ];
        let data = json!({
            "warm_sitw": warm_sitw,
            "warm_codecrunch": warm_crunch,
            "mean_warm_sitw": r_sitw.warm_fraction(),
            "mean_warm_codecrunch": r_crunch.warm_fraction(),
            "spend_per_minute": spend,
            "accrual_per_minute": accrual,
            "minutes_over_accrual": over_accrual,
            "minutes_under_accrual": under_accrual,
        });
        ExperimentOutput::new(self.id(), lines, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codecrunch_warms_at_least_as_much_as_sitw() {
        let out = Fig10.run(&Scale::smoke());
        let crunch = out.data["mean_warm_codecrunch"].as_f64().unwrap();
        let sitw = out.data["mean_warm_sitw"].as_f64().unwrap();
        assert!(
            crunch >= sitw - 0.05,
            "codecrunch {crunch} should not trail sitw {sitw}"
        );
    }

    #[test]
    fn credit_is_banked_and_spent() {
        let out = Fig10.run(&Scale::smoke());
        // Crediting only manifests if spend varies around the accrual rate.
        let under = out.data["minutes_under_accrual"].as_u64().unwrap();
        assert!(under > 0, "spend should dip below accrual in quiet minutes");
    }
}
