//! `ccstat`: replay a synthetic trace under any policy with live telemetry.
//!
//! Prints one table row per completed optimization interval while the
//! replay runs (warm fraction, budget debit/credit, compression hits, pool
//! size, utilization, optimizer objective), then the final telemetry
//! report. Optionally exports the full event stream:
//!
//! ```text
//! cargo run --release -p bench --bin ccstat -- --policy codecrunch
//! cargo run --release -p bench --bin ccstat -- --policy all --chrome trace.json
//! cargo run --release -p bench --bin ccstat -- --policy sitw --jsonl events.jsonl
//! ```
//!
//! `--chrome` writes a Chrome `trace_event` file loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `about://tracing`: executions per node,
//! warm-instance lifetimes per node, and cluster counter tracks. `--jsonl`
//! writes one JSON object per event plus a final `snapshot` line. When
//! `--policy all` runs several policies, export paths get a `-<policy>`
//! suffix before the extension.
//!
//! `--shards N` replays the selected policies in parallel across `N`
//! worker threads (one policy per shard). `--jsonl` then produces one
//! merged, shard-tagged file: each policy's events stream over a bounded
//! channel to a mux thread, which writes the blocks in shard order with
//! `shard_begin`/`shard_end` markers, so the output is deterministic
//! regardless of scheduling. `--sample N` keeps one event in N
//! (deterministic, counter-based), `--lossy` drops instead of blocking
//! when the channel backs up; both report their drop counts at the end.
//! The live interval table is disabled in sharded mode (tables print per
//! policy after the sweep); `--chrome` stays serial-only.
//!
//! `ccstat replay <file.jsonl>` works entirely offline: it decodes a
//! previously exported event stream (serial or shard-tagged), rebuilds the
//! per-interval table and final telemetry report from the events alone,
//! and cross-checks the reconstruction against the recorded `snapshot`
//! lines. `--audit` additionally runs the stream invariant auditor and
//! exits non-zero on any violation; pass `--assume-sampled` for captures
//! taken with `--sample N` (counter sampling leaves no marker in the
//! file, so the auditor must be told to suppress pairing checks).
//!
//! `ccstat replay <file.jsonl> --gap` computes each shard's optimality gap
//! post-hoc, without re-simulating: service records and net keep-alive
//! spend are reconstructed from the recorded events, priced with
//! `cc-bound`'s cost model, and compared against the hindsight-optimal DP
//! lower bound over the *recorded* arrivals. The capture's scenario is not
//! stored in the stream, so pass the same `--functions/--minutes/--seed/`
//! `--x86/--arm` (and `--warm-fraction/--budget` if used) flags the
//! capture was taken with; they default to the live mode's defaults. A
//! negative gap means the recorded run beat the bound — a conservation
//! violation — and exits non-zero. Sampled or lossy captures cannot be
//! priced faithfully and are rejected.

//! `--profile` (serial mode only) replays each policy under `cc-prof`'s
//! wall-clock profiler and prints the per-phase self-time table after the
//! telemetry report. `--stress` prints a resource line — wall clock,
//! throughput, peak RSS, and total allocations; the allocation figures
//! need the `alloc-profile` feature (which installs the counting global
//! allocator) and print as "n/a" otherwise.

use std::fs::File;
use std::io::BufWriter;
use std::time::Instant;

use bench::BenchScenario;
use cc_bound::{measured_cost_of_records, GapReport, HindsightInput};
use cc_compress::CompressionModel;
use cc_policies::{FaasCache, IceBreaker, Oracle, SitW};
use cc_shard::{run_sharded, run_sharded_jsonl, NullSinkFactory, ShardedRunConfig};
use cc_sim::{
    ChannelSink, ChromeTraceSink, ClusterConfig, Event, EventSink, FixedKeepAlive, JsonlSink,
    NullSink, SamplingSink, Scheduler, SimReport, Simulation, Tee, Telemetry, WallProfiler,
};
use cc_trace::{SyntheticTrace, Trace};
use cc_types::{Cost, SimDuration};
use cc_workload::{Catalog, Workload};
use codecrunch::CodeCrunch;

/// With the `alloc-profile` feature, every allocation in this binary is
/// counted and attributed to the active profiling phase.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: cc_prof::CountingAllocator = cc_prof::CountingAllocator::new();

const USAGE: &str = "usage: ccstat [--policy NAME|all] [--functions N] [--minutes N] [--seed N] \
                     [--x86 N] [--arm N] [--warm-fraction F] [--budget DOLLARS] \
                     [--jsonl PATH] [--chrome PATH] [--no-table] [--stress] [--profile] \
                     [--shards N] [--sample N] [--lossy]\n\
                     \x20      ccstat replay FILE.jsonl [--audit] [--assume-sampled] [--no-table] \
                     [--gap] [--functions N] [--minutes N] [--seed N] [--x86 N] [--arm N] \
                     [--warm-fraction F] [--budget DOLLARS]";

const POLICIES: [&str; 6] = [
    "fixed_keepalive",
    "sitw",
    "faascache",
    "icebreaker",
    "oracle",
    "codecrunch",
];

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Telemetry plus optional exporters, with live interval-table printing.
/// One concrete sink type keeps `run_with_sink` monomorphization simple
/// while the exporters stay optional at runtime.
struct CcstatSink {
    telemetry: Telemetry,
    live: bool,
    jsonl: Option<JsonlSink<BufWriter<File>>>,
    chrome: Option<ChromeTraceSink<BufWriter<File>>>,
}

impl EventSink for CcstatSink {
    fn record(&mut self, event: &Event) {
        self.telemetry.record(event);
        if let Some(sink) = &mut self.jsonl {
            sink.record(event);
        }
        if let Some(sink) = &mut self.chrome {
            sink.record(event);
        }
        if self.live {
            if let Event::IntervalSampled { .. } = event {
                if let Some(row) = self.telemetry.latest_row() {
                    println!("{row}");
                }
            }
        }
    }
}

fn main() {
    let mut policy_arg = String::from("codecrunch");
    let mut functions: usize = 200;
    let mut minutes: u64 = 20;
    let mut seed: u64 = 7;
    let mut x86: u32 = 2;
    let mut arm: u32 = 2;
    let mut warm_fraction: Option<f64> = None;
    let mut budget: Option<f64> = None;
    let mut jsonl_path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    let mut live = true;
    let mut stress = false;
    let mut profile = false;
    let mut shards: Option<usize> = None;
    let mut sample_every: u64 = 1;
    let mut lossy = false;

    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("replay") {
        args.next();
        run_replay(args);
    }
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} takes a value")))
        };
        match arg.as_str() {
            "--policy" => policy_arg = next("--policy"),
            "--functions" => {
                functions = next("--functions")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--functions takes an integer"));
            }
            "--minutes" => {
                minutes = next("--minutes")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--minutes takes an integer"));
            }
            "--seed" => {
                seed = next("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed takes an integer"));
            }
            "--x86" => {
                x86 = next("--x86")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--x86 takes an integer"));
            }
            "--arm" => {
                arm = next("--arm")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--arm takes an integer"));
            }
            "--warm-fraction" => {
                warm_fraction = Some(
                    next("--warm-fraction")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--warm-fraction takes a fraction")),
                );
            }
            "--budget" => {
                budget = Some(
                    next("--budget")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--budget takes dollars per interval")),
                );
            }
            "--jsonl" => jsonl_path = Some(next("--jsonl")),
            "--chrome" => chrome_path = Some(next("--chrome")),
            "--no-table" => live = false,
            "--stress" => stress = true,
            "--profile" => profile = true,
            "--shards" => {
                shards = match next("--shards").parse() {
                    Ok(n) if n > 0 => Some(n),
                    _ => usage_error("--shards takes a positive worker count"),
                };
            }
            "--sample" => {
                sample_every = match next("--sample").parse() {
                    Ok(n) if n > 0 => n,
                    _ => usage_error("--sample takes a positive interval (1 keeps everything)"),
                };
            }
            "--lossy" => lossy = true,
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if shards.is_some() && chrome_path.is_some() {
        usage_error("--chrome is serial-only; use --jsonl with --shards");
    }
    if shards.is_none() && (sample_every != 1 || lossy) {
        usage_error("--sample and --lossy apply to the sharded channel; add --shards N");
    }
    if profile && shards.is_some() {
        usage_error("--profile prints one per-policy phase table; use it without --shards");
    }

    let names: Vec<&str> = if policy_arg == "all" {
        POLICIES.to_vec()
    } else if let Some(&name) = POLICIES.iter().find(|&&n| n == policy_arg) {
        vec![name]
    } else {
        usage_error(&format!(
            "unknown policy {policy_arg:?} (known: {POLICIES:?} or all)"
        ));
    };

    let (trace, workload, config) = if stress {
        let scenario = BenchScenario::large();
        (scenario.trace, scenario.workload, scenario.config)
    } else {
        let trace = SyntheticTrace::builder()
            .functions(functions)
            .duration(SimDuration::from_mins(minutes))
            .seed(seed)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let mut config = ClusterConfig::small(x86, arm);
        if let Some(fraction) = warm_fraction {
            config = config.with_warm_memory_fraction(fraction);
        }
        if let Some(dollars) = budget {
            config = config.with_budget(Cost::from_dollars(dollars));
        }
        (trace, workload, config)
    };
    eprintln!(
        "trace: {} functions, {} invocations over {} nodes",
        trace.functions().len(),
        trace.invocations().len(),
        config.total_nodes(),
    );

    if let Some(workers) = shards {
        run_sharded_mode(
            &names,
            &trace,
            &workload,
            &config,
            workers,
            jsonl_path.as_deref(),
            sample_every,
            lossy,
        );
        return;
    }

    let multi = names.len() > 1;
    for name in names {
        let mut policy = make_policy(name, &trace);
        println!("=== {name} ===");
        if live {
            println!("{}", Telemetry::interval_header());
        }
        let mut sink = CcstatSink {
            telemetry: Telemetry::new(config.interval),
            live,
            jsonl: jsonl_path
                .as_deref()
                .map(|p| JsonlSink::new(open(&policy_path(p, name, multi)))),
            chrome: chrome_path
                .as_deref()
                .map(|p| ChromeTraceSink::new(open(&policy_path(p, name, multi)))),
        };
        if profile {
            cc_prof::reset();
            cc_prof::set_wall_enabled(true);
        }
        let started = Instant::now();
        let sim = Simulation::new(config.clone(), &trace, &workload);
        let report = if profile {
            sim.run_with_sink_profiled::<_, WallProfiler>(policy.as_mut(), &mut sink)
        } else {
            sim.run_with_sink(policy.as_mut(), &mut sink)
        };
        let elapsed = started.elapsed();
        if !live {
            // Batch mode: print the whole table at the end instead.
            println!("{}", Telemetry::interval_header());
            for row in sink.telemetry.interval_rows() {
                println!("{row}");
            }
        }
        println!("{}", sink.telemetry.report());
        print_report_summary(&report);
        if stress {
            print_stress_line(&report, elapsed);
        }
        if profile {
            let self_profile = cc_prof::take_profile(name, elapsed.as_nanos() as u64);
            cc_prof::set_wall_enabled(false);
            println!("{}", self_profile.render_table());
        }
        if let Some(mut jsonl) = sink.jsonl {
            jsonl.write_line(&sink.telemetry.snapshot_line());
            let events = jsonl.events_written();
            finish(jsonl.finish(), "jsonl");
            eprintln!("jsonl: {events} events");
        }
        if let Some(chrome) = sink.chrome {
            finish(chrome.finish(), "chrome trace");
        }
    }
}

/// `ccstat replay`: offline reconstruction (and optional audit) of an
/// exported JSONL event stream. Exits 0 when the reconstruction is
/// consistent (and, with `--audit`, the stream is violation-free), 1
/// otherwise, 2 on usage errors.
fn run_replay(args: impl Iterator<Item = String>) -> ! {
    let mut file: Option<String> = None;
    let mut audit = false;
    let mut assume_sampled = false;
    let mut table = true;
    let mut gap = false;
    // Scenario flags for `--gap`: must match the capture (defaults mirror
    // the live mode's defaults).
    let mut functions: usize = 200;
    let mut minutes: u64 = 20;
    let mut seed: u64 = 7;
    let mut x86: u32 = 2;
    let mut arm: u32 = 2;
    let mut warm_fraction: Option<f64> = None;
    let mut budget: Option<f64> = None;
    let mut args = args;
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} takes a value")))
        };
        match arg.as_str() {
            "--audit" => audit = true,
            "--assume-sampled" => assume_sampled = true,
            "--no-table" => table = false,
            "--gap" => gap = true,
            "--functions" => {
                functions = next("--functions")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--functions takes an integer"));
            }
            "--minutes" => {
                minutes = next("--minutes")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--minutes takes an integer"));
            }
            "--seed" => {
                seed = next("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed takes an integer"));
            }
            "--x86" => {
                x86 = next("--x86")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--x86 takes an integer"));
            }
            "--arm" => {
                arm = next("--arm")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--arm takes an integer"));
            }
            "--warm-fraction" => {
                warm_fraction = Some(
                    next("--warm-fraction")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--warm-fraction takes a fraction")),
                );
            }
            "--budget" => {
                budget = Some(
                    next("--budget")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--budget takes dollars per interval")),
                );
            }
            other if !other.starts_with("--") && file.is_none() => file = Some(other.to_string()),
            other => usage_error(&format!("unknown replay argument {other:?}")),
        }
    }
    let path = file.unwrap_or_else(|| usage_error("replay takes a jsonl file"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| usage_error(&format!("cannot read {path:?}: {e}")));
    let log = cc_replay::decode_stream(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "replay: {} lines, {} events, {} shard{} ({})",
        log.lines,
        log.events(),
        log.shards.len(),
        if log.shards.len() == 1 { "" } else { "s" },
        if log.tagged {
            "sharded stream"
        } else {
            "serial stream"
        },
    );

    // Rebuild the capture's workload and cluster once; the gap pricing of
    // every shard shares them. Arrivals come from the recorded events, so
    // the trace itself is only needed to resolve the workload catalog.
    let gap_ctx = gap.then(|| {
        let trace = SyntheticTrace::builder()
            .functions(functions)
            .duration(SimDuration::from_mins(minutes))
            .seed(seed)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let mut config = ClusterConfig::small(x86, arm);
        if let Some(fraction) = warm_fraction {
            config = config.with_warm_memory_fraction(fraction);
        }
        if let Some(dollars) = budget {
            config = config.with_budget(Cost::from_dollars(dollars));
        }
        (workload, config)
    });

    let mut failed = false;
    for (i, shard) in log.shards.iter().enumerate() {
        if log.tagged {
            println!("=== shard {} ===", shard.shard);
        }
        let telemetry = cc_replay::reconstruct(shard);
        if table {
            println!("{}", Telemetry::interval_header());
            for row in telemetry.interval_rows() {
                println!("{row}");
            }
        }
        println!("{}", telemetry.report());
        println!("telemetry digest: {:#018x}", telemetry.digest());
        // The exporters append one snapshot line per shard, in shard
        // order; when the counts line up, cross-check the reconstruction
        // against the recorded totals. A sampled or lossy capture can
        // never reproduce the live totals, so the check is informational
        // only there.
        let lossless = !assume_sampled && shard.end.is_none_or(|e| e.dropped == 0);
        if let Some((workload, config)) = &gap_ctx {
            if !lossless {
                println!("gap: cannot price a sampled or lossy stream (records are incomplete)");
                failed = true;
            } else {
                let (records, spend) = cc_replay::reconstruct_records(shard);
                match HindsightInput::from_records(&records, workload, config) {
                    Ok(input) => {
                        let reference = GapReport::for_input(&input);
                        let measured =
                            measured_cost_of_records(&records, spend, input.lambda_nanos);
                        let row = reference.policy(&format!("shard{}", shard.shard), measured);
                        let verdict = if row.holds() { "ok" } else { "VIOLATED" };
                        println!(
                            "gap: measured {} lower {} gap {:+.2}% ({} invocations priced) \
                             {verdict}",
                            row.measured,
                            row.lower_bound,
                            row.gap_pct,
                            records.len(),
                        );
                        failed |= !row.holds();
                    }
                    Err(e) => {
                        println!(
                            "gap: {e} (do the --functions/--minutes/--seed flags match the \
                             capture?)"
                        );
                        failed = true;
                    }
                }
            }
        }
        if !lossless {
            println!("snapshot: cross-check skipped (sampled or lossy stream)");
        } else if log.snapshots.len() == log.shards.len() {
            let (line_no, recorded) = &log.snapshots[i];
            let rebuilt = telemetry.snapshot_line();
            if recorded == &rebuilt {
                println!("snapshot: matches the recorded line {line_no}");
            } else {
                println!(
                    "snapshot MISMATCH against line {line_no}:\n  recorded: {recorded}\n  replayed: {rebuilt}"
                );
                failed = true;
            }
        }
        println!();
    }
    if audit {
        let report = cc_replay::audit_log(&log, assume_sampled);
        print!("{}", report.summary());
        if !report.is_clean() {
            failed = true;
        }
    }
    std::process::exit(i32::from(failed));
}

fn make_policy(name: &str, trace: &Trace) -> Box<dyn Scheduler> {
    match name {
        "fixed_keepalive" => Box::new(FixedKeepAlive::ten_minutes()),
        "sitw" => Box::new(SitW::new()),
        "faascache" => Box::new(FaasCache::new()),
        "icebreaker" => Box::new(IceBreaker::new()),
        "oracle" => Box::new(Oracle::new(trace)),
        "codecrunch" => Box::new(CodeCrunch::new()),
        _ => unreachable!("validated above"),
    }
}

/// One policy replayed inside a shard: telemetry folds locally in the
/// worker, events tee into the shard's sink (the channel toward the mux, or
/// nothing), and both travel back to the main thread for printing in shard
/// order.
fn replay_shard<S: EventSink>(
    name: &str,
    trace: &Trace,
    workload: &Workload,
    config: &ClusterConfig,
    sink: &mut S,
) -> (Telemetry, SimReport) {
    let mut policy = make_policy(name, trace);
    let mut telemetry = Telemetry::new(config.interval);
    let mut tee = Tee(&mut telemetry, sink);
    let report =
        Simulation::new(config.clone(), trace, workload).run_with_sink(policy.as_mut(), &mut tee);
    (telemetry, report)
}

#[allow(clippy::too_many_arguments)]
fn run_sharded_mode(
    names: &[&str],
    trace: &Trace,
    workload: &Workload,
    config: &ClusterConfig,
    workers: usize,
    jsonl_path: Option<&str>,
    sample_every: u64,
    lossy: bool,
) {
    let (results, mux) = if let Some(path) = jsonl_path {
        let shard_config = ShardedRunConfig {
            workers,
            channel_capacity: 8192,
            lossy,
            sample_every,
        };
        let jobs: Vec<_> = names
            .iter()
            .map(|&name| {
                move |sink: &mut SamplingSink<ChannelSink>| {
                    replay_shard(name, trace, workload, config, sink)
                }
            })
            .collect();
        let (results, mut out, mux) = run_sharded_jsonl(jobs, &shard_config, open(path))
            .unwrap_or_else(|e| {
                eprintln!("error: writing jsonl: {e}");
                std::process::exit(1);
            });
        // Append each policy's final snapshot line after the event blocks,
        // in shard order, mirroring the serial per-policy files.
        {
            use std::io::Write;
            let mut append = |line: &str| {
                writeln!(out, "{line}").unwrap_or_else(|e| {
                    eprintln!("error: writing jsonl: {e}");
                    std::process::exit(1);
                });
            };
            for result in &results {
                if let Ok((telemetry, _)) = &result.outcome {
                    append(&telemetry.snapshot_line());
                }
            }
        }
        finish(Ok(out), "jsonl");
        (results, Some(mux))
    } else {
        let jobs: Vec<_> = names
            .iter()
            .map(|&name| {
                move |sink: &mut NullSink| replay_shard(name, trace, workload, config, sink)
            })
            .collect();
        (run_sharded(jobs, workers, &NullSinkFactory), None)
    };

    for (result, &name) in results.iter().zip(names) {
        println!("=== {name} (shard {}) ===", result.shard);
        match &result.outcome {
            Ok((telemetry, report)) => {
                println!("{}", Telemetry::interval_header());
                for row in telemetry.interval_rows() {
                    println!("{row}");
                }
                println!("{}", telemetry.report());
                print_report_summary(report);
            }
            Err(panic) => println!("shard panicked: {panic}\n"),
        }
        if result.sink.sent + result.sink.channel_dropped + result.sink.sampled_out > 0 {
            eprintln!(
                "shard {}: {} events sent, {} dropped by channel, {} sampled out",
                result.shard,
                result.sink.sent,
                result.sink.channel_dropped,
                result.sink.sampled_out
            );
        }
    }
    if let Some(mux) = mux {
        eprintln!(
            "jsonl: {} events merged, {} dropped",
            mux.events_written, mux.dropped_total
        );
    }
}

/// The `--stress` resource line: wall clock, throughput, peak RSS (from
/// `/proc/self/status`), and total allocations. The allocation figures are
/// only measured when the counting global allocator is compiled in
/// (`--features alloc-profile`); otherwise they print as "n/a".
fn print_stress_line(report: &SimReport, elapsed: std::time::Duration) {
    let secs = elapsed.as_secs_f64();
    let throughput = if secs > 0.0 {
        report.stats.invocations() as f64 / secs
    } else {
        0.0
    };
    let rss = match cc_prof::peak_rss_bytes() {
        Some(bytes) => cc_prof::fmt_bytes(bytes),
        None => "n/a".to_string(),
    };
    let allocs = match cc_prof::alloc_totals() {
        Some((count, bytes)) => {
            let per_inv = if report.stats.invocations() > 0 {
                format!(
                    ", {:.2} allocs/invocation",
                    count as f64 / report.stats.invocations() as f64
                )
            } else {
                String::new()
            };
            format!(
                "{count} allocations / {}{per_inv}",
                cc_prof::fmt_bytes(bytes)
            )
        }
        None => "allocations n/a (build with --features alloc-profile)".to_string(),
    };
    println!("stress: {secs:.3}s wall ({throughput:.0} inv/s), peak RSS {rss}, {allocs}");
    println!();
}

fn print_report_summary(report: &SimReport) {
    println!(
        "simulator: mean service {:.4}s  warm fraction {:.3}  spend ${:.6}  \
         evictions {}  decision overhead {:.2}us/invocation",
        report.mean_service_time_secs(),
        report.warm_fraction(),
        report.keep_alive_spend.as_dollars(),
        report.evictions,
        if report.records.is_empty() {
            0.0
        } else {
            report.decision_time.as_secs_f64() * 1e6 / report.records.len() as f64
        },
    );
    println!();
}

/// `base` with `-<policy>` spliced in before the extension, when several
/// policies share one `--jsonl`/`--chrome` destination.
fn policy_path(base: &str, policy: &str, multi: bool) -> String {
    if !multi {
        return base.to_string();
    }
    let dir_end = base.rfind('/').map_or(0, |s| s + 1);
    match base.rfind('.') {
        Some(dot) if dot > dir_end => format!("{}-{policy}{}", &base[..dot], &base[dot..]),
        _ => format!("{base}-{policy}"),
    }
}

fn open(path: &str) -> BufWriter<File> {
    BufWriter::new(
        File::create(path).unwrap_or_else(|e| usage_error(&format!("cannot create {path:?}: {e}"))),
    )
}

fn finish(result: std::io::Result<BufWriter<File>>, what: &str) {
    use std::io::Write;
    match result {
        Ok(mut writer) => {
            if let Err(e) = writer.flush() {
                eprintln!("error: flushing {what}: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: writing {what}: {e}");
            std::process::exit(1);
        }
    }
}
