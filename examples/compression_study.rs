//! Function-image compression study: the real codecs on synthetic
//! filesystem images, the latency model, and the catalog's favorability
//! split (the paper's §2 motivation and Fig. 1(c)).
//!
//! ```sh
//! cargo run --release --example compression_study
//! ```

use std::time::Instant;

use codecrunch_suite::compress::{CodecKind, CrunchDense};
use codecrunch_suite::prelude::*;
use codecrunch_suite::workload::FunctionProfile;

fn main() {
    let model = CompressionModel::paper_default();

    // Part 1: run the real from-scratch codecs over synthetic images.
    println!("== real codecs over 1 MiB synthetic images ==\n");
    println!(
        "{:<8} {:<14} {:>9} {:>14} {:>14}",
        "class", "codec", "ratio", "compress MB/s", "decode MB/s"
    );
    let size = 1 << 20;
    for class in EntropyClass::ALL {
        let image = FsImage::generate(99, size, class);
        for (name, codec) in [
            ("crunch-fast", &CrunchFast as &dyn Codec),
            ("crunch-dense", &CrunchDense as &dyn Codec),
        ] {
            let started = Instant::now();
            let frame = codec.compress(image.bytes());
            let c_secs = started.elapsed().as_secs_f64();
            let started = Instant::now();
            let restored = codec.decompress(&frame).expect("roundtrip");
            let d_secs = started.elapsed().as_secs_f64();
            assert_eq!(restored, image.bytes());
            println!(
                "{:<8} {:<14} {:>8.2}x {:>14.0} {:>14.0}",
                class,
                name,
                size as f64 / frame.len() as f64,
                size as f64 / c_secs / 1e6,
                size as f64 / d_secs / 1e6
            );
        }
    }

    // Part 2: the latency model at the paper's image scale.
    println!("\n== modelled latencies for a 700 MB committed image ==\n");
    for kind in CodecKind::ALL {
        for class in EntropyClass::ALL {
            let p = model.profile(700 << 20, class, kind);
            println!(
                "{kind:?}/{class}: ratio {:.2}x, compress {:.2}s, decompress {:.2}s",
                p.ratio(),
                p.compress_time.as_secs_f64(),
                p.decompress_time.as_secs_f64()
            );
        }
    }

    // Part 3: the favorable-case split over the benchmark catalog.
    let catalog = Catalog::paper_catalog();
    let stats = catalog.stats();
    println!("\n== catalog favorability (paper §2) ==\n");
    println!(
        "ARM-faster functions:                {:>5.1}%  (paper ≈38%)",
        stats.arm_faster_fraction * 100.0
    );
    println!(
        "compression-favorable on x86:        {:>5.1}%  (paper ≈42%)",
        stats.favorable_x86_fraction * 100.0
    );
    println!(
        "compression-favorable on ARM:        {:>5.1}%  (paper ≈46%)",
        stats.favorable_arm_fraction * 100.0
    );
    println!(
        "ARM-faster ∩ ARM-favorable:          {:>5.1}%  (paper ≈60%)",
        stats.arm_faster_favorable_fraction * 100.0
    );

    println!("\n== per-function favorable case (decompression vs cold start, x86) ==\n");
    let mut profiles: Vec<&FunctionProfile> = catalog.profiles().iter().collect();
    profiles.sort_by(|a, b| a.name.cmp(b.name));
    for p in profiles {
        let dec = p.decompress_time(&model, Arch::X86).as_secs_f64();
        let cold = p.cold_start(Arch::X86).as_secs_f64();
        println!(
            "{:<26} decompress {:>5.2}s vs cold {:>5.2}s -> {}",
            p.name,
            dec,
            cold,
            if dec < cold {
                "favorable"
            } else {
                "unfavorable"
            }
        );
    }
}
