//! The allocation-discipline gate: after one warmup replay, a steady-state
//! replay's `sre_round` phase must perform **zero** heap allocations.
//!
//! This is the CI teeth behind the scratch-reuse contract (DESIGN.md §14):
//! every buffer the SRE round loop touches — sampling weights, the flat
//! group index list, the descent working vectors, splice/touched lists,
//! and the round snapshots — lives in scratch storage owned by the
//! scheduler and is recycled across interval ticks. The first replay grows
//! those buffers to their high-water capacities; the second replay then
//! runs the optimizer without a single trip to the allocator.
//!
//! Compiled only under `--features alloc-profile` (the counting global
//! allocator costs a few percent, so it is off by default):
//!
//! ```text
//! cargo test -p bench --release --features alloc-profile --test alloc_gate
//! ```

#![cfg(feature = "alloc-profile")]

use bench::BenchScenario;
use cc_prof::Phase;
use cc_sim::{NullSink, Simulation, WallProfiler};
use codecrunch::CodeCrunch;

/// Every allocation in this test binary is counted and attributed to the
/// active profiling phase (test binaries are separate crates, so this does
/// not conflict with simbench's allocator).
#[global_allocator]
static ALLOC: cc_prof::CountingAllocator = cc_prof::CountingAllocator::new();

#[test]
fn steady_state_sre_rounds_allocate_nothing() {
    // The profiler aggregates into process-global state; this is the only
    // test in the binary, so no cross-test locking is needed.
    cc_prof::reset();
    let scenario = BenchScenario::new();
    let sim = Simulation::new(scenario.config.clone(), &scenario.trace, &scenario.workload);

    // Warmup replay: the same policy instance keeps its scratch buffers,
    // so this run pays every capacity growth the optimizer will ever need
    // for this scenario. NullSink keeps optimizer introspection off — the
    // production stress configuration.
    let mut policy = CodeCrunch::new();
    let warm = sim.run_with_sink_profiled::<NullSink, WallProfiler>(&mut policy, &mut NullSink);

    // Measured replay: identical workload, warm scratch.
    cc_prof::reset();
    cc_prof::set_wall_enabled(true);
    let measured = sim.run_with_sink_profiled::<NullSink, WallProfiler>(&mut policy, &mut NullSink);
    cc_prof::set_wall_enabled(false);
    let profile = cc_prof::take_profile("alloc-gate", 1);

    let row = profile
        .row(Phase::SreRound)
        .expect("the codecrunch policy must have run SRE rounds");
    assert!(row.count > 0, "no sre_round spans were recorded");
    assert_eq!(
        row.alloc_count, 0,
        "steady-state sre_round performed {} heap allocations ({} bytes) across {} rounds",
        row.alloc_count, row.alloc_bytes, row.count
    );
    // Sanity: the measured replay really exercised the optimizer (the
    // second run of a warm policy still re-plans every interval).
    assert!(!warm.records.is_empty());
    assert!(!measured.records.is_empty());
    cc_prof::reset();
}
