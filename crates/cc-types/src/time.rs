//! Integer-microsecond simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulated trace.
///
/// `SimTime` is totally ordered and integral, which keeps the event queue
/// deterministic. Differences between instants are [`SimDuration`]s.
///
/// # Example
///
/// ```
/// use cc_types::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_secs(3);
/// assert_eq!(t1 - t0, SimDuration::from_secs(3));
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use cc_types::SimDuration;
///
/// let d = SimDuration::from_millis(1_500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_secs(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Returns the instant as microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the zero-based index of the optimization interval (of length
    /// `interval`) that contains this instant.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn interval_index(self, interval: SimDuration) -> u64 {
        assert!(interval.0 > 0, "interval must be non-zero");
        self.0 / interval.0
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond and saturating negative values to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Returns whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Subtracts `other`, saturating to zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a floating-point scale factor, rounding to
    /// the nearest microsecond (ties away from zero), with explicit
    /// saturation: non-finite and non-positive factors yield
    /// [`SimDuration::ZERO`], and products beyond `u64::MAX` microseconds
    /// clamp to `u64::MAX`.
    ///
    /// The product is computed in integer arithmetic on the factor's exact
    /// binary decomposition (`mantissa × 2^exponent`, u128 intermediate), so
    /// no precision is lost for large durations — the old
    /// `as_secs_f64() * factor` round-trip silently truncated durations
    /// beyond ~2⁵³ µs to the nearest representable `f64`.
    pub fn scale(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        // Exact decomposition of a positive finite f64: factor = mant × 2^exp
        // with mant < 2^53 (the sign bit is known to be clear).
        let bits = factor.to_bits();
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if exp_bits == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        // micros × mant ≤ (2^64−1) × (2^53−1) < 2^117: exact in u128.
        let prod = self.0 as u128 * mant as u128;
        if prod == 0 {
            return SimDuration::ZERO;
        }
        let scaled = if exp >= 0 {
            if exp >= 64 || prod > u128::from(u64::MAX) >> exp {
                u128::from(u64::MAX)
            } else {
                prod << exp
            }
        } else {
            let shift = -exp;
            if shift > 127 {
                0 // prod < 2^117, so even the rounding half cannot reach 1
            } else {
                // Round half away from zero: add half the divisor before
                // shifting. prod + 2^126 < 2^117 + 2^126 < 2^127: no overflow.
                (prod + (1u128 << (shift - 1))) >> shift
            }
        };
        SimDuration(u64::try_from(scaled).unwrap_or(u64::MAX))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime duration subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(
            SimDuration::from_mins(1),
            SimDuration::from_micros(60_000_000)
        );
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!((t + d).as_micros(), 14);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_does_not_underflow() {
        let a = SimTime::from_micros(3);
        let b = SimTime::from_micros(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(6));
    }

    #[test]
    fn interval_index_buckets() {
        let minute = SimDuration::from_mins(1);
        assert_eq!(SimTime::ZERO.interval_index(minute), 0);
        assert_eq!(SimTime::from_micros(59_999_999).interval_index(minute), 0);
        assert_eq!(SimTime::from_micros(60_000_000).interval_index(minute), 1);
    }

    #[test]
    #[should_panic(expected = "interval must be non-zero")]
    fn interval_index_rejects_zero() {
        let _ = SimTime::ZERO.interval_index(SimDuration::ZERO);
    }

    #[test]
    fn duration_scale_rounds() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.scale(0.25), SimDuration::from_millis(500));
        assert_eq!(d.scale(-1.0), SimDuration::ZERO);
        assert_eq!(d.scale(f64::NAN), SimDuration::ZERO);
        assert_eq!(d.scale(0.0), SimDuration::ZERO);
        // Ties round away from zero.
        assert_eq!(
            SimDuration::from_micros(3).scale(0.5),
            SimDuration::from_micros(2)
        );
    }

    /// Regression for the f64 round-trip: durations beyond 2⁵³ µs used to
    /// be truncated to the nearest f64-representable value, so scaling by
    /// exactly 1.0 (or any dyadic factor) lost the low bits.
    #[test]
    fn duration_scale_is_exact_beyond_f64_precision() {
        let boundary = (1u64 << 53) + 1;
        assert_eq!(
            SimDuration::from_micros(boundary).scale(1.0),
            SimDuration::from_micros(boundary),
            "identity scale must preserve every microsecond"
        );
        let big = (1u64 << 60) + 3;
        assert_eq!(
            SimDuration::from_micros(big).scale(0.5),
            // 2^59 + 1.5 rounds away from zero.
            SimDuration::from_micros((1u64 << 59) + 2)
        );
        assert_eq!(
            SimDuration::from_micros(big).scale(2.0),
            SimDuration::from_micros((1u64 << 61) + 6)
        );
    }

    #[test]
    fn duration_scale_saturates_explicitly() {
        let max = SimDuration::from_micros(u64::MAX);
        assert_eq!(max.scale(2.0), max, "overflow clamps to u64::MAX");
        assert_eq!(max.scale(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(max.scale(1.0), max);
        // A huge factor on a small duration also clamps.
        assert_eq!(SimDuration::from_micros(2).scale(f64::MAX), max);
        // A subnormal factor underflows cleanly to zero.
        assert_eq!(max.scale(f64::from_bits(1)), SimDuration::ZERO);
        // A tiny-but-normal factor times a huge duration stays exact:
        // 2^63 × 2^-53 = 1024.
        assert_eq!(
            SimDuration::from_micros(1 << 63).scale(2f64.powi(-53)),
            SimDuration::from_micros(1024)
        );
    }

    #[test]
    fn duration_sum_and_ordering() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
        assert!(SimDuration::from_secs(1) < SimDuration::from_secs(2));
        assert_eq!(
            SimDuration::from_secs(1).max(SimDuration::from_secs(2)),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimTime::from_micros(250_000).to_string(), "0.250s");
    }
}
