//! Behavioral tests of the CodeCrunch scheduler through the public
//! simulator interface.

use cc_compress::CompressionModel;
use cc_sim::{ClusterConfig, Simulation};
use cc_trace::{Trace, TraceFunction};
use cc_types::{Arch, Cost, FnChoice, FunctionId, Invocation, MemoryMb, SimDuration, SimTime};
use cc_workload::{Catalog, Workload};
use codecrunch::{ArchPolicy, CodeCrunch, CodeCrunchConfig};

/// A perfectly periodic single-function trace.
fn periodic_trace(period_mins: u64, repetitions: u64) -> Trace {
    let f = TraceFunction::new(
        FunctionId::new(0),
        SimDuration::from_secs(3),
        MemoryMb::new(256),
    );
    let invocations: Vec<Invocation> = (0..repetitions)
        .map(|i| {
            Invocation::new(
                FunctionId::new(0),
                SimTime::ZERO + SimDuration::from_mins(i * period_mins),
            )
        })
        .collect();
    Trace::new(vec![f], invocations).expect("valid trace")
}

fn workload(trace: &Trace) -> Workload {
    Workload::from_trace(
        trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    )
}

#[test]
fn plans_converge_to_cover_the_period() {
    // A 4-minute period: the optimized keep-alive window must end up
    // comfortably covering it (the exponential-tail model pushes past
    // P_est), so late invocations run warm.
    let trace = periodic_trace(4, 40);
    let w = workload(&trace);
    let mut policy = CodeCrunch::new();
    let report = Simulation::new(ClusterConfig::small(1, 1), &trace, &w).run(&mut policy);

    let plan = policy
        .planned(FunctionId::new(0))
        .expect("function was planned");
    assert!(
        plan.keep_alive >= SimDuration::from_mins(4),
        "window {} does not cover the 4-minute period",
        plan.keep_alive
    );
    // After warm-up, invocations are warm: allow the first few to be cold.
    let cold = report
        .records
        .iter()
        .filter(|r| r.kind == cc_types::StartKind::Cold)
        .count();
    assert!(
        cold <= 5,
        "{cold} cold starts on a trivially periodic function"
    );
}

#[test]
fn rare_functions_are_not_kept_alive() {
    // A 90-minute period exceeds the 60-minute platform bound: CodeCrunch
    // should learn to keep a short (or no) window rather than burn budget.
    let trace = periodic_trace(90, 6);
    let w = workload(&trace);
    let config = ClusterConfig::small(1, 1).with_budget(Cost::from_dollars(1e-5));
    let mut policy = CodeCrunch::new();
    let report = Simulation::new(config, &trace, &w).run(&mut policy);
    // All invocations are cold (nothing can bridge 90 minutes)…
    assert_eq!(report.warm_fraction(), 0.0);
    // …and the learned plan does not waste the full 60-minute window.
    if let Some(plan) = policy.planned(FunctionId::new(0)) {
        assert!(
            plan.keep_alive < cc_types::KEEP_ALIVE_MAX,
            "plan {} wastes budget on an unreachable window",
            plan.keep_alive
        );
    }
}

#[test]
fn fixed_keep_alive_override_pins_every_plan() {
    let trace = periodic_trace(3, 30);
    let w = workload(&trace);
    let fixed = SimDuration::from_mins(7);
    let mut policy = CodeCrunch::with_config(CodeCrunchConfig {
        fixed_keep_alive: Some(fixed),
        ..CodeCrunchConfig::default()
    });
    let _ = Simulation::new(ClusterConfig::small(1, 1), &trace, &w).run(&mut policy);
    let plan = policy.planned(FunctionId::new(0)).expect("planned");
    assert_eq!(plan.keep_alive, fixed);
}

#[test]
fn arch_restriction_pins_every_plan() {
    let trace = periodic_trace(3, 30);
    let w = workload(&trace);
    let mut policy = CodeCrunch::with_config(CodeCrunchConfig {
        arch_policy: ArchPolicy::ArmOnly,
        ..CodeCrunchConfig::default()
    });
    let report = Simulation::new(ClusterConfig::small(1, 1), &trace, &w).run(&mut policy);
    assert!(report.records.iter().all(|r| r.arch == Arch::Arm));
    assert_eq!(policy.planned(FunctionId::new(0)).unwrap().arch, Arch::Arm);
}

#[test]
fn compression_ban_pins_every_plan() {
    let trace = periodic_trace(3, 30);
    let w = workload(&trace);
    let mut policy = CodeCrunch::with_config(CodeCrunchConfig {
        allow_compression: false,
        ..CodeCrunchConfig::default()
    });
    let report = Simulation::new(
        ClusterConfig::small(1, 1).with_budget(Cost::from_dollars(1e-4)),
        &trace,
        &w,
    )
    .run(&mut policy);
    assert_eq!(report.compression_events, 0);
    let plan: FnChoice = policy.planned(FunctionId::new(0)).unwrap();
    assert!(!plan.compress);
}

#[test]
fn observed_execution_shift_updates_the_scheduler() {
    // The scheduler's EWMA should track an unannounced input change; we
    // verify through the records that later executions reflect the shift
    // and the run still completes warm.
    let trace = periodic_trace(2, 60);
    let w = workload(&trace);
    let change = cc_trace::Perturbation::InputChange {
        at: SimTime::ZERO + SimDuration::from_mins(60),
        factor: 2.0,
    };
    let mut policy = CodeCrunch::new();
    let report = Simulation::new(ClusterConfig::small(1, 1), &trace, &w)
        .with_perturbations(vec![change])
        .run(&mut policy);
    let early: Vec<f64> = report.records[..20]
        .iter()
        .map(|r| r.execution.as_secs_f64())
        .collect();
    let late: Vec<f64> = report.records[40..]
        .iter()
        .map(|r| r.execution.as_secs_f64())
        .collect();
    let early_mean = early.iter().sum::<f64>() / early.len() as f64;
    let late_mean = late.iter().sum::<f64>() / late.len() as f64;
    assert!(
        (late_mean / early_mean - 2.0).abs() < 0.05,
        "shift not visible: {early_mean} -> {late_mean}"
    );
    // The warm pipeline survives the shift.
    assert!(
        report.warm_fraction() > 0.8,
        "warm {}",
        report.warm_fraction()
    );
}
