//! A minimal complex-number type sufficient for FFT work.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use cc_fft::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from components.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a real number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^(iθ)`: the unit-circle point at angle `theta`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scales both components by a real factor.
    pub fn scale(self, factor: f64) -> Complex {
        Complex {
            re: self.re * factor,
            im: self.im * factor,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_axioms_spot_check() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * Complex::ONE, a));
        assert!(close(a + Complex::ZERO, a));
        assert!(close(a + (-a), Complex::ZERO));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert!(close(z * z.conj(), Complex::from_real(25.0)));
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(Complex::cis(0.0), Complex::ONE));
    }

    #[test]
    fn display_signs() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
    }
}
