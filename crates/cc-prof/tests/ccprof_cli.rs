//! End-to-end exit-code contract of the `ccprof` binary: `diff` exits 0
//! when the new profile is within tolerance, 1 on a synthetic injected
//! regression, and 2 on unusable input.

use std::path::PathBuf;
use std::process::Command;

use cc_prof::{to_json, Phase, PhaseRow, SelfProfile};

fn profile(label: &str, wall_ns: u64, evict_self_ns: u64) -> SelfProfile {
    SelfProfile {
        label: label.to_string(),
        wall_ns,
        phases: vec![
            PhaseRow {
                phase: Phase::EngineRun,
                count: 1,
                total_ns: wall_ns,
                self_ns: wall_ns - evict_self_ns,
                max_ns: wall_ns,
                alloc_count: 0,
                alloc_bytes: 0,
            },
            PhaseRow {
                phase: Phase::PoolEvict,
                count: 1000,
                total_ns: evict_self_ns,
                self_ns: evict_self_ns,
                max_ns: evict_self_ns / 100,
                alloc_count: 0,
                alloc_bytes: 0,
            },
        ],
        ..SelfProfile::default()
    }
}

fn write_profile(name: &str, profile: &SelfProfile) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ccprof-cli-{}-{name}.json", std::process::id()));
    std::fs::write(&path, to_json(profile)).expect("write temp profile");
    path
}

fn run_diff(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_ccprof"))
        .arg("diff")
        .args(args)
        .output()
        .expect("spawn ccprof");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.code().expect("exit code"), text)
}

#[test]
fn diff_passes_within_tolerance_and_fails_on_injected_regression() {
    let base = write_profile("base", &profile("stress", 1_000_000_000, 100_000_000));
    // Within tolerance: pool_evict grows 20% against a 50% threshold.
    let ok = write_profile("ok", &profile("stress", 1_020_000_000, 120_000_000));
    // The injected regression: pool_evict's self time quadruples.
    let bad = write_profile("bad", &profile("stress", 1_300_000_000, 400_000_000));

    let base_s = base.to_str().unwrap();
    let (code, text) = run_diff(&[base_s, ok.to_str().unwrap()]);
    assert_eq!(code, 0, "in-tolerance diff must exit 0:\n{text}");

    let (code, text) = run_diff(&[base_s, bad.to_str().unwrap()]);
    assert_eq!(code, 1, "injected regression must exit 1:\n{text}");
    assert!(
        text.contains("pool_evict"),
        "the failure must name the regressed phase:\n{text}"
    );

    // Relative mode flags the same shape change.
    let (code, text) = run_diff(&[base_s, bad.to_str().unwrap(), "--relative"]);
    assert_eq!(code, 1, "relative-mode regression must exit 1:\n{text}");

    for path in [base, ok, bad] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn diff_rejects_unusable_input_with_exit_two() {
    let (code, _) = run_diff(&["/nonexistent/base.json", "/nonexistent/new.json"]);
    assert_eq!(code, 2, "unreadable input is a usage error");

    let mut garbage = std::env::temp_dir();
    garbage.push(format!("ccprof-cli-{}-garbage.json", std::process::id()));
    std::fs::write(&garbage, "not json").expect("write temp file");
    let (code, _) = run_diff(&[garbage.to_str().unwrap(), garbage.to_str().unwrap()]);
    assert_eq!(code, 2, "malformed input is a usage error");
    let _ = std::fs::remove_file(garbage);
}
