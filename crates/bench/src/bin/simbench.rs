//! Emits `BENCH_sim.json`: simulator throughput (invocations/second) per
//! policy on the 10 000-function stress scenario.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run --release -p bench --bin simbench            # writes BENCH_sim.json
//! cargo run --release -p bench --bin simbench -- --runs 5 --out BENCH_sim.json
//! cargo run --release -p bench --bin simbench -- --scenario small --sink jsonl
//! cargo run --release -p bench --bin simbench -- --baseline BENCH_sim.json --tolerance 0.03
//! ```
//!
//! Each policy is replayed `--runs` times (default 3) after one warm-up
//! replay; the reported figure is the best run, which is the least noisy
//! estimator on a shared machine.
//!
//! `--sink` selects the event sink the replay runs under: `null` (the
//! default, PR 1's uninstrumented fast path), `jsonl`, or `chrome` — the
//! exporters serialize the full event stream into `std::io::sink()`, so
//! the measured delta is pure observability overhead with no disk noise.
//!
//! `--baseline` compares the measured throughput against a previously
//! recorded `BENCH_sim.json` (either this binary's output or the annotated
//! before/after variant) and exits non-zero if any measured policy falls
//! below `baseline * (1 - tolerance)`; `--tolerance` defaults to 0.03.

use std::time::Instant;

use bench::BenchScenario;
use cc_policies::{FaasCache, IceBreaker, Oracle, SitW};
use cc_sim::{ChromeTraceSink, FixedKeepAlive, JsonlSink, Scheduler, Simulation};
use codecrunch::CodeCrunch;

const USAGE: &str = "usage: simbench [--runs N] [--out PATH] [--scenario large|small] \
                     [--sink null|jsonl|chrome] [--policies a,b,..] \
                     [--baseline PATH] [--tolerance FRAC]";

#[derive(Clone, Copy, PartialEq, Eq)]
enum SinkMode {
    Null,
    Jsonl,
    Chrome,
}

impl SinkMode {
    fn label(self) -> &'static str {
        match self {
            SinkMode::Null => "null",
            SinkMode::Jsonl => "jsonl",
            SinkMode::Chrome => "chrome",
        }
    }
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut runs: u32 = 3;
    let mut out = String::from("BENCH_sim.json");
    let mut scenario_name = String::from("large");
    let mut sink = SinkMode::Null;
    let mut policy_filter: Option<Vec<String>> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance: f64 = 0.03;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                runs = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => usage_error("--runs takes a positive integer"),
                };
            }
            "--out" => {
                out = match args.next() {
                    Some(path) => path,
                    None => usage_error("--out takes a path"),
                };
            }
            "--scenario" => match args.next().as_deref() {
                Some("large") => scenario_name = "large".into(),
                Some("small") => scenario_name = "small".into(),
                _ => usage_error("--scenario takes large or small"),
            },
            "--sink" => {
                sink = match args.next().as_deref() {
                    Some("null") => SinkMode::Null,
                    Some("jsonl") => SinkMode::Jsonl,
                    Some("chrome") => SinkMode::Chrome,
                    _ => usage_error("--sink takes null, jsonl, or chrome"),
                };
            }
            "--policies" => {
                policy_filter = match args.next() {
                    Some(list) => Some(list.split(',').map(|s| s.trim().to_string()).collect()),
                    None => usage_error("--policies takes a comma-separated list"),
                };
            }
            "--baseline" => {
                baseline = match args.next() {
                    Some(path) => Some(path),
                    None => usage_error("--baseline takes a path"),
                };
            }
            "--tolerance" => {
                tolerance = match args.next().and_then(|v| v.parse().ok()) {
                    Some(f) if (0.0..1.0).contains(&f) => f,
                    _ => usage_error("--tolerance takes a fraction in [0, 1)"),
                };
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let scenario = if scenario_name == "small" {
        BenchScenario::new()
    } else {
        BenchScenario::large()
    };
    let invocations = scenario.trace.invocations().len() as u64;
    eprintln!(
        "scenario: {scenario_name} ({} functions, {invocations} invocations, {} nodes), sink: {}",
        scenario.trace.functions().len(),
        scenario.config.total_nodes(),
        sink.label(),
    );

    let oracle_trace = scenario.trace.clone();
    type PolicyFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let policies: Vec<(&str, PolicyFactory)> = vec![
        (
            "fixed_keepalive",
            Box::new(|| Box::new(FixedKeepAlive::ten_minutes()) as Box<dyn Scheduler>),
        ),
        (
            "sitw",
            Box::new(|| Box::new(SitW::new()) as Box<dyn Scheduler>),
        ),
        (
            "faascache",
            Box::new(|| Box::new(FaasCache::new()) as Box<dyn Scheduler>),
        ),
        (
            "icebreaker",
            Box::new(|| Box::new(IceBreaker::new()) as Box<dyn Scheduler>),
        ),
        (
            "oracle",
            Box::new(move || Box::new(Oracle::new(&oracle_trace)) as Box<dyn Scheduler>),
        ),
        (
            "codecrunch",
            Box::new(|| Box::new(CodeCrunch::new()) as Box<dyn Scheduler>),
        ),
    ];
    if let Some(filter) = &policy_filter {
        let known: Vec<&str> = policies.iter().map(|(n, _)| *n).collect();
        for name in filter {
            if !known.contains(&name.as_str()) {
                usage_error(&format!("unknown policy {name:?} (known: {known:?})"));
            }
        }
    }

    let mut entries = Vec::new();
    let mut measured: Vec<(String, f64)> = Vec::new();
    for (name, make) in &policies {
        if let Some(filter) = &policy_filter {
            if !filter.iter().any(|f| f == name) {
                continue;
            }
        }
        // Warm-up replay (page in the trace, fault in allocator arenas).
        run_once(&scenario, make().as_mut(), sink);
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let started = Instant::now();
            run_once(&scenario, make().as_mut(), sink);
            best = best.min(started.elapsed().as_secs_f64());
        }
        let throughput = invocations as f64 / best;
        eprintln!("{name:>16}: {best:7.3} s  ({throughput:11.0} inv/s)");
        entries.push(serde_json::json!({
            "policy": *name,
            "seconds_per_replay": best,
            "invocations_per_sec": throughput,
        }));
        measured.push((name.to_string(), throughput));
    }

    let doc = serde_json::json!({
        "benchmark": "simulate_10k",
        "scenario_name": scenario_name,
        "sink": sink.label(),
        "functions": scenario.trace.functions().len() as u64,
        "invocations": invocations,
        "nodes": scenario.config.total_nodes() as u64,
        "runs_per_policy": runs as u64,
        "results": entries,
    });
    let body = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out, body + "\n").expect("write output file");
    eprintln!("wrote {out}");

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read baseline {path:?}: {e}")));
        let reference = parse_baseline(&text);
        if reference.is_empty() {
            usage_error(&format!("no per-policy throughput entries in {path:?}"));
        }
        let mut failed = false;
        for (name, throughput) in &measured {
            let Some((_, base)) = reference.iter().find(|(n, _)| n == name) else {
                eprintln!("baseline: {name} not in {path}, skipping");
                continue;
            };
            let floor = base * (1.0 - tolerance);
            let verdict = if *throughput >= floor {
                "ok"
            } else {
                "REGRESSED"
            };
            eprintln!(
                "baseline: {name:>16} measured {throughput:11.0} inv/s vs floor {floor:11.0} \
                 (recorded {base:.0}, tolerance {tolerance}) {verdict}"
            );
            failed |= *throughput < floor;
        }
        if failed {
            eprintln!("baseline check failed: throughput regressed beyond tolerance");
            std::process::exit(1);
        }
    }
}

/// Pulls `(policy, invocations_per_sec)` pairs out of a recorded
/// `BENCH_sim.json` with a line scan — the vendored `serde_json` has no
/// parser, and the schema is shallow enough that one is not needed.
/// Accepts both this binary's output (`invocations_per_sec`) and the
/// annotated before/after variant (`after_invocations_per_sec`).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut policy: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"policy\":") {
            policy = Some(
                rest.trim()
                    .trim_end_matches(',')
                    .trim_matches('"')
                    .to_string(),
            );
        } else if let Some(rest) = line
            .strip_prefix("\"after_invocations_per_sec\":")
            .or_else(|| line.strip_prefix("\"invocations_per_sec\":"))
        {
            if let (Some(name), Ok(value)) = (
                policy.take(),
                rest.trim().trim_end_matches(',').parse::<f64>(),
            ) {
                pairs.push((name, value));
            }
        }
    }
    pairs
}

fn run_once(scenario: &BenchScenario, policy: &mut dyn Scheduler, sink: SinkMode) {
    let sim = Simulation::new(scenario.config.clone(), &scenario.trace, &scenario.workload);
    let report = match sink {
        SinkMode::Null => sim.run(policy),
        SinkMode::Jsonl => {
            let mut sink = JsonlSink::new(std::io::sink());
            let report = sim.run_with_sink(policy, &mut sink);
            assert!(sink.events_written() > 0);
            report
        }
        SinkMode::Chrome => {
            let mut sink = ChromeTraceSink::new(std::io::sink());
            sim.run_with_sink(policy, &mut sink)
        }
    };
    assert_eq!(
        report.records.len() as u64,
        scenario.trace.invocations().len() as u64
    );
}
