//! Fig. 8: CodeCrunch's two mechanical ideas (compression + x86/ARM
//! selection) enhance the existing techniques.
//!
//! Paper result: enhanced SitW/FaasCache/IceBreaker each gain >10%, and
//! enhanced SitW performs similarly to or slightly better than the more
//! complex IceBreaker/FaasCache.

use serde_json::json;

use cc_policies::{Enhanced, FaasCache, IceBreaker, SitW};
use cc_sim::Scheduler;

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// Fig. 8 experiment.
pub struct Fig8;

impl Experiment for Fig8 {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn title(&self) -> &'static str {
        "original vs compression+heterogeneity-enhanced SitW, FaasCache, IceBreaker (Fig. 8)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        // Pressure regime: a modest warm cap plus SitW-normalized budget,
        // so compression has something to buy.
        let unlimited = scale.cluster().with_warm_memory_fraction(0.25);
        let budget = sitw_budget_per_interval(&trace, &workload, &unlimited);
        let config = unlimited.with_budget(budget);

        type PolicyPair<'a> = (&'a str, Box<dyn Scheduler>, Box<dyn Scheduler>);
        let mut pairs: Vec<PolicyPair<'_>> = vec![
            (
                "sitw",
                Box::new(SitW::new()),
                Box::new(Enhanced::new(SitW::new())),
            ),
            (
                "faascache",
                Box::new(FaasCache::new()),
                Box::new(Enhanced::new(FaasCache::new())),
            ),
            (
                "icebreaker",
                Box::new(IceBreaker::new()),
                Box::new(Enhanced::new(IceBreaker::new())),
            ),
        ];

        let mut lines = vec![format!(
            "{:<12} {:>14} {:>14} {:>10}",
            "policy", "original (s)", "enhanced (s)", "gain"
        )];
        let mut rows = Vec::new();
        for (name, original, enhanced) in pairs.iter_mut() {
            let r_orig = run_policy(original.as_mut(), &config, &trace, &workload);
            let r_enh = run_policy(enhanced.as_mut(), &config, &trace, &workload);
            let gain = 1.0 - r_enh.mean_service_time_secs() / r_orig.mean_service_time_secs();
            lines.push(format!(
                "{:<12} {:>14.3} {:>14.3} {:>9.1}%",
                name,
                r_orig.mean_service_time_secs(),
                r_enh.mean_service_time_secs(),
                gain * 100.0
            ));
            rows.push(json!({
                "policy": name,
                "original_secs": r_orig.mean_service_time_secs(),
                "enhanced_secs": r_enh.mean_service_time_secs(),
                "enhanced_compressions": r_enh.compression_events,
                "gain": gain,
            }));
        }
        lines.push("(paper: each technique gains >10% from the enhancements)".to_owned());

        ExperimentOutput::new(self.id(), lines, json!({ "rows": rows }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enhancement_never_hurts_much() {
        let out = Fig8.run(&Scale::smoke());
        for row in out.data["rows"].as_array().unwrap() {
            let orig = row["original_secs"].as_f64().unwrap();
            let enh = row["enhanced_secs"].as_f64().unwrap();
            assert!(
                enh <= orig * 1.08,
                "{}: enhanced {enh} vs original {orig}",
                row["policy"]
            );
        }
    }
}
