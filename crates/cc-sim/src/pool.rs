//! The warm pool: a generational slab arena plus the ordered indexes the
//! engine's hot path queries.
//!
//! The pool replaces the original `HashMap<WarmId, WarmInstance>` /
//! `HashMap<FunctionId, Vec<WarmId>>` pair with:
//!
//! - a **slab arena**: instances live in a dense `Vec` of slots recycled
//!   through a free list. Handles are generational ([`WarmId`]), so a
//!   queued expiry event whose instance was reused or evicted — and whose
//!   slot may already hold a different instance — fails the generation
//!   check instead of aliasing. Lookup is an array index, not a hash.
//! - a **per-function candidate index**: a `BTreeSet` ordered by
//!   `(start-penalty class, expiry, seq)` — exactly the order the engine
//!   previously produced by sorting a freshly collected vector on every
//!   arrival. Reuse candidates now come out of an iterator in O(log n)
//!   amortized, allocation-free.
//! - a **per-node residency index** in admission (`seq`) order, so
//!   eviction only examines the target node's residents instead of
//!   scanning the whole cluster's pool.
//!
//! The candidate key of a compressed instance changes once, when
//! background compression finishes (`compressed_ready_at`): before that a
//! reuse finds the uncompressed copy (penalty zero), after it a reuse pays
//! decompression. Rather than rewriting keys eagerly on a timer, the pool
//! parks each pending re-key in a time-ordered `transitions` set and
//! migrates the due ones at query time ([`WarmPool::migrate_due`]) — each
//! instance migrates at most once, so the cost is amortized O(log n) per
//! admission.

use std::collections::BTreeSet;

#[cfg(debug_assertions)]
use cc_types::MemoryMb;
use cc_types::{FunctionId, NodeId, SimDuration, SimTime, WarmId};

use crate::node::WarmInstance;

/// Candidate-index key: start-penalty class first (free reuses before
/// decompressing ones), then expiry (spend the instance closest to
/// expiring, saving the freshest), then admission order as the unique
/// deterministic tie-break.
type CandidateKey = (SimDuration, SimTime, u64, WarmId);

const NO_SLOT: u32 = u32::MAX;

/// Hot per-slot fields, split struct-of-arrays style from the full
/// [`WarmInstance`]: everything the per-arrival paths (candidate-key
/// computation on removal, transition migration, expiry drain) need, in
/// one 24-byte record so those reads touch a dense array instead of
/// dragging whole instances through the cache.
#[derive(Debug, Clone, Copy)]
struct SlotHot {
    /// Keep-alive expiry of the occupying instance.
    expiry: SimTime,
    /// Admission number of the occupying instance.
    seq: u64,
    /// The penalty class the instance's candidate key currently carries:
    /// zero until the compression re-key transition migrates it, the
    /// decompression penalty after. Maintained by insert/migrate so
    /// removal reads the current key in O(1) instead of inferring it from
    /// the transition set.
    key_penalty: SimDuration,
}

impl SlotHot {
    const VACANT: SlotHot = SlotHot {
        expiry: SimTime::ZERO,
        seq: 0,
        key_penalty: SimDuration::ZERO,
    };
}

/// Cold per-slot payload: the full instance, or the free-list link.
#[derive(Debug)]
enum SlotCold {
    Occupied(WarmInstance),
    Vacant { next_free: u32 },
}

/// Per-function index entry.
#[derive(Debug, Default)]
struct FunctionEntry {
    /// Live instances in admission order (what policies observe through
    /// `ClusterView::warm_instances_of`).
    order: Vec<WarmId>,
    /// Live instances in reuse-preference order.
    candidates: BTreeSet<CandidateKey>,
}

/// The warm-instance arena and its indexes. See the module docs.
///
/// The arena is laid out struct-of-arrays: `generations`, `hot`, and
/// `cold` are parallel vectors indexed by slot. The generational
/// [`WarmId`] contract is unchanged — a handle is live iff its generation
/// matches `generations[slot]` — and candidate ordering is bit-identical
/// to the former array-of-structs layout (the ordered indexes are the
/// same; only the backing storage moved).
#[derive(Debug)]
pub(crate) struct WarmPool {
    /// Per slot: bumped every time the slot is freed; a handle is live iff
    /// its generation matches.
    generations: Vec<u32>,
    /// Per slot: the hot fields of the occupying instance (garbage while
    /// vacant).
    hot: Vec<SlotHot>,
    /// Per slot: the full instance, or the free-list link while vacant.
    cold: Vec<SlotCold>,
    free_head: u32,
    len: usize,
    compressed: usize,
    next_seq: u64,
    functions: Vec<FunctionEntry>,
    /// Per node: live residents as `(seq, id)`, i.e. admission order.
    residents: Vec<BTreeSet<(u64, WarmId)>>,
    /// Compressed instances whose candidate key still carries a zero
    /// penalty but must be re-keyed at `(compressed_ready_at, seq, id)`.
    transitions: BTreeSet<(SimTime, u64, WarmId)>,
    /// Expiry calendar: every live instance keyed by
    /// `(expiry, seq, id)`. The engine serves keep-alive expirations
    /// straight from this index instead of pushing one heap event per
    /// admission, so a window boundary drains all due expiries in one
    /// ordered pass and reused/evicted instances never leave stale
    /// tombstone events behind.
    expiries: BTreeSet<(SimTime, u64, WarmId)>,
}

impl WarmPool {
    /// Creates an empty pool for a cluster of `nodes` nodes serving
    /// `functions` distinct functions.
    pub fn new(functions: usize, nodes: usize) -> WarmPool {
        WarmPool {
            generations: Vec::new(),
            hot: Vec::new(),
            cold: Vec::new(),
            free_head: NO_SLOT,
            len: 0,
            compressed: 0,
            next_seq: 0,
            functions: (0..functions).map(|_| FunctionEntry::default()).collect(),
            residents: (0..nodes).map(|_| BTreeSet::new()).collect(),
            transitions: BTreeSet::new(),
            expiries: BTreeSet::new(),
        }
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of live instances stored compressed.
    pub fn compressed_count(&self) -> usize {
        self.compressed
    }

    /// Whether `function` has at least one live instance.
    pub fn is_warm(&self, function: FunctionId) -> bool {
        !self.functions[function.index()].order.is_empty()
    }

    /// The live instance behind `id`, or `None` if the handle is stale
    /// (the instance was reused, evicted, or expired; the slot may by now
    /// hold a different instance of a newer generation).
    pub fn get(&self, id: WarmId) -> Option<&WarmInstance> {
        if *self.generations.get(id.slot())? != id.generation() {
            return None;
        }
        match &self.cold[id.slot()] {
            SlotCold::Occupied(inst) => Some(inst),
            SlotCold::Vacant { .. } => None,
        }
    }

    /// Admits `inst` into the pool, assigning its `id` (next free slot,
    /// current generation) and `seq` (next admission number); the caller's
    /// values for those two fields are ignored. Returns the assigned id.
    pub fn insert(&mut self, mut inst: WarmInstance) -> WarmId {
        self.next_seq += 1;
        inst.seq = self.next_seq;

        let slot_index = if self.free_head != NO_SLOT {
            let index = self.free_head;
            let SlotCold::Vacant { next_free } = self.cold[index as usize] else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next_free;
            index
        } else {
            assert!(
                self.cold.len() < NO_SLOT as usize,
                "warm pool slot space exhausted"
            );
            self.generations.push(0);
            self.hot.push(SlotHot::VACANT);
            self.cold.push(SlotCold::Vacant { next_free: NO_SLOT });
            (self.cold.len() - 1) as u32
        };
        let id = WarmId::new(slot_index, self.generations[slot_index as usize]);
        inst.id = id;

        let entry = &mut self.functions[inst.function.index()];
        entry.order.push(id);
        // A compressed instance enters the zero-penalty class (reuse finds
        // the uncompressed copy until compression completes) and is parked
        // for re-keying — unless compression is instantaneous, in which
        // case it pays decompression from the start.
        let key_penalty = inst.admission_key_penalty();
        entry
            .candidates
            .insert((key_penalty, inst.expiry, inst.seq, id));
        if inst.compressed && inst.compressed_ready_at > inst.since {
            self.transitions
                .insert((inst.compressed_ready_at, inst.seq, id));
        }
        if inst.compressed {
            self.compressed += 1;
        }
        self.residents[inst.node.index()].insert((inst.seq, id));
        self.expiries.insert((inst.expiry, inst.seq, id));

        self.hot[slot_index as usize] = SlotHot {
            expiry: inst.expiry,
            seq: inst.seq,
            key_penalty,
        };
        self.cold[slot_index as usize] = SlotCold::Occupied(inst);
        self.len += 1;
        id
    }

    /// Removes the live instance behind `id` from the arena and every
    /// index, returning it.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale — engine invariants guarantee removal
    /// targets are alive, so a stale handle here is a bug.
    pub fn remove(&mut self, id: WarmId) -> WarmInstance {
        assert_eq!(
            self.generations[id.slot()],
            id.generation(),
            "instance must exist to be removed"
        );
        // All three ordered-index removals key off the hot array — the
        // candidate key's current penalty class (maintained by insert and
        // `migrate_due`, so no probing the transition set to infer it),
        // the expiry, and the admission seq — one dense 24-byte read
        // instead of dragging the whole instance through the cache first.
        let SlotHot {
            expiry,
            seq,
            key_penalty,
        } = self.hot[id.slot()];
        let state = std::mem::replace(
            &mut self.cold[id.slot()],
            SlotCold::Vacant {
                next_free: self.free_head,
            },
        );
        let SlotCold::Occupied(inst) = state else {
            panic!("instance must exist to be removed");
        };
        debug_assert_eq!(
            (expiry, seq),
            (inst.expiry, inst.seq),
            "hot array out of sync"
        );
        self.generations[id.slot()] += 1;
        self.hot[id.slot()] = SlotHot::VACANT;
        self.free_head = id.slot() as u32;
        self.len -= 1;

        if inst.compressed {
            // Drop the parked re-key transition if it never fired; a
            // no-op for instances that already migrated (or entered the
            // penalty class at admission).
            let parked = self
                .transitions
                .remove(&(inst.compressed_ready_at, seq, id));
            debug_assert!(
                !parked || key_penalty.is_zero(),
                "hot penalty class out of sync with the transition set"
            );
        }
        let entry = &mut self.functions[inst.function.index()];
        let removed = entry.candidates.remove(&(key_penalty, expiry, seq, id));
        debug_assert!(removed, "candidate index out of sync");
        let position = entry
            .order
            .iter()
            .position(|&i| i == id)
            .expect("order index out of sync");
        entry.order.remove(position);
        let removed = self.residents[inst.node.index()].remove(&(seq, id));
        debug_assert!(removed, "residency index out of sync");
        let removed = self.expiries.remove(&(expiry, seq, id));
        debug_assert!(removed, "expiry calendar out of sync");
        if inst.compressed {
            self.compressed -= 1;
        }
        inst
    }

    /// The earliest keep-alive expiration among live instances, as
    /// `(expiry, seq, id)`. `seq` is the admission number, so equal-time
    /// expirations come out in admission order — the same order the
    /// per-admission heap events used to impose.
    pub fn next_expiry(&self) -> Option<(SimTime, u64, WarmId)> {
        self.expiries.iter().next().copied()
    }

    /// Re-keys every compressed instance whose `compressed_ready_at` has
    /// passed by `now` from the zero-penalty class to its decompression
    /// penalty. Must be called before reading [`WarmPool::candidates_of`];
    /// each instance migrates at most once per lifetime.
    pub fn migrate_due(&mut self, now: SimTime) {
        while let Some(&(ready_at, seq, id)) = self.transitions.iter().next() {
            if ready_at > now {
                break;
            }
            self.transitions.remove(&(ready_at, seq, id));
            let inst = self.get(id).expect("parked transition for a dead instance");
            let (function, expiry, penalty) = (inst.function, inst.expiry, inst.decompress_penalty);
            self.hot[id.slot()].key_penalty = penalty;
            let entry = &mut self.functions[function.index()];
            let removed = entry
                .candidates
                .remove(&(SimDuration::ZERO, expiry, seq, id));
            debug_assert!(removed, "candidate index out of sync during migration");
            entry.candidates.insert((penalty, expiry, seq, id));
        }
    }

    /// Live instances of `function` in reuse-preference order: cheapest
    /// start-penalty class first, then closest expiry, then admission
    /// order. Only valid if [`WarmPool::migrate_due`] has been called with
    /// the current time.
    pub fn candidates_of(&self, function: FunctionId) -> impl Iterator<Item = WarmId> + '_ {
        self.functions[function.index()]
            .candidates
            .iter()
            .map(|&(_, _, _, id)| id)
    }

    /// Live instances of `function` in admission order.
    pub fn order_of(&self, function: FunctionId) -> &[WarmId] {
        &self.functions[function.index()].order
    }

    /// Live instances resident on `node`, in admission order.
    pub fn residents_of(&self, node: NodeId) -> impl Iterator<Item = WarmId> + '_ {
        self.residents[node.index()].iter().map(|&(_, id)| id)
    }

    /// Sum of the footprints of `node`'s residents. O(residents); used
    /// only in debug assertions to validate the node-state counter the
    /// engine uses instead.
    #[cfg(debug_assertions)]
    pub fn resident_memory(&self, node: NodeId) -> MemoryMb {
        self.residents_of(node)
            .map(|id| self.get(id).expect("resident index out of sync").memory)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::{Arch, Cost};
    use proptest::prelude::*;

    fn instance(function: u32, node: u32, expiry_s: u64) -> WarmInstance {
        WarmInstance {
            id: WarmId::INVALID,
            seq: 0,
            function: FunctionId::new(function),
            node: NodeId::new(node),
            arch: Arch::X86,
            compressed: false,
            memory: MemoryMb::new(100),
            since: SimTime::ZERO,
            expiry: SimTime::ZERO + SimDuration::from_secs(expiry_s),
            reserved: Cost::ZERO,
            compressed_ready_at: SimTime::ZERO,
            decompress_penalty: SimDuration::ZERO,
        }
    }

    fn compressed_instance(
        function: u32,
        node: u32,
        since_s: u64,
        ready_s: u64,
        expiry_s: u64,
        penalty_ms: u64,
    ) -> WarmInstance {
        WarmInstance {
            compressed: true,
            since: SimTime::ZERO + SimDuration::from_secs(since_s),
            compressed_ready_at: SimTime::ZERO + SimDuration::from_secs(ready_s),
            decompress_penalty: SimDuration::from_millis(penalty_ms),
            ..instance(function, node, expiry_s)
        }
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut pool = WarmPool::new(4, 2);
        let id = pool.insert(instance(1, 0, 60));
        assert_eq!(pool.len(), 1);
        assert!(pool.is_warm(FunctionId::new(1)));
        let inst = pool.get(id).unwrap();
        assert_eq!(inst.id, id);
        assert_eq!(inst.seq, 1);
        let removed = pool.remove(id);
        assert_eq!(removed.id, id);
        assert_eq!(pool.len(), 0);
        assert!(!pool.is_warm(FunctionId::new(1)));
        assert!(pool.get(id).is_none());
    }

    #[test]
    fn stale_handle_rejected_after_slot_reuse() {
        let mut pool = WarmPool::new(4, 2);
        let first = pool.insert(instance(0, 0, 60));
        pool.remove(first);
        let second = pool.insert(instance(1, 1, 90));
        // Slot recycled, generation advanced.
        assert_eq!(second.slot(), first.slot());
        assert_ne!(second.generation(), first.generation());
        assert!(pool.get(first).is_none(), "stale handle must not alias");
        assert_eq!(pool.get(second).unwrap().function, FunctionId::new(1));
    }

    #[test]
    fn seq_keeps_increasing_across_slot_reuse() {
        let mut pool = WarmPool::new(2, 1);
        let a = pool.insert(instance(0, 0, 10));
        pool.remove(a);
        let b = pool.insert(instance(0, 0, 20));
        assert_eq!(pool.get(b).unwrap().seq, 2);
    }

    #[test]
    fn candidates_order_by_penalty_then_expiry_then_seq() {
        let mut pool = WarmPool::new(2, 4);
        // Compressed & ready (pays penalty), uncompressed far expiry,
        // uncompressed near expiry, compressed not yet ready (free).
        let ready = pool.insert(compressed_instance(0, 0, 0, 5, 200, 30));
        let far = pool.insert(instance(0, 1, 300));
        let near = pool.insert(instance(0, 2, 100));
        let pending = pool.insert(compressed_instance(0, 3, 0, 1000, 250, 30));
        pool.migrate_due(at(10));
        let order: Vec<WarmId> = pool.candidates_of(FunctionId::new(0)).collect();
        // Zero-penalty class first by expiry (near, pending, far), then the
        // decompressing one.
        assert_eq!(order, vec![near, pending, far, ready]);
    }

    #[test]
    fn migration_moves_instance_to_penalty_class_exactly_at_ready_time() {
        let mut pool = WarmPool::new(1, 2);
        let compressed = pool.insert(compressed_instance(0, 0, 0, 50, 100, 30));
        let plain = pool.insert(instance(0, 1, 300));
        pool.migrate_due(at(49));
        let order: Vec<WarmId> = pool.candidates_of(FunctionId::new(0)).collect();
        assert_eq!(
            order,
            vec![compressed, plain],
            "free class wins before ready"
        );
        pool.migrate_due(at(50));
        let order: Vec<WarmId> = pool.candidates_of(FunctionId::new(0)).collect();
        assert_eq!(
            order,
            vec![plain, compressed],
            "penalty class loses after ready"
        );
    }

    #[test]
    fn removal_before_and_after_migration_keeps_indexes_consistent() {
        let mut pool = WarmPool::new(1, 1);
        let a = pool.insert(compressed_instance(0, 0, 0, 50, 100, 30));
        pool.remove(a); // still parked: transition entry must go too
        assert!(pool.transitions.is_empty());
        let b = pool.insert(compressed_instance(0, 0, 0, 60, 100, 30));
        pool.migrate_due(at(70)); // migrated: key now carries the penalty
        let removed = pool.remove(b);
        assert!(removed.compressed);
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.compressed_count(), 0);
        assert!(pool.candidates_of(FunctionId::new(0)).next().is_none());
    }

    #[test]
    fn expiry_calendar_orders_by_time_then_admission() {
        let mut pool = WarmPool::new(2, 2);
        let late = pool.insert(instance(0, 0, 90));
        let early_a = pool.insert(instance(1, 1, 30));
        let early_b = pool.insert(instance(0, 0, 30));
        // Earliest expiry first; equal-time entries in admission order.
        assert_eq!(pool.next_expiry(), Some((at(30), 2, early_a)));
        pool.remove(early_a);
        assert_eq!(pool.next_expiry(), Some((at(30), 3, early_b)));
        pool.remove(early_b);
        assert_eq!(pool.next_expiry(), Some((at(90), 1, late)));
        pool.remove(late);
        assert_eq!(pool.next_expiry(), None, "empty pool has no expiries");
    }

    #[test]
    fn residents_and_order_track_membership() {
        let mut pool = WarmPool::new(3, 2);
        let a = pool.insert(instance(0, 0, 60));
        let b = pool.insert(instance(1, 0, 30));
        let c = pool.insert(instance(0, 1, 90));
        assert_eq!(
            pool.residents_of(NodeId::new(0)).collect::<Vec<_>>(),
            vec![a, b]
        );
        assert_eq!(pool.order_of(FunctionId::new(0)), &[a, c]);
        pool.remove(a);
        assert_eq!(
            pool.residents_of(NodeId::new(0)).collect::<Vec<_>>(),
            vec![b]
        );
        assert_eq!(pool.order_of(FunctionId::new(0)), &[c]);
        assert_eq!(pool.resident_memory(NodeId::new(1)), MemoryMb::new(100));
    }

    proptest! {
        // The property the whole candidate index stands on: at any query
        // time, iterating `candidates_of` yields exactly the order the
        // pre-refactor engine computed by collecting every live instance
        // of the function and sorting by `(penalty at now, expiry,
        // admission id)`.
        #[test]
        fn candidate_index_matches_sort_based_selection(
            // (compressed, ready_offset_s, expiry_s, penalty_ms, node)
            specs in prop::collection::vec(
                (any::<bool>(), 0u64..120, 1u64..240, 1u64..80, 0u32..4),
                1..24,
            ),
            removals in prop::collection::vec(any::<u16>(), 0..8),
            // Monotonically applied query times: migration is incremental
            // (each instance re-keys at most once), so the index must match
            // the sort-based reference at EVERY step, not just the last.
            query_steps in prop::collection::vec(0u64..130, 1..4),
        ) {
            let mut pool = WarmPool::new(1, 4);
            let mut ids = Vec::new();
            for &(compressed, ready_s, expiry_s, penalty_ms, node) in &specs {
                let inst = if compressed {
                    compressed_instance(0, node, 0, ready_s, expiry_s, penalty_ms)
                } else {
                    instance(0, node, expiry_s)
                };
                ids.push(pool.insert(inst));
            }
            for &r in &removals {
                if ids.is_empty() { break; }
                let victim = ids.swap_remove(r as usize % ids.len());
                pool.remove(victim);
            }

            // Removals interleaved between migration steps exercise the
            // penalty-class read on both sides of each re-key.
            let mut now_s = 0u64;
            for (step, &advance) in query_steps.iter().enumerate() {
                now_s += advance;
                let now = at(now_s);
                pool.migrate_due(now);
                if step > 0 && !ids.is_empty() {
                    let victim = ids.swap_remove(step % ids.len());
                    pool.remove(victim);
                }
                let indexed: Vec<WarmId> =
                    pool.candidates_of(FunctionId::new(0)).collect();

                // Pre-refactor selection: collect live instances, compute
                // the penalty a reuse at `now` would pay, sort.
                let mut brute: Vec<(SimDuration, SimTime, u64, WarmId)> = ids
                    .iter()
                    .map(|&id| {
                        let inst = pool.get(id).expect("live");
                        let penalty = if inst.pays_decompression(now) {
                            inst.decompress_penalty
                        } else {
                            SimDuration::ZERO
                        };
                        (penalty, inst.expiry, inst.seq, id)
                    })
                    .collect();
                brute.sort();
                let brute: Vec<WarmId> = brute.into_iter().map(|(_, _, _, id)| id).collect();

                prop_assert_eq!(indexed, brute, "diverged at step {} (now={}s)", step, now_s);
            }
        }

        // Slab bookkeeping stays consistent under arbitrary interleavings
        // of admissions and removals.
        #[test]
        fn slab_len_and_counters_survive_churn(
            ops in prop::collection::vec((any::<bool>(), any::<u16>()), 1..60),
        ) {
            let mut pool = WarmPool::new(4, 2);
            let mut live: Vec<WarmId> = Vec::new();
            let mut compressed_live = 0usize;
            for (i, &(remove, r)) in ops.iter().enumerate() {
                if remove && !live.is_empty() {
                    let id = live.swap_remove(r as usize % live.len());
                    if pool.remove(id).compressed {
                        compressed_live -= 1;
                    }
                } else {
                    let compress = i % 3 == 0;
                    let inst = if compress {
                        compressed_instance((i % 4) as u32, (i % 2) as u32, 0, 30, 60, 20)
                    } else {
                        instance((i % 4) as u32, (i % 2) as u32, 60)
                    };
                    live.push(pool.insert(inst));
                    if compress {
                        compressed_live += 1;
                    }
                }
                prop_assert_eq!(pool.len(), live.len());
                prop_assert_eq!(pool.compressed_count(), compressed_live);
            }
            for &id in &live {
                prop_assert!(pool.get(id).is_some());
            }
        }
    }
}
