//! Property tests for trace-to-profile matching and workload resolution.

use proptest::prelude::*;

use cc_compress::{CodecKind, CompressionModel};
use cc_trace::{Trace, TraceFunction};
use cc_types::{Arch, FunctionId, MemoryMb, SimDuration};
use cc_workload::{Catalog, Workload};

proptest! {
    #[test]
    fn nearest_is_total_and_stable(
        exec_ms in 1u64..600_000,
        mem_mb in 1u32..8192,
    ) {
        let catalog = Catalog::paper_catalog();
        let exec = SimDuration::from_millis(exec_ms);
        let mem = MemoryMb::new(mem_mb);
        let a = catalog.nearest(exec, mem);
        let b = catalog.nearest(exec, mem);
        prop_assert_eq!(a.name, b.name, "matching must be deterministic");
    }

    #[test]
    fn exact_profile_matches_itself(idx in 0usize..40) {
        let catalog = Catalog::paper_catalog();
        let profile = &catalog.profiles()[idx];
        let found = catalog.nearest(profile.exec_x86, profile.memory);
        // Querying a profile's own coordinates returns a profile at zero
        // distance — itself, unless another profile shares the exact
        // coordinates.
        prop_assert_eq!(found.exec_x86, profile.exec_x86);
        prop_assert_eq!(found.memory, profile.memory);
    }

    #[test]
    fn workload_resolution_invariants(
        specs in prop::collection::vec((100u64..60_000, 64u32..4096), 1..30),
    ) {
        let functions: Vec<TraceFunction> = specs
            .iter()
            .enumerate()
            .map(|(i, &(exec_ms, mem))| {
                TraceFunction::new(
                    FunctionId::new(i as u32),
                    SimDuration::from_millis(exec_ms),
                    MemoryMb::new(mem),
                )
            })
            .collect();
        let trace = Trace::new(functions, vec![]).unwrap();
        let model = CompressionModel::paper_default();
        let workload = Workload::from_trace(&trace, &Catalog::paper_catalog(), &model);

        for spec in workload.specs() {
            // Trace-sourced fields survive resolution.
            let tf = trace.function(spec.id);
            prop_assert_eq!(spec.exec_time(Arch::X86), tf.mean_exec);
            prop_assert_eq!(spec.memory, tf.memory);
            // Physical sanity.
            prop_assert!(spec.compressed_memory <= spec.memory);
            prop_assert!(!spec.compressed_memory.is_zero());
            for arch in Arch::ALL {
                prop_assert!(!spec.cold_start(arch).is_zero());
                prop_assert!(!spec.decompress_time(arch).is_zero());
                prop_assert!(!spec.exec_time(arch).is_zero());
            }
            // ARM cold starts are uniformly slower, decompression slightly.
            prop_assert!(spec.cold_start(Arch::Arm) > spec.cold_start(Arch::X86));
            prop_assert!(spec.decompress_time(Arch::Arm) > spec.decompress_time(Arch::X86));
        }
    }

    #[test]
    fn dense_codec_yields_smaller_footprints_but_slower_decode(
        specs in prop::collection::vec((100u64..60_000, 64u32..4096), 1..15),
    ) {
        let functions: Vec<TraceFunction> = specs
            .iter()
            .enumerate()
            .map(|(i, &(exec_ms, mem))| {
                TraceFunction::new(
                    FunctionId::new(i as u32),
                    SimDuration::from_millis(exec_ms),
                    MemoryMb::new(mem),
                )
            })
            .collect();
        let trace = Trace::new(functions, vec![]).unwrap();
        let model = CompressionModel::paper_default();
        let catalog = Catalog::paper_catalog();
        let fast = Workload::from_trace_with_codec(&trace, &catalog, &model, CodecKind::Fast);
        let dense = Workload::from_trace_with_codec(&trace, &catalog, &model, CodecKind::Dense);
        for (f, d) in fast.specs().iter().zip(dense.specs()) {
            prop_assert!(d.compressed_memory <= f.compressed_memory);
            prop_assert!(d.decompress_time(Arch::X86) > f.decompress_time(Arch::X86));
        }
    }
}
