//! Per-interval time-series accumulation.

use cc_types::{SimDuration, SimTime};

/// A time series bucketed into fixed-width intervals of simulated time.
///
/// Each bucket accumulates a sum and a count, so the series can report
/// either totals (e.g. invocations per minute) or means (e.g. mean service
/// time per minute). Buckets are created on demand; gaps are reported as
/// zero-count buckets when iterating a range.
///
/// # Example
///
/// ```
/// use cc_metrics::TimeSeries;
/// use cc_types::{SimDuration, SimTime};
///
/// let mut s = TimeSeries::new(SimDuration::from_mins(1));
/// s.record(SimTime::from_micros(10), 2.0);
/// s.record(SimTime::from_micros(20), 4.0);
/// assert_eq!(s.bucket_sum(0), 6.0);
/// assert_eq!(s.bucket_mean(0), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates an empty series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "bucket interval must be non-zero");
        TimeSeries {
            interval,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// The bucket width.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Records an observation at simulated time `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = at.interval_index(self.interval) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Number of buckets touched so far (index of the last non-empty bucket
    /// plus one).
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Returns whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Sum of observations in bucket `idx` (zero if out of range).
    pub fn bucket_sum(&self, idx: usize) -> f64 {
        self.sums.get(idx).copied().unwrap_or(0.0)
    }

    /// Count of observations in bucket `idx` (zero if out of range).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Mean of observations in bucket `idx`, or `None` if the bucket is
    /// empty.
    pub fn bucket_mean(&self, idx: usize) -> Option<f64> {
        let count = self.bucket_count(idx);
        (count > 0).then(|| self.bucket_sum(idx) / count as f64)
    }

    /// All bucket sums, dense from bucket 0 through the last touched bucket.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// All bucket counts, dense from bucket 0.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bucket means, with empty buckets reported as `0.0`.
    pub fn means(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.bucket_mean(i).unwrap_or(0.0))
            .collect()
    }

    /// Element-wise ratio of this series' sums over `denom`'s sums —
    /// e.g. warm starts / invocations per minute. Empty denominators yield
    /// `0.0`. The result has the length of the longer series.
    ///
    /// # Panics
    ///
    /// Panics if the two series have different bucket widths.
    pub fn ratio_of_sums(&self, denom: &TimeSeries) -> Vec<f64> {
        assert_eq!(
            self.interval, denom.interval,
            "series must share a bucket width"
        );
        let len = self.len().max(denom.len());
        (0..len)
            .map(|i| {
                let d = denom.bucket_sum(i);
                if d == 0.0 {
                    0.0
                } else {
                    self.bucket_sum(i) / d
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes() -> SimDuration {
        SimDuration::from_mins(1)
    }

    #[test]
    fn records_into_correct_bucket() {
        let mut s = TimeSeries::new(minutes());
        s.record(SimTime::from_micros(0), 1.0);
        s.record(SimTime::ZERO + SimDuration::from_mins(2), 5.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.bucket_sum(0), 1.0);
        assert_eq!(s.bucket_sum(1), 0.0);
        assert_eq!(s.bucket_sum(2), 5.0);
        assert_eq!(s.bucket_count(1), 0);
        assert_eq!(s.bucket_mean(1), None);
    }

    #[test]
    fn means_fill_gaps_with_zero() {
        let mut s = TimeSeries::new(minutes());
        s.record(SimTime::ZERO, 2.0);
        s.record(SimTime::ZERO, 4.0);
        s.record(SimTime::ZERO + SimDuration::from_mins(2), 6.0);
        assert_eq!(s.means(), vec![3.0, 0.0, 6.0]);
    }

    #[test]
    fn ratio_of_sums_handles_gaps() {
        let mut warm = TimeSeries::new(minutes());
        let mut total = TimeSeries::new(minutes());
        total.record(SimTime::ZERO, 1.0);
        total.record(SimTime::ZERO, 1.0);
        warm.record(SimTime::ZERO, 1.0);
        total.record(SimTime::ZERO + SimDuration::from_mins(1), 1.0);
        let ratio = warm.ratio_of_sums(&total);
        assert_eq!(ratio, vec![0.5, 0.0]);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = TimeSeries::new(minutes());
        s.record(SimTime::ZERO, f64::NAN);
        assert!(s.is_empty());
    }

    #[test]
    fn out_of_order_timestamps_land_in_their_buckets() {
        // The engine emits events in processing order, which is not always
        // timestamp order (e.g. CompressionFinished); recording must be
        // order-independent.
        let mut s = TimeSeries::new(minutes());
        s.record(SimTime::ZERO + SimDuration::from_mins(5), 1.0);
        s.record(SimTime::ZERO + SimDuration::from_mins(1), 2.0);
        s.record(SimTime::ZERO + SimDuration::from_mins(5), 3.0);
        s.record(SimTime::ZERO, 4.0);
        assert_eq!(s.len(), 6);
        assert_eq!(s.bucket_sum(0), 4.0);
        assert_eq!(s.bucket_sum(1), 2.0);
        assert_eq!(s.bucket_sum(5), 4.0);
        assert_eq!(s.bucket_count(5), 2);
    }

    #[test]
    fn boundary_timestamps_open_the_next_bucket() {
        // A timestamp exactly on a bucket edge belongs to the bucket it
        // opens; one microsecond earlier still belongs to the previous one.
        let mut s = TimeSeries::new(minutes());
        let edge = SimTime::ZERO + SimDuration::from_mins(1);
        s.record(SimTime::from_micros(edge.as_micros() - 1), 1.0);
        s.record(edge, 10.0);
        assert_eq!(s.bucket_sum(0), 1.0);
        assert_eq!(s.bucket_sum(1), 10.0);
        assert_eq!(s.bucket_mean(1), Some(10.0));
    }

    #[test]
    fn horizon_stamped_sample_matches_engine_interval_count() {
        // The engine schedules ticks while `next <= ZERO + horizon`, so a
        // run over H = k·interval produces exactly k + 1 per-interval
        // samples (indices 0..=k; the final tick fires at the horizon
        // itself). A record stamped exactly at the horizon must land in
        // bucket k — the same index as that final tick — and not open a
        // phantom bucket k + 1 that would disagree with the report's
        // interval count.
        let interval = minutes();
        let k = 20u64;
        let horizon = SimTime::ZERO + SimDuration::from_mins(k);
        let mut s = TimeSeries::new(interval);
        s.record(horizon, 1.0);
        assert_eq!(horizon.interval_index(interval), k);
        assert_eq!(s.len() as u64, k + 1, "no phantom trailing interval");
        assert_eq!(s.bucket_count(k as usize), 1);
        assert_eq!(s.bucket_count(k as usize + 1), 0);
        // The horizon stamp opens bucket k, not a later one: anything up
        // to one full interval past it still shares that bucket, and only
        // the next edge (horizon + interval) opens bucket k + 1.
        let mut late = TimeSeries::new(interval);
        late.record(SimTime::from_micros(horizon.as_micros() + 1), 1.0);
        assert_eq!(late.len() as u64, k + 1);
        let mut next_edge = TimeSeries::new(interval);
        next_edge.record(horizon + interval, 1.0);
        assert_eq!(next_edge.len() as u64, k + 2);
    }

    #[test]
    #[should_panic(expected = "bucket interval must be non-zero")]
    fn zero_interval_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "series must share a bucket width")]
    fn mismatched_intervals_rejected() {
        let a = TimeSeries::new(SimDuration::from_mins(1));
        let b = TimeSeries::new(SimDuration::from_mins(2));
        let _ = a.ratio_of_sums(&b);
    }
}
