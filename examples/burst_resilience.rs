//! Robustness to unannounced changes (the paper's Fig. 15 scenario).
//!
//! Halfway through the trace, function inputs change (execution times jump
//! 1.8×) and a 10-minute load burst triples the arrival rate. Neither
//! CodeCrunch nor the baseline is told; CodeCrunch must detect the shift
//! through its observed-execution EWMAs and P_est re-estimation.
//!
//! ```sh
//! cargo run --release --example burst_resilience
//! ```

use codecrunch_suite::prelude::*;

fn main() {
    let base = SyntheticTrace::builder()
        .functions(80)
        .duration(SimDuration::from_mins(300))
        .seed(15)
        .build();

    // Inject the burst into the trace; the input change is applied inside
    // the simulator (it scales execution times from that instant on).
    let burst_at = SimTime::ZERO + SimDuration::from_mins(180);
    let burst = Perturbation::Burst {
        at: burst_at,
        duration: SimDuration::from_mins(10),
        factor: 3.0,
    };
    let trace = burst.apply_to_trace(base, 7);
    let input_change = Perturbation::InputChange {
        at: SimTime::ZERO + SimDuration::from_mins(150),
        factor: 1.8,
    };

    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    let config = ClusterConfig::paper_cluster();

    let mut runs: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("sitw", Box::new(SitW::new())),
        ("codecrunch", Box::new(CodeCrunch::new())),
        ("oracle", Box::new(Oracle::new(&trace))),
    ];
    let mut series = Vec::new();
    for (name, policy) in runs.iter_mut() {
        let report = Simulation::new(config.clone(), &trace, &workload)
            .with_perturbations(vec![input_change])
            .run(policy.as_mut());
        series.push((*name, report));
    }

    // Print a coarse (15-minute buckets) mean-service-time time series.
    println!(
        "mean service time (s) per 15-minute window; input change at 150min, burst at 180min\n"
    );
    print!("{:<10}", "window");
    for (name, _) in &series {
        print!(" {name:>12}");
    }
    println!();
    let buckets = series[0].1.stats.service_time_series();
    let windows = buckets.len() / 15 + 1;
    for w in 0..windows {
        print!("{:<10}", format!("{}-{}m", w * 15, (w + 1) * 15));
        for (_, report) in &series {
            let s = report.stats.service_time_series();
            let chunk: Vec<f64> = s
                .iter()
                .skip(w * 15)
                .take(15)
                .copied()
                .filter(|v| *v > 0.0)
                .collect();
            let mean = if chunk.is_empty() {
                0.0
            } else {
                chunk.iter().sum::<f64>() / chunk.len() as f64
            };
            print!(" {mean:>12.2}");
        }
        println!();
    }

    for (name, report) in &series {
        println!(
            "\n{name}: overall mean service {:.2}s, warm {:.1}%",
            report.mean_service_time_secs(),
            report.warm_fraction() * 100.0
        );
    }
}
