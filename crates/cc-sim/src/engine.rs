//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::time::{Duration, Instant};

use cc_metrics::ServiceStats;
use cc_obs::{Event as ObsEvent, EventSink, IntervalSample, NullSink, ReleaseReason};
use cc_prof::{NullProfiler, PerfCounter, Phase, Profiler, Scope};
use cc_trace::{Perturbation, Trace};
use cc_types::{
    Arch, Cost, FunctionId, Invocation, MemoryMb, NodeId, ServiceRecord, SimDuration, SimTime,
    StartKind, WarmId, KEEP_ALIVE_MAX,
};
use cc_workload::Workload;

use crate::node::{NodeState, WarmInstance};
use crate::pool::WarmPool;
use crate::source::{ArrivalSource, Fetch, SliceSource};
use crate::{BudgetLedger, ClusterConfig, ClusterView, Command, Scheduler, SimReport};

/// Placement-order key for one node: least busy first, most free memory
/// next (`Reverse`), node id as the deterministic tie-break. Because every
/// node of a cluster has the same core count, fully-busy nodes sort after
/// every node with a free core, so a placement scan can stop at the first
/// key whose node has no free core.
type NodeOrderKey = (u32, Reverse<MemoryMb>, NodeId);

fn node_order_key(node: &NodeState) -> NodeOrderKey {
    (node.busy_cores, Reverse(node.free_memory()), node.id)
}

/// A configured simulation, ready to run a policy over a trace.
///
/// Running is deterministic: the same `(config, trace, workload, policy)`
/// always produces the same report.
pub struct Simulation<'a> {
    config: ClusterConfig,
    trace: &'a Trace,
    workload: &'a Workload,
    perturbations: Vec<Perturbation>,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or the workload does not cover the
    /// trace's functions.
    pub fn new(config: ClusterConfig, trace: &'a Trace, workload: &'a Workload) -> Self {
        config.validate();
        assert_eq!(
            workload.len(),
            trace.functions().len(),
            "workload must resolve every trace function"
        );
        Simulation {
            config,
            trace,
            workload,
            perturbations: Vec::new(),
        }
    }

    /// Adds unannounced perturbations (input changes); burst perturbations
    /// should instead be applied to the trace via
    /// [`Perturbation::apply_to_trace`].
    pub fn with_perturbations(mut self, perturbations: Vec<Perturbation>) -> Self {
        self.perturbations = perturbations;
        self
    }

    /// Runs the policy over the whole trace and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (an invocation can never be
    /// placed), which indicates an impossible configuration such as a
    /// function larger than any node.
    pub fn run(&self, policy: &mut dyn Scheduler) -> SimReport {
        self.run_with_sink(policy, &mut NullSink)
    }

    /// Runs the policy with an [`EventSink`] observing the full typed event
    /// stream (arrivals, starts, warm-pool churn, budget flow, optimizer
    /// progress).
    ///
    /// The engine is monomorphized over `S` and every emission site is
    /// guarded by `S::ENABLED`, so `run` (which passes [`NullSink`])
    /// compiles to exactly the uninstrumented hot path. A sink never
    /// changes simulation behavior: the report is identical with or
    /// without one.
    ///
    /// # Panics
    ///
    /// As for [`Simulation::run`].
    pub fn run_with_sink<S: EventSink>(
        &self,
        policy: &mut dyn Scheduler,
        sink: &mut S,
    ) -> SimReport {
        self.run_with_sink_profiled::<S, NullProfiler>(policy, sink)
    }

    /// Runs the policy with both an [`EventSink`] and a
    /// [`cc_prof::Profiler`] observing the engine's own wall-clock phases.
    ///
    /// Mirrors the sink contract: the engine is monomorphized over `P` and
    /// every probe is guarded by `P::ENABLED`, so the
    /// [`NullProfiler`] instantiation (what [`Simulation::run_with_sink`]
    /// uses) is the exact uninstrumented hot path, and profiling never
    /// changes simulation behavior or its report.
    ///
    /// # Panics
    ///
    /// As for [`Simulation::run`].
    pub fn run_with_sink_profiled<S: EventSink, P: Profiler>(
        &self,
        policy: &mut dyn Scheduler,
        sink: &mut S,
    ) -> SimReport {
        let mut engine = Engine::<_, _, P>::new(
            &self.config,
            SliceSource::from_trace(self.trace),
            self.workload,
            &self.perturbations,
            sink,
            true,
        );
        engine.run(policy)
    }
}

/// Runs a policy over an arbitrary [`ArrivalSource`] — e.g. a
/// constant-memory streaming trace — without materializing the invocation
/// stream. Behaviorally identical to [`Simulation::run_with_sink`] fed the
/// same invocations in the same order.
///
/// `collect_records` controls whether per-invocation [`ServiceRecord`]s
/// are kept in the report: a multi-day million-function replay would
/// otherwise hold every record in RAM. With `false` the report's `records`
/// vector stays empty (aggregated stats, series, and counters are
/// unaffected, but [`SimReport::digest`] covers records, so compare
/// digests only between runs using the same setting).
///
/// # Panics
///
/// As for [`Simulation::run`].
pub fn run_streaming<Src: ArrivalSource, S: EventSink>(
    config: &ClusterConfig,
    source: Src,
    workload: &Workload,
    policy: &mut dyn Scheduler,
    sink: &mut S,
    collect_records: bool,
) -> SimReport {
    run_streaming_profiled::<Src, S, NullProfiler>(
        config,
        source,
        workload,
        policy,
        sink,
        collect_records,
    )
}

/// [`run_streaming`] with a [`cc_prof::Profiler`] observing the engine's
/// own wall-clock phases (see [`Simulation::run_with_sink_profiled`]).
///
/// # Panics
///
/// As for [`Simulation::run`].
pub fn run_streaming_profiled<Src: ArrivalSource, S: EventSink, P: Profiler>(
    config: &ClusterConfig,
    source: Src,
    workload: &Workload,
    policy: &mut dyn Scheduler,
    sink: &mut S,
    collect_records: bool,
) -> SimReport {
    config.validate();
    let mut engine = Engine::<_, _, P>::new(config, source, workload, &[], sink, collect_records);
    engine.run(policy)
}

/// Event classes, in processing-priority order at equal timestamps:
/// capacity-freeing events run before capacity-consuming ones.
///
/// Class 1 (keep-alive expiry) has no heap variant: expirations are served
/// straight from the warm pool's expiry calendar ([`WarmPool::next_expiry`]),
/// which the main loop merges into the event order at exactly the position
/// the per-admission `Expiry` heap events used to occupy — see
/// [`EXPIRY_CLASS`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    /// Optimization-interval tick.
    Tick,
    /// An execution completes.
    Completion {
        function: FunctionId,
        node: NodeId,
        memory: MemoryMb,
    },
    /// A pre-warm finishes its cold start and joins the pool.
    PrewarmReady {
        function: FunctionId,
        node: NodeId,
        keep_alive: SimDuration,
        compress: bool,
    },
    /// A trace invocation arrives (index into the invocation stream).
    Arrival(usize),
}

/// The event class of a keep-alive expiry. Expirations live in the pool's
/// calendar rather than the heap, so the class constant is what slots them
/// between ticks (class 0) and completions (class 2) at equal timestamps.
const EXPIRY_CLASS: u8 = 1;

/// The event class of an arrival — the highest, so it doubles as the
/// ceiling for paced internal processing: when a live source concedes
/// time up to `t` (`Fetch::NotBefore`), internal events at exactly `t`
/// still order before any arrival that may land at `t`.
const ARRIVAL_CLASS: u8 = 4;

impl EventKind {
    fn class(&self) -> u8 {
        match self {
            EventKind::Tick => 0,
            EventKind::Completion { .. } => 2,
            EventKind::PrewarmReady { .. } => 3,
            EventKind::Arrival(_) => ARRIVAL_CLASS,
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.kind.class(), other.seq).cmp(&(self.at, self.kind.class(), self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Engine<'a, Src: ArrivalSource, S: EventSink, P: Profiler> {
    /// Wall-clock profiler; every probe is guarded by `P::ENABLED`, so the
    /// [`NullProfiler`] instantiation contains no profiling code at all.
    _profiler: std::marker::PhantomData<P>,
    config: &'a ClusterConfig,
    source: Src,
    /// The invocation behind the next `Arrival` heap event, pulled from
    /// the source at the top of the main loop. The engine never needs
    /// more lookahead than this one slot.
    upcoming: Option<Invocation>,
    /// Whether the source reported [`Fetch::Exhausted`].
    exhausted: bool,
    /// Arrival timestamp of the last pulled invocation (source-order
    /// monotonicity debug check).
    last_pulled: SimTime,
    /// Invocations pulled from the source so far.
    arrived: usize,
    workload: &'a Workload,
    perturbations: &'a [Perturbation],
    /// Event sink; every `sink.record` call is guarded by `S::ENABLED`, so
    /// the [`NullSink`] instantiation contains no telemetry code at all.
    sink: &'a mut S,

    now: SimTime,
    nodes: Vec<NodeState>,
    pool: WarmPool,
    /// Per architecture: all nodes ordered by [`NodeOrderKey`], kept in
    /// sync with every node-state mutation through [`Engine::mutate_node`].
    node_order: [BTreeSet<NodeOrderKey>; 2],
    ledger: BudgetLedger,
    /// Queued invocations as `(arrival index, invocation)`: the invocation
    /// rides along so retries never need to re-address the source.
    pending: VecDeque<(usize, Invocation)>,
    /// Bumped whenever placement capacity is freed or the evictable set
    /// grows (execution finish, instance removal, warm admission). Lets
    /// [`Engine::drain_pending`] skip re-running a placement attempt that
    /// already failed against identical capacity.
    capacity_epoch: u64,
    /// The head-of-line pending entry that last failed, and the capacity
    /// epoch it failed at.
    last_retry_failure: Option<(usize, u64)>,
    events: BinaryHeap<Event>,
    seq: u64,

    // Reusable scratch buffers: the hot path (try_start/make_room) borrows
    // these instead of allocating per arrival.
    scratch_candidates: Vec<WarmId>,
    scratch_nodes: Vec<NodeId>,
    scratch_ranked: Vec<(f64, u64, WarmId)>,

    stats: ServiceStats,
    /// Whether per-invocation records are retained (see [`run_streaming`]).
    collect_records: bool,
    records: Vec<ServiceRecord>,
    spend_per_interval: Vec<f64>,
    last_spent: Cost,
    warm_pool_series: Vec<f64>,
    compressed_series: Vec<f64>,
    compression_events: u64,
    compression_events_per_interval: Vec<f64>,
    last_compression_events: u64,
    utilization_series: Vec<f64>,
    evictions: u64,
    dropped_prewarms: u64,
    decision_time: Duration,
    completed: usize,
}

impl<'a, Src: ArrivalSource, S: EventSink, P: Profiler> Engine<'a, Src, S, P> {
    fn new(
        config: &'a ClusterConfig,
        source: Src,
        workload: &'a Workload,
        perturbations: &'a [Perturbation],
        sink: &'a mut S,
        collect_records: bool,
    ) -> Self {
        let mut nodes = Vec::with_capacity(config.total_nodes() as usize);
        for arch in Arch::ALL {
            for _ in 0..config.nodes_of(arch) {
                let id = NodeId::new(nodes.len() as u32);
                nodes.push(NodeState::new(
                    id,
                    arch,
                    config.cores_per_node,
                    config.memory_per_node,
                ));
            }
        }
        let ledger = match config.budget_per_interval {
            Some(rate) => BudgetLedger::budgeted(rate, config.interval),
            None => BudgetLedger::unlimited(config.interval),
        };
        let mut node_order: [BTreeSet<NodeOrderKey>; 2] = [BTreeSet::new(), BTreeSet::new()];
        for node in &nodes {
            node_order[node.arch.index()].insert(node_order_key(node));
        }
        let pool = WarmPool::new(workload.len(), nodes.len());
        let len_hint = if collect_records {
            source.len_hint()
        } else {
            0
        };
        Engine {
            _profiler: std::marker::PhantomData,
            config,
            source,
            upcoming: None,
            exhausted: false,
            last_pulled: SimTime::ZERO,
            arrived: 0,
            workload,
            perturbations,
            sink,
            now: SimTime::ZERO,
            nodes,
            pool,
            node_order,
            ledger,
            pending: VecDeque::new(),
            capacity_epoch: 0,
            last_retry_failure: None,
            events: BinaryHeap::new(),
            seq: 0,
            scratch_candidates: Vec::new(),
            scratch_nodes: Vec::new(),
            scratch_ranked: Vec::new(),
            stats: ServiceStats::new(config.interval),
            collect_records,
            records: Vec::with_capacity(len_hint),
            spend_per_interval: Vec::new(),
            last_spent: Cost::ZERO,
            warm_pool_series: Vec::new(),
            compressed_series: Vec::new(),
            compression_events: 0,
            compression_events_per_interval: Vec::new(),
            last_compression_events: 0,
            utilization_series: Vec::new(),
            evictions: 0,
            dropped_prewarms: 0,
            decision_time: Duration::ZERO,
            completed: 0,
        }
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(Event {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Refunds `amount` to the ledger, emitting a budget-credit event for
    /// non-zero refunds. The emitted amount is what the ledger actually
    /// credited back (the ledger clamps refunds to its outstanding
    /// reservations; engine refunds are always pro-rata tails of real
    /// reservations, so the clamp never bites here).
    fn credit(&mut self, amount: Cost) {
        let refunded = self.ledger.refund(amount);
        debug_assert_eq!(refunded, amount, "engine refund exceeded outstanding");
        if S::ENABLED && !refunded.is_zero() {
            self.sink.record(&ObsEvent::BudgetCredit {
                at: self.now,
                amount: refunded,
            });
        }
    }

    fn view(&self) -> ClusterView<'_> {
        ClusterView::new(
            self.now,
            self.config,
            &self.nodes,
            &self.pool,
            &self.ledger,
            self.workload,
            self.pending.len(),
        )
    }

    /// Mutates one node's state while keeping the per-arch placement index
    /// in sync: the node's order key is pulled before the mutation and
    /// reinserted after.
    fn mutate_node<R>(&mut self, node: NodeId, f: impl FnOnce(&mut NodeState) -> R) -> R {
        let state = &self.nodes[node.index()];
        let order = &mut self.node_order[state.arch.index()];
        let removed = order.remove(&node_order_key(state));
        debug_assert!(removed, "placement index out of sync with node state");
        let result = f(&mut self.nodes[node.index()]);
        let state = &self.nodes[node.index()];
        self.node_order[state.arch.index()].insert(node_order_key(state));
        result
    }

    /// The instant of the engine's next internal event (heap head or
    /// expiry-calendar head), used as the deadline for a live source pull.
    fn next_internal_at(&self) -> Option<SimTime> {
        let heap = self.events.peek().map(|e| e.at);
        let expiry = self.pool.next_expiry().map(|(at, _, _)| at);
        match (heap, expiry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn run(&mut self, policy: &mut dyn Scheduler) -> SimReport {
        // Root span: everything below (arrivals, completions, ticks,
        // expiry drains) nests under it, so a profile's self-time sum
        // covers the whole run by construction.
        let _run_span = P::scope(Phase::EngineRun);
        if S::ENABLED {
            // Introspection recording must not change policy decisions
            // (golden-tested), only make round telemetry available.
            policy.enable_introspection(true);
        }
        self.push(SimTime::ZERO, EventKind::Tick);

        loop {
            // Keep the next arrival (if any) represented in the heap. For
            // batch sources the fetch is always ready, so this is the old
            // one-slot lookahead; a live source may instead answer
            // `NotBefore` (process internal events up to the deadline and
            // ask again) once time-paces the stream.
            let mut paced_limit: Option<SimTime> = None;
            if self.upcoming.is_none() && !self.exhausted {
                match self.source.fetch(self.next_internal_at()) {
                    Fetch::Ready(inv) => {
                        debug_assert!(
                            inv.arrival >= self.last_pulled,
                            "source must be time-sorted"
                        );
                        self.last_pulled = inv.arrival;
                        // A live source can deliver an arrival late (burst
                        // catch-up); schedule it for immediate processing
                        // without letting heap time run backwards.
                        let at = if inv.arrival > self.now {
                            inv.arrival
                        } else {
                            self.now
                        };
                        self.push(at, EventKind::Arrival(self.arrived));
                        self.upcoming = Some(inv);
                    }
                    Fetch::NotBefore(t) => paced_limit = Some(t),
                    Fetch::Exhausted => self.exhausted = true,
                }
            }
            // The expiry calendar is the heap's class-1 lane: drain every
            // expiration strictly ordered before the next heap event (by
            // the usual `(at, class)` key) in one pass, then pop the heap.
            //
            // `NotBefore(limit)` only licenses internal processing up to
            // `limit` — an arrival may land anywhere after it, so both the
            // expiry drain and the heap pop are capped there and the loop
            // re-fetches before touching anything later. Events exactly AT
            // the limit are safe: arrivals carry the highest class, so
            // every internal event at `limit` orders before an arrival
            // that shows up at the same instant.
            let next_heap = self.events.peek().map(|e| (e.at, e.kind.class()));
            let expiry_barrier = match paced_limit {
                Some(limit) => {
                    let cap = (limit, ARRIVAL_CLASS);
                    Some(next_heap.map_or(cap, |next| next.min(cap)))
                }
                None => next_heap,
            };
            self.drain_due_expiries(expiry_barrier);
            let poppable = match (paced_limit, self.events.peek()) {
                (Some(limit), Some(event)) => event.at <= limit,
                (None, Some(_)) => true,
                (_, None) => false,
            };
            if !poppable {
                if self.events.peek().is_none() && self.exhausted {
                    break;
                }
                // Either a live source with nothing scheduled (block in
                // the next fetch — deadline-free fetch never returns
                // `NotBefore`), or everything left lies beyond the paced
                // limit: ask the source again with a fresh deadline.
                continue;
            }
            let event = self.events.pop().expect("poppable event");
            debug_assert!(event.at >= self.now, "time must not run backwards");
            self.now = event.at;
            match event.kind {
                EventKind::Tick => self.handle_tick(policy),
                EventKind::Completion {
                    function,
                    node,
                    memory,
                } => self.handle_completion(function, node, memory, policy),
                EventKind::PrewarmReady {
                    function,
                    node,
                    keep_alive,
                    compress,
                } => self.handle_prewarm_ready(function, node, keep_alive, compress, policy),
                EventKind::Arrival(index) => self.handle_arrival(index, policy),
            }
        }

        assert!(
            self.pending.is_empty(),
            "simulation deadlocked with {} invocations unplaceable",
            self.pending.len()
        );
        assert_eq!(
            self.completed, self.arrived,
            "every invocation must complete exactly once"
        );

        SimReport {
            policy: policy.name().to_owned(),
            stats: std::mem::replace(&mut self.stats, ServiceStats::new(self.config.interval)),
            records: std::mem::take(&mut self.records),
            keep_alive_spend: self.ledger.spent(),
            spend_per_interval: std::mem::take(&mut self.spend_per_interval),
            warm_pool_series: std::mem::take(&mut self.warm_pool_series),
            compressed_series: std::mem::take(&mut self.compressed_series),
            compression_events: self.compression_events,
            compression_events_per_interval: std::mem::take(
                &mut self.compression_events_per_interval,
            ),
            utilization_series: std::mem::take(&mut self.utilization_series),
            evictions: self.evictions,
            dropped_prewarms: self.dropped_prewarms,
            decision_time: self.decision_time,
        }
    }

    fn handle_arrival(&mut self, index: usize, policy: &mut dyn Scheduler) {
        let _span = P::scope(Phase::Arrival);
        let inv = self
            .upcoming
            .take()
            .expect("arrival event without a pulled invocation");
        // Equality in batch mode; a live source delivering late (burst
        // catch-up) processes the arrival at delivery time while `wait`
        // still measures from the recorded arrival instant.
        debug_assert!(inv.arrival <= self.now, "arrival event out of step");
        self.arrived += 1;
        let function = inv.function;
        if S::ENABLED {
            self.sink.record(&ObsEvent::Arrival {
                at: self.now,
                function,
            });
        }
        {
            let _decision = P::scope(Phase::PolicyDecision);
            let started = Instant::now();
            policy.on_arrival(function, self.now);
            self.decision_time += started.elapsed();
        }

        if self.pending.is_empty() && self.try_start(inv, policy) {
            return;
        }
        self.pending.push_back((index, inv));
        if S::ENABLED {
            self.sink.record(&ObsEvent::Queued {
                at: self.now,
                function,
                depth: self.pending.len() as u64,
            });
        }
    }

    /// Attempts to start `inv` right now. Returns false if no capacity
    /// exists anywhere.
    fn try_start(&mut self, inv: Invocation, policy: &mut dyn Scheduler) -> bool {
        let memory = self.workload.spec(inv.function).memory;
        self.try_reuse(inv.function, inv.arrival, memory, policy)
            || self.try_cold(inv.function, inv.arrival, memory, policy)
    }

    /// Tries to reuse a warm instance: cheapest start penalty first, then
    /// the instance closest to expiry (save the freshest ones). The pool's
    /// candidate index holds the instances in exactly this order; snapshot
    /// the ids into a scratch buffer because an eviction inside
    /// `make_room` mutates the index mid-walk.
    fn try_reuse(
        &mut self,
        function: FunctionId,
        arrival: SimTime,
        memory: MemoryMb,
        policy: &mut dyn Scheduler,
    ) -> bool {
        self.pool.migrate_due(self.now);
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        candidates.extend(self.pool.candidates_of(function));
        if P::ENABLED {
            P::add(PerfCounter::CandidateProbes, candidates.len() as u64);
        }

        let mut started = false;
        for &id in &candidates {
            let inst = self
                .pool
                .get(id)
                .expect("candidate index must only hold live instances");
            let node = inst.node;
            let extra = memory.saturating_sub(inst.memory);
            let kind = if inst.pays_decompression(self.now) {
                StartKind::WarmCompressed
            } else {
                StartKind::WarmUncompressed
            };
            let refund = inst.refundable_at(self.now);
            if self.nodes[node.index()].free_cores() == 0 {
                continue;
            }
            if self.nodes[node.index()].free_memory() < extra
                && !self.make_room(node, extra, Some(id), policy)
            {
                continue;
            }
            // Reuse this instance. A failed make_room evicts nothing, so
            // every snapshot id after a failure is still live; a successful
            // one leads straight here.
            self.credit(refund);
            self.remove_instance(id, ReleaseReason::Reused);
            self.start_execution(function, arrival, node, kind, policy);
            started = true;
            break;
        }
        candidates.clear();
        self.scratch_candidates = candidates;
        started
    }

    /// Cold start: the policy chooses the architecture; spill over to the
    /// other one if the preferred side is saturated. Nodes are taken in
    /// placement order (least busy, then most free memory) straight from
    /// the incrementally maintained per-arch index.
    fn try_cold(
        &mut self,
        function: FunctionId,
        arrival: SimTime,
        memory: MemoryMb,
        policy: &mut dyn Scheduler,
    ) -> bool {
        let preferred = {
            let _decision = P::scope(Phase::PolicyDecision);
            let started = Instant::now();
            let preferred = policy.place(function, &self.view());
            self.decision_time += started.elapsed();
            preferred
        };

        for arch in [preferred, preferred.other()] {
            let Some(&(_, _, first)) = self.node_order[arch.index()].iter().next() else {
                continue;
            };
            if self.nodes[first.index()].free_cores() == 0 {
                // Uniform core counts: the best-ordered node being full
                // means every node of this arch is full.
                continue;
            }
            // Fast path: the best-ordered node fits without eviction.
            if self.nodes[first.index()].free_memory() >= memory {
                self.start_execution(function, arrival, first, StartKind::Cold, policy);
                return true;
            }
            // Slow path: walk nodes in placement order, evicting to make
            // room. Snapshot the ids (evictions re-key the order index).
            let mut node_ids = std::mem::take(&mut self.scratch_nodes);
            node_ids.clear();
            node_ids.extend(
                self.node_order[arch.index()]
                    .iter()
                    .take_while(|&&(busy, _, _)| busy < self.config.cores_per_node)
                    .map(|&(_, _, id)| id),
            );
            if P::ENABLED {
                P::add(PerfCounter::NodeScanProbes, node_ids.len() as u64);
            }
            let mut placed = false;
            for &node_id in &node_ids {
                let free = self.nodes[node_id.index()].free_memory();
                if free < memory {
                    let deficit = memory - free;
                    if !self.make_room(node_id, deficit, None, policy) {
                        continue;
                    }
                }
                self.start_execution(function, arrival, node_id, StartKind::Cold, policy);
                placed = true;
                break;
            }
            node_ids.clear();
            self.scratch_nodes = node_ids;
            if placed {
                return true;
            }
        }
        false
    }

    /// Frees at least `deficit` of memory on `node` by evicting warm
    /// instances in policy-rank order. Returns false (evicting nothing) if
    /// even evicting everything would not suffice.
    ///
    /// Only `node`'s own residents are examined — the node-state
    /// `warm_memory` counter answers the "would evicting everything
    /// suffice?" question in O(1), and the pool's residency index supplies
    /// the victims without a cluster-wide scan. Victims are ranked in
    /// admission order because stateful policies (e.g. FaasCache's
    /// greedy-dual clock) observe the ranking call order.
    fn make_room(
        &mut self,
        node: NodeId,
        deficit: MemoryMb,
        exclude: Option<WarmId>,
        policy: &mut dyn Scheduler,
    ) -> bool {
        let excluded_memory = match exclude {
            Some(id) => {
                let inst = self.pool.get(id).expect("excluded instance must be live");
                debug_assert_eq!(inst.node, node, "exclusion only applies to residents");
                inst.memory
            }
            None => MemoryMb::ZERO,
        };
        let evictable = self.nodes[node.index()]
            .warm_memory
            .saturating_sub(excluded_memory);
        #[cfg(debug_assertions)]
        assert_eq!(
            self.nodes[node.index()].warm_memory,
            self.pool.resident_memory(node),
            "warm-memory counter out of sync with residency index"
        );
        if evictable < deficit {
            return false;
        }
        let _span = P::scope(Phase::PoolEvict);
        let mut ranked = std::mem::take(&mut self.scratch_ranked);
        ranked.clear();
        {
            let _decision = P::scope(Phase::PolicyDecision);
            let view = self.view();
            let started = Instant::now();
            for id in self.pool.residents_of(node) {
                if Some(id) == exclude {
                    continue;
                }
                let inst = self
                    .pool
                    .get(id)
                    .expect("residency index must only hold live instances");
                ranked.push((policy.eviction_rank(inst, &view), inst.seq, id));
            }
            self.decision_time += started.elapsed();
        }
        if P::ENABLED {
            P::add(PerfCounter::EvictionsRanked, ranked.len() as u64);
        }
        ranked.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut freed = MemoryMb::ZERO;
        for &(_, _, id) in &ranked {
            if freed >= deficit {
                break;
            }
            let inst = self.pool.get(id).expect("ranked victim must be live");
            freed += inst.memory;
            let refund = inst.refundable_at(self.now);
            self.credit(refund);
            self.remove_instance(id, ReleaseReason::Evicted);
            self.evictions += 1;
        }
        ranked.clear();
        self.scratch_ranked = ranked;
        true
    }

    /// Starts an execution of `function` on `node` and emits its service
    /// record immediately (all components are known up front).
    fn start_execution(
        &mut self,
        function: FunctionId,
        arrival: SimTime,
        node: NodeId,
        kind: StartKind,
        policy: &mut dyn Scheduler,
    ) {
        let spec = self.workload.spec(function);
        let arch = self.nodes[node.index()].arch;
        let factor: f64 = self
            .perturbations
            .iter()
            .map(|p| p.exec_factor_at(arrival))
            .product();
        let execution = spec.exec_time(arch).scale(factor);
        let start_penalty = match kind {
            StartKind::Cold => spec
                .cold_start(arch)
                .scale(self.config.runtime.cold_start_scale()),
            StartKind::WarmCompressed => spec.decompress_time(arch),
            StartKind::WarmUncompressed => SimDuration::ZERO,
        };
        let record = ServiceRecord {
            function,
            arrival,
            wait: self.now.saturating_since(arrival),
            start_penalty,
            execution,
            kind,
            arch,
        };
        self.stats.observe(&record);
        if S::ENABLED {
            self.sink.record(&ObsEvent::ExecutionStarted {
                at: self.now,
                function,
                node,
                arch,
                kind,
                wait: record.wait,
                start_penalty,
                execution,
            });
        }
        {
            let _decision = P::scope(Phase::PolicyDecision);
            let started = Instant::now();
            policy.on_record(&record);
            self.decision_time += started.elapsed();
        }
        if self.collect_records {
            self.records.push(record);
        }

        let memory = spec.memory;
        self.mutate_node(node, |n| n.start_execution(memory));
        let finish = self.now + start_penalty + execution;
        self.push(
            finish,
            EventKind::Completion {
                function,
                node,
                memory,
            },
        );
    }

    fn handle_completion(
        &mut self,
        function: FunctionId,
        node: NodeId,
        memory: MemoryMb,
        policy: &mut dyn Scheduler,
    ) {
        let _span = P::scope(Phase::Completion);
        self.mutate_node(node, |n| n.finish_execution(memory));
        self.capacity_epoch += 1;
        self.completed += 1;

        let arch = self.nodes[node.index()].arch;
        let decision = {
            let _decision = P::scope(Phase::PolicyDecision);
            let view = self.view();
            let started = Instant::now();
            let d = policy.on_completion(function, arch, &view);
            self.decision_time += started.elapsed();
            d
        };
        self.admit_warm(
            function,
            node,
            decision.keep_alive,
            decision.compress,
            policy,
        );
        self.drain_pending(policy);
    }

    /// Admits a freshly-finished (or pre-warmed) instance into the warm
    /// pool, enforcing the warm-memory cap and the budget.
    fn admit_warm(
        &mut self,
        function: FunctionId,
        node: NodeId,
        keep_alive: SimDuration,
        compress: bool,
        policy: &mut dyn Scheduler,
    ) {
        let keep_alive = keep_alive.min(KEEP_ALIVE_MAX);
        if keep_alive.is_zero() {
            return;
        }
        let _span = P::scope(Phase::PoolAdmit);
        let spec = self.workload.spec(function);
        let footprint = if compress {
            spec.compressed_memory
        } else {
            spec.memory
        };
        // Enforce the warm-pool cap on this node.
        let cap = self.config.warm_memory_cap();
        if footprint > cap {
            return;
        }
        let warm_used = self.nodes[node.index()].warm_memory;
        if warm_used + footprint > cap {
            let deficit = warm_used + footprint - cap;
            if !self.make_room(node, deficit, None, policy) {
                return;
            }
        }
        if self.nodes[node.index()].free_memory() < footprint {
            let deficit = footprint - self.nodes[node.index()].free_memory();
            if !self.make_room(node, deficit, None, policy) {
                return;
            }
        }

        // Reserve the keep-alive cost; truncate the window to what the
        // budget affords.
        let arch = self.nodes[node.index()].arch;
        let rate = self.config.rate(arch);
        let projected = rate.keep_alive_cost(footprint, keep_alive);
        let granted = self.ledger.reserve(self.now, projected);
        if S::ENABLED {
            self.sink.record(&ObsEvent::BudgetDebit {
                at: self.now,
                requested: projected,
                granted,
            });
        }
        let (keep_alive, reserved) = if granted < projected {
            let ratio = granted.as_picodollars() as f64 / projected.as_picodollars().max(1) as f64;
            let truncated = keep_alive.scale(ratio);
            let actual = rate.keep_alive_cost(footprint, truncated);
            self.credit(granted.saturating_sub(actual));
            (truncated, actual)
        } else {
            (keep_alive, granted)
        };
        // Windows under a second are not worth the bookkeeping.
        if keep_alive < SimDuration::from_secs(1) {
            self.credit(reserved);
            return;
        }

        let expiry = self.now + keep_alive;
        self.mutate_node(node, |n| n.add_warm(footprint));
        let id = self.pool.insert(WarmInstance {
            id: WarmId::INVALID, // assigned by the pool
            seq: 0,              // assigned by the pool
            function,
            node,
            arch,
            compressed: compress,
            memory: footprint,
            since: self.now,
            expiry,
            reserved,
            compressed_ready_at: if compress {
                self.now + spec.compress
            } else {
                self.now
            },
            decompress_penalty: if compress {
                spec.decompress_time(arch)
            } else {
                SimDuration::ZERO
            },
        });
        if P::ENABLED {
            P::add(PerfCounter::PoolInsert, 1);
        }
        if compress {
            self.compression_events += 1;
        }
        if S::ENABLED {
            self.sink.record(&ObsEvent::InstanceAdmitted {
                at: self.now,
                id,
                function,
                node,
                arch,
                compressed: compress,
                memory: footprint,
                expiry,
                reserved,
            });
            if compress {
                // The pool re-keys compressed instances lazily, so both
                // compression endpoints are emitted here; `ready_at` is the
                // completion instant (see the Event docs).
                let ready_at = self.now + spec.compress;
                self.sink.record(&ObsEvent::CompressionStarted {
                    at: self.now,
                    id,
                    function,
                    node,
                    ready_at,
                });
                self.sink.record(&ObsEvent::CompressionFinished {
                    at: ready_at,
                    id,
                    function,
                    node,
                });
            }
        }
        // A new warm instance enlarges the evictable set, which can turn a
        // previously impossible cold placement possible. Its expiration is
        // tracked by the pool's expiry calendar, not a heap event.
        self.capacity_epoch += 1;
    }

    fn remove_instance(&mut self, id: WarmId, reason: ReleaseReason) {
        if P::ENABLED {
            P::add(PerfCounter::PoolRemove, 1);
        }
        let inst = self.pool.remove(id);
        if S::ENABLED {
            self.sink.record(&ObsEvent::InstanceReleased {
                at: self.now,
                id,
                function: inst.function,
                node: inst.node,
                memory: inst.memory,
                compressed: inst.compressed,
                since: inst.since,
                reason,
            });
        }
        self.mutate_node(inst.node, |n| n.remove_warm(inst.memory));
        self.capacity_epoch += 1;
    }

    /// Drains every due keep-alive expiration that sorts strictly before
    /// `limit` (the next heap event's `(at, class)` key; `None` means the
    /// heap is empty and the calendar drains completely).
    ///
    /// The calendar orders entries by `(expiry, admission seq)`, which is
    /// exactly how the retired per-admission `Expiry` heap events sorted:
    /// at equal timestamps the expiry class (1) runs after ticks (0) and
    /// before completions (2), and two expirations at the same instant
    /// fire in admission order — engine event seqs were assigned in
    /// admission order too. Unlike the heap events, the calendar only ever
    /// holds *live* instances (reuse and eviction remove the entry), so a
    /// boundary drains its whole batch in one pass with no stale
    /// generation-check pops in between.
    fn drain_due_expiries(&mut self, limit: Option<(SimTime, u8)>) {
        // Lazy span: the common case drains nothing, and opening a span
        // per main-loop iteration would swamp the phase table.
        let mut span: Option<Scope<P>> = None;
        while let Some((at, _seq, id)) = self.pool.next_expiry() {
            if let Some(next) = limit {
                if (at, EXPIRY_CLASS) >= next {
                    break;
                }
            }
            if P::ENABLED && span.is_none() {
                span = Some(P::scope(Phase::ExpiryDrain));
            }
            debug_assert!(at >= self.now, "time must not run backwards");
            self.now = at;
            self.remove_instance(id, ReleaseReason::Expired);
            if P::ENABLED {
                P::add(PerfCounter::ExpiryDrained, 1);
            }
        }
    }

    fn handle_prewarm_ready(
        &mut self,
        function: FunctionId,
        node: NodeId,
        keep_alive: SimDuration,
        compress: bool,
        policy: &mut dyn Scheduler,
    ) {
        let memory = self.workload.spec(function).memory;
        self.mutate_node(node, |n| n.finish_execution(memory));
        self.capacity_epoch += 1;
        self.admit_warm(function, node, keep_alive, compress, policy);
        self.drain_pending(policy);
    }

    fn handle_tick(&mut self, policy: &mut dyn Scheduler) {
        // Re-read the horizon every tick: live sources report an open
        // horizon until they close (end of stream or drain), at which
        // point ticks already scheduled beyond it must be dropped — batch
        // never schedules one past its (constant) horizon, so for batch
        // sources neither the re-read nor the guard changes anything.
        let horizon = self.source.horizon();
        if self.now > SimTime::ZERO + horizon {
            return;
        }
        let _span = P::scope(Phase::Tick);
        self.ledger.accrue(self.now);

        // Sample per-interval metrics.
        let spent = self.ledger.spent();
        let delta = spent.as_dollars() - self.last_spent.as_dollars();
        self.spend_per_interval.push(delta);
        self.last_spent = spent;
        self.warm_pool_series.push(self.pool.len() as f64);
        self.compressed_series
            .push(self.pool.compressed_count() as f64);
        let compression_delta = self.compression_events - self.last_compression_events;
        self.compression_events_per_interval
            .push(compression_delta as f64);
        self.last_compression_events = self.compression_events;
        let total_cores: u32 = self.nodes.iter().map(|n| n.cores).sum();
        let busy_cores: u32 = self.nodes.iter().map(|n| n.busy_cores).sum();
        let utilization = busy_cores as f64 / total_cores.max(1) as f64;
        self.utilization_series.push(utilization);
        if S::ENABLED {
            self.sink.record(&ObsEvent::IntervalSampled {
                at: self.now,
                sample: IntervalSample {
                    index: self.spend_per_interval.len() as u64 - 1,
                    spend_delta_dollars: delta,
                    warm_pool: self.pool.len() as u64,
                    compressed: self.pool.compressed_count() as u64,
                    utilization,
                    compression_events_delta: compression_delta,
                    pending: self.pending.len() as u64,
                },
            });
        }

        let commands = {
            let _decision = P::scope(Phase::PolicyDecision);
            let view = self.view();
            let started = Instant::now();
            let commands = policy.on_interval(&view);
            self.decision_time += started.elapsed();
            commands
        };
        if S::ENABLED {
            for round in policy.drain_optimizer_rounds() {
                self.sink.record(&ObsEvent::OptimizerRound {
                    at: self.now,
                    round,
                });
            }
        }
        for command in commands {
            self.execute_command(command, policy);
        }

        let next = self.now + self.config.interval;
        if next <= SimTime::ZERO + horizon {
            self.push(next, EventKind::Tick);
        }
    }

    fn execute_command(&mut self, command: Command, policy: &mut dyn Scheduler) {
        match command {
            Command::Prewarm {
                function,
                arch,
                keep_alive,
                compress,
            } => {
                if self.pool.is_warm(function) {
                    return; // already warm
                }
                let spec = self.workload.spec(function);
                let memory = spec.memory;
                let candidate = self
                    .nodes
                    .iter()
                    .filter(|n| n.arch == arch && n.free_cores() > 0 && n.free_memory() >= memory)
                    .min_by_key(|n| (n.busy_cores, n.id))
                    .map(|n| n.id);
                let Some(node) = candidate else {
                    self.dropped_prewarms += 1;
                    if S::ENABLED {
                        self.sink.record(&ObsEvent::PrewarmDropped {
                            at: self.now,
                            function,
                            arch,
                        });
                    }
                    return;
                };
                self.mutate_node(node, |n| n.start_execution(memory));
                let cold = spec
                    .cold_start(arch)
                    .scale(self.config.runtime.cold_start_scale());
                self.push(
                    self.now + cold,
                    EventKind::PrewarmReady {
                        function,
                        node,
                        keep_alive,
                        compress,
                    },
                );
            }
            Command::Evict { id } => {
                if let Some(inst) = self.pool.get(id) {
                    let refund = inst.refundable_at(self.now);
                    self.credit(refund);
                    self.remove_instance(id, ReleaseReason::Evicted);
                    self.evictions += 1;
                }
                let _ = policy;
            }
        }
    }

    fn drain_pending(&mut self, policy: &mut dyn Scheduler) {
        // Lazy span: most completions find nothing queued.
        let _span = if P::ENABLED && !self.pending.is_empty() {
            Some(P::scope(Phase::PendingDrain))
        } else {
            None
        };
        while let Some(&(index, inv)) = self.pending.front() {
            // The placement attempt is a pure function of cluster capacity
            // (for a fixed head-of-line invocation): if this exact entry
            // already failed at the current capacity epoch, retrying would
            // burn the same candidate/placement walk to the same answer.
            if self.last_retry_failure == Some((index, self.capacity_epoch)) {
                break;
            }
            if self.try_start(inv, policy) {
                self.pending.pop_front();
                self.last_retry_failure = None;
            } else {
                self.last_retry_failure = Some((index, self.capacity_epoch));
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FixedKeepAlive;
    use cc_compress::CompressionModel;
    use cc_trace::SyntheticTrace;
    use cc_workload::Catalog;

    fn setup(functions: usize, minutes: u64, seed: u64) -> (Trace, Workload) {
        let trace = SyntheticTrace::builder()
            .functions(functions)
            .duration(SimDuration::from_mins(minutes))
            .seed(seed)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        (trace, workload)
    }

    #[test]
    fn every_invocation_completes() {
        let (trace, workload) = setup(30, 120, 1);
        let mut policy = FixedKeepAlive::ten_minutes();
        let report =
            Simulation::new(ClusterConfig::small(2, 2), &trace, &workload).run(&mut policy);
        assert_eq!(report.records.len(), trace.invocations().len());
        assert_eq!(
            report.stats.invocations() as usize,
            trace.invocations().len()
        );
    }

    #[test]
    fn interval_series_cover_the_horizon_inclusively() {
        // Ticks are scheduled while `next <= ZERO + horizon`, so a run over
        // H = k·interval samples k + 1 intervals (indices 0..=k) — the
        // final tick fires at the horizon itself. Downstream bucketing
        // (`TimeSeries`) stamps a horizon-aligned record into bucket k,
        // the same index, so the report's interval count and a series
        // built from its events can never disagree by a phantom bucket.
        let minutes = 45u64;
        let (trace, workload) = setup(15, minutes, 9);
        let config = ClusterConfig::small(2, 2);
        let intervals = trace.duration().as_micros() / config.interval.as_micros() + 1;
        let mut policy = FixedKeepAlive::ten_minutes();
        let report = Simulation::new(config, &trace, &workload).run(&mut policy);
        assert_eq!(report.spend_per_interval.len() as u64, intervals);
        assert_eq!(report.warm_pool_series.len() as u64, intervals);
        assert_eq!(report.utilization_series.len() as u64, intervals);
        assert_eq!(
            report.compression_events_per_interval.len() as u64,
            intervals
        );
    }

    #[test]
    fn determinism() {
        let (trace, workload) = setup(20, 60, 2);
        let run = || {
            let mut policy = FixedKeepAlive::ten_minutes();
            Simulation::new(ClusterConfig::small(2, 2), &trace, &workload).run(&mut policy)
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.keep_alive_spend, b.keep_alive_spend);
    }

    #[test]
    fn keep_alive_produces_warm_starts() {
        let (trace, workload) = setup(10, 120, 3);
        let mut with_ka = FixedKeepAlive::new(SimDuration::from_mins(30), false);
        let mut without_ka = FixedKeepAlive::new(SimDuration::ZERO, false);
        let config = ClusterConfig::small(2, 2);
        let warm = Simulation::new(config.clone(), &trace, &workload).run(&mut with_ka);
        let cold = Simulation::new(config, &trace, &workload).run(&mut without_ka);
        assert!(
            warm.warm_fraction() > 0.3,
            "warm fraction {}",
            warm.warm_fraction()
        );
        assert_eq!(cold.warm_fraction(), 0.0);
        assert!(warm.mean_service_time_secs() < cold.mean_service_time_secs());
        assert_eq!(cold.keep_alive_spend, Cost::ZERO);
        assert!(warm.keep_alive_spend > Cost::ZERO);
    }

    #[test]
    fn compression_shrinks_warm_memory_per_instance() {
        let (trace, workload) = setup(10, 60, 4);
        let config = ClusterConfig::small(2, 2);
        let mut raw = FixedKeepAlive::new(SimDuration::from_mins(10), false);
        let mut compressed = FixedKeepAlive::new(SimDuration::from_mins(10), true);
        let r1 = Simulation::new(config.clone(), &trace, &workload).run(&mut raw);
        let r2 = Simulation::new(config, &trace, &workload).run(&mut compressed);
        assert_eq!(r1.compression_events, 0);
        assert!(r2.compression_events > 0);
        // Same keep-alive windows but smaller footprints ⇒ cheaper.
        assert!(r2.keep_alive_spend < r1.keep_alive_spend);
    }

    #[test]
    fn budget_caps_spend() {
        let (trace, workload) = setup(20, 60, 5);
        let budget = Cost::from_dollars(1e-6);
        let config = ClusterConfig::small(2, 2).with_budget(budget);
        let mut policy = FixedKeepAlive::new(SimDuration::from_mins(60), false);
        let report = Simulation::new(config, &trace, &workload).run(&mut policy);
        // Total spend cannot exceed accrued credit through the last ledger
        // touch (completions drain past the final arrival).
        let last_touch = report
            .records
            .iter()
            .map(|r| r.completion().as_micros())
            .max()
            .unwrap_or(0)
            .max(trace.duration().as_micros());
        let intervals = last_touch / SimDuration::from_mins(1).as_micros() + 1;
        assert!(report.keep_alive_spend <= budget * intervals);
    }

    #[test]
    fn zero_budget_means_no_warm_starts() {
        let (trace, workload) = setup(15, 60, 6);
        let config = ClusterConfig::small(2, 2).with_budget(Cost::ZERO);
        let mut policy = FixedKeepAlive::ten_minutes();
        let report = Simulation::new(config, &trace, &workload).run(&mut policy);
        assert_eq!(report.warm_fraction(), 0.0);
        assert_eq!(report.keep_alive_spend, Cost::ZERO);
    }

    #[test]
    fn service_time_includes_execution_at_least() {
        let (trace, workload) = setup(15, 60, 7);
        let mut policy = FixedKeepAlive::ten_minutes();
        let report =
            Simulation::new(ClusterConfig::small(2, 2), &trace, &workload).run(&mut policy);
        for rec in &report.records {
            let spec = workload.spec(rec.function);
            assert!(rec.execution >= spec.exec_time(rec.arch).scale(0.99));
            assert!(rec.service_time() >= rec.execution);
        }
    }

    #[test]
    fn tiny_cluster_queues_but_finishes() {
        // One single-core node forces queueing.
        let (trace, workload) = setup(20, 30, 8);
        let mut config = ClusterConfig::small(1, 0);
        config.cores_per_node = 1;
        let mut policy = FixedKeepAlive::ten_minutes();
        let report = Simulation::new(config, &trace, &workload).run(&mut policy);
        assert_eq!(report.records.len(), trace.invocations().len());
        let waited = report.records.iter().filter(|r| !r.wait.is_zero()).count();
        assert!(waited > 0, "expected queueing on a 1-core cluster");
    }

    #[test]
    fn input_change_perturbation_scales_execution() {
        let (trace, workload) = setup(10, 60, 9);
        let config = ClusterConfig::small(2, 2);
        let mut p1 = FixedKeepAlive::ten_minutes();
        let mut p2 = FixedKeepAlive::ten_minutes();
        let base = Simulation::new(config.clone(), &trace, &workload).run(&mut p1);
        let shifted = Simulation::new(config, &trace, &workload)
            .with_perturbations(vec![Perturbation::InputChange {
                at: SimTime::ZERO,
                factor: 2.0,
            }])
            .run(&mut p2);
        let base_exec: f64 = base.records.iter().map(|r| r.execution.as_secs_f64()).sum();
        let shifted_exec: f64 = shifted
            .records
            .iter()
            .map(|r| r.execution.as_secs_f64())
            .sum();
        assert!(
            (shifted_exec / base_exec - 2.0).abs() < 0.2,
            "execution should roughly double, ratio {}",
            shifted_exec / base_exec
        );
    }

    #[test]
    fn warm_memory_cap_limits_pool() {
        let (trace, workload) = setup(40, 60, 10);
        let capped = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.1);
        let uncapped = ClusterConfig::small(2, 2);
        let mut p1 = FixedKeepAlive::ten_minutes();
        let mut p2 = FixedKeepAlive::ten_minutes();
        let r_capped = Simulation::new(capped.clone(), &trace, &workload).run(&mut p1);
        let r_uncapped = Simulation::new(uncapped, &trace, &workload).run(&mut p2);
        assert!(r_capped.warm_fraction() <= r_uncapped.warm_fraction() + 1e-9);
        // The cap itself is respected at every sampled tick: warm memory
        // cannot exceed cap × nodes.
        let cap_total = capped.warm_memory_cap().as_mb() as f64 * 4.0;
        let max_warm_mem: f64 = r_capped
            .warm_pool_series
            .iter()
            .copied()
            .fold(0.0, f64::max);
        // Series counts instances, so translate via the smallest footprint.
        assert!(max_warm_mem * 64.0 <= cap_total * 10.0, "sanity bound");
    }
}
