//! The intra-run parallel engine: one simulation, many cores, identical
//! bytes.
//!
//! The discrete-event engine has zero-latency global coupling — every
//! arrival can consult (and mutate) any node in the cluster — so the
//! decision loop itself cannot be partitioned across threads without
//! changing results. What *can* leave the decision thread is everything
//! around it, and in instrumented runs that is the bulk of the wall
//! clock:
//!
//! * **Arrival generation** — a feeder thread pulls the
//!   [`ArrivalSource`] (a synthetic generator, a parsed trace, a
//!   streaming million-function workload) ahead of the engine and ships
//!   invocation chunks over a bounded channel, so trace generation
//!   overlaps simulation and the full invocation stream never
//!   materializes in memory.
//! * **Event encoding** — the engine records into a
//!   [`BatchSink`](cc_obs::BatchSink), which flushes window-aligned,
//!   index-tagged event batches. A pool of encoder workers races to
//!   format batches into JSONL bytes; [`cc_shard::mux_chunks`] writes the
//!   finished chunks strictly in batch-index order.
//! * **Telemetry folding** — a dedicated thread folds batches (which a
//!   single-producer channel delivers already in index order) into a
//!   [`Telemetry`] aggregate.
//!
//! Determinism is by construction, not by tuning: the decision core runs
//! the exact serial event loop, batch indices are assigned in emission
//! order, the chunk mux writes in index order, and the telemetry thread
//! consumes in index order. Therefore the [`SimReport`] (and its digest),
//! the JSONL bytes, and the telemetry digest are identical to a serial
//! run at *every* worker count and *every* window length — the window
//! only sets flush cadence. The parity tests pin exactly this.

use std::io::{self, Write};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cc_obs::{event_line, BatchSink, EventBatch, EventSink, Telemetry};
use cc_prof::{NullProfiler, PerfCounter, Phase, Profiler};
use cc_shard::mux_chunks;
use cc_types::{Invocation, SimDuration};
use cc_workload::Workload;

use crate::config::ClusterConfig;
use crate::engine::run_streaming_profiled;
use crate::report::SimReport;
use crate::scheduler::Scheduler;
use crate::source::ArrivalSource;

/// Tuning for [`run_parallel`]. None of these affect results — only
/// throughput, latency, and memory.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// JSONL encoder worker threads (ignored when no JSONL output is
    /// requested). Clamped to at least 1.
    pub workers: usize,
    /// Simulated-time window bounding batch flush cadence. Each crossing
    /// of a window boundary flushes the buffered events.
    pub window: SimDuration,
    /// Size cap per batch: a batch also flushes when it holds this many
    /// events, bounding memory for hot windows.
    pub batch_events: usize,
    /// Bounded-channel depth (in batches / chunks) between pipeline
    /// stages; backpressure caps how far any stage runs ahead.
    pub queue_depth: usize,
    /// Invocations per feeder chunk.
    pub arrival_chunk: usize,
    /// Forwarded to the engine: keep per-invocation [`ServiceRecord`]s
    /// (needed for the report digest; disable for constant-memory runs).
    ///
    /// [`ServiceRecord`]: cc_types::ServiceRecord
    pub collect_records: bool,
}

impl Default for ParallelOptions {
    fn default() -> ParallelOptions {
        ParallelOptions {
            workers: 2,
            window: SimDuration::from_mins(1),
            batch_events: 4096,
            queue_depth: 8,
            arrival_chunk: 4096,
            collect_records: true,
        }
    }
}

impl ParallelOptions {
    /// Returns a copy with a different encoder worker count.
    pub fn with_workers(mut self, workers: usize) -> ParallelOptions {
        self.workers = workers;
        self
    }

    /// Returns a copy with a different flush window.
    pub fn with_window(mut self, window: SimDuration) -> ParallelOptions {
        self.window = window;
        self
    }

    /// Returns a copy that skips per-invocation record collection.
    pub fn without_records(mut self) -> ParallelOptions {
        self.collect_records = false;
        self
    }
}

/// Everything a parallel run produces.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// The decision core's report — identical to a serial run's.
    pub report: SimReport,
    /// Telemetry folded from the event stream in emission order —
    /// digest-identical to a serial [`Telemetry`] sink.
    pub telemetry: Telemetry,
    /// Batches the sink flushed.
    pub batches: u64,
    /// Events that flowed through the pipeline.
    pub events: u64,
    /// JSONL chunks written (0 when no JSONL output was requested;
    /// otherwise equals `batches` unless an encoder died).
    pub chunks_written: u64,
}

/// Bounded-channel send with its blocking time accumulated onto
/// [`PerfCounter::ChannelSendBlockNs`] when `P` is enabled (backpressure
/// attribution); a plain send otherwise.
fn timed_send<T, P: Profiler>(
    tx: &std::sync::mpsc::SyncSender<T>,
    value: T,
) -> Result<(), std::sync::mpsc::SendError<T>> {
    if P::ENABLED {
        let started = Instant::now();
        let result = tx.send(value);
        P::add(
            PerfCounter::ChannelSendBlockNs,
            started.elapsed().as_nanos() as u64,
        );
        result
    } else {
        tx.send(value)
    }
}

/// [`ArrivalSource`] fed by a prefetch thread over a bounded channel.
struct ChunkedSource {
    rx: Receiver<Vec<Invocation>>,
    current: std::vec::IntoIter<Invocation>,
    horizon: SimDuration,
    len_hint: usize,
}

impl ArrivalSource for ChunkedSource {
    fn next_invocation(&mut self) -> Option<Invocation> {
        loop {
            if let Some(inv) = self.current.next() {
                return Some(inv);
            }
            match self.rx.recv() {
                Ok(chunk) => self.current = chunk.into_iter(),
                Err(_) => return None,
            }
        }
    }

    fn horizon(&self) -> SimDuration {
        self.horizon
    }

    fn len_hint(&self) -> usize {
        self.len_hint
    }
}

/// Runs one simulation with the instrumentation pipeline spread across
/// threads: feeder + decision core + `workers` JSONL encoders + ordered
/// writer + telemetry folder.
///
/// When `jsonl` is `Some`, the returned writer carries the encoded event
/// stream — byte-identical to a serial [`JsonlSink`](cc_obs::JsonlSink)
/// run. When `None`, no encoder threads are spawned and only telemetry is
/// folded.
///
/// Results are independent of `options.workers` and `options.window`; see
/// the module docs for why.
pub fn run_parallel<Src, W>(
    config: &ClusterConfig,
    source: Src,
    workload: &Workload,
    policy: &mut dyn Scheduler,
    jsonl: Option<W>,
    options: &ParallelOptions,
) -> io::Result<(ParallelOutcome, Option<W>)>
where
    Src: ArrivalSource + Send,
    W: Write + Send,
{
    run_parallel_profiled::<Src, W, NullProfiler>(config, source, workload, policy, jsonl, options)
}

/// [`run_parallel`] with a [`cc_prof::Profiler`] observing every pipeline
/// thread: the decision core's engine phases plus feeder, encoder,
/// telemetry-folder, and mux spans (with channel send/recv blocking-time
/// counters). [`NullProfiler`] (what [`run_parallel`] uses) compiles every
/// probe away; results are bit-identical regardless of profiler.
pub fn run_parallel_profiled<Src, W, P>(
    config: &ClusterConfig,
    source: Src,
    workload: &Workload,
    policy: &mut dyn Scheduler,
    jsonl: Option<W>,
    options: &ParallelOptions,
) -> io::Result<(ParallelOutcome, Option<W>)>
where
    Src: ArrivalSource + Send,
    W: Write + Send,
    P: Profiler,
{
    let workers = options.workers.max(1);
    let queue_depth = options.queue_depth.max(1);
    let arrival_chunk = options.arrival_chunk.max(1);
    let window = if options.window > SimDuration::ZERO {
        options.window
    } else {
        config.interval
    };
    let horizon = source.horizon();
    let len_hint = source.len_hint();
    let interval = config.interval;

    std::thread::scope(|scope| {
        // Stage 1: the feeder pre-generates arrivals ahead of the engine.
        let (chunk_tx, chunk_rx) = sync_channel::<Vec<Invocation>>(queue_depth);
        let mut source = source;
        scope.spawn(move || {
            if P::ENABLED {
                P::thread_label("feeder");
            }
            {
                // One span for the whole feed: blocked-send time (engine
                // backpressure) is deliberately inside it.
                let _span = P::scope(Phase::Feeder);
                let mut chunk = Vec::with_capacity(arrival_chunk);
                while let Some(inv) = source.next_invocation() {
                    chunk.push(inv);
                    if chunk.len() >= arrival_chunk {
                        let full = std::mem::replace(&mut chunk, Vec::with_capacity(arrival_chunk));
                        if timed_send::<_, P>(&chunk_tx, full).is_err() {
                            // Engine hung up (panic unwind) — stop feeding.
                            break;
                        }
                    }
                }
                if !chunk.is_empty() {
                    let _ = timed_send::<_, P>(&chunk_tx, chunk);
                }
            }
            if P::ENABLED {
                // A scope join can resume the parent before this thread's
                // TLS destructors merge; flush explicitly.
                cc_prof::flush_thread();
            }
        });
        let chunked = ChunkedSource {
            rx: chunk_rx,
            current: Vec::new().into_iter(),
            horizon,
            len_hint,
        };

        // Stage 3a: the telemetry folder. Its single-producer channel
        // delivers batches in index order, so folding order equals the
        // serial emission order (P² quantiles are order-sensitive).
        let (tel_tx, tel_rx) = sync_channel::<EventBatch>(queue_depth);
        let telemetry_handle = scope.spawn(move || {
            if P::ENABLED {
                P::thread_label("telemetry");
            }
            let result = {
                // One span per run: time blocked waiting on batches is
                // part of this thread's story, not noise.
                let _span = P::scope(Phase::TelemetryFold);
                let mut telemetry = Telemetry::new(interval);
                let mut events = 0u64;
                for batch in tel_rx {
                    for event in batch.events.iter() {
                        telemetry.record(event);
                    }
                    events += batch.events.len() as u64;
                }
                (telemetry, events)
            };
            if P::ENABLED {
                cc_prof::flush_thread();
            }
            result
        });

        // Stage 3b: encoder pool + ordered writer, only when JSONL output
        // is wanted.
        let mut subscribers = vec![tel_tx];
        let writer_handle = jsonl.map(|out| {
            let (enc_tx, enc_rx) = sync_channel::<EventBatch>(queue_depth);
            subscribers.push(enc_tx);
            // Workers take turns receiving (the mutex is held only while
            // waiting for one batch); encoding runs outside the lock, so
            // with ragged batch sizes the pool load-balances itself.
            let shared = Arc::new(Mutex::new(enc_rx));
            let (bytes_tx, bytes_rx) = sync_channel::<(u64, Vec<u8>)>(queue_depth * workers);
            for _ in 0..workers {
                let shared = Arc::clone(&shared);
                let bytes_tx = bytes_tx.clone();
                scope.spawn(move || {
                    if P::ENABLED {
                        P::thread_label("encoder");
                    }
                    loop {
                        let recv_started = P::ENABLED.then(Instant::now);
                        let received = {
                            let rx = shared.lock().expect("encoder receiver poisoned");
                            rx.recv()
                        };
                        if let Some(started) = recv_started {
                            P::add(
                                PerfCounter::ChannelRecvBlockNs,
                                started.elapsed().as_nanos() as u64,
                            );
                        }
                        let Ok(batch) = received else {
                            break;
                        };
                        let _span = P::scope(Phase::Encode);
                        let mut buf = String::with_capacity(batch.events.len() * 64);
                        for event in batch.events.iter() {
                            buf.push_str(&event_line(event));
                            buf.push('\n');
                        }
                        if timed_send::<_, P>(&bytes_tx, (batch.index, buf.into_bytes())).is_err() {
                            break;
                        }
                    }
                    if P::ENABLED {
                        cc_prof::flush_thread();
                    }
                });
            }
            drop(bytes_tx);
            scope.spawn(move || {
                if P::ENABLED {
                    P::thread_label("mux");
                }
                let result = {
                    let _span = P::scope(Phase::MuxWrite);
                    mux_chunks(bytes_rx, out)
                };
                if P::ENABLED {
                    if let Ok((_, written)) = &result {
                        P::add(PerfCounter::ChunksWritten, *written);
                    }
                    cc_prof::flush_thread();
                }
                result
            })
        });

        // Stage 2: the decision core — the exact serial loop, on this
        // thread, recording into the batching sink.
        let mut sink = BatchSink::new(window, options.batch_events.max(1), subscribers);
        if P::ENABLED {
            P::thread_label("decision");
        }
        let report = run_streaming_profiled::<_, _, P>(
            config,
            chunked,
            workload,
            policy,
            &mut sink,
            options.collect_records,
        );
        let (batches, _failures) = sink.finish();

        // Hang-ups cascade: `sink` dropped its senders, so the telemetry
        // folder and encoders drain and exit, then the writer's channel
        // closes and the mux returns.
        let (telemetry, events) = telemetry_handle.join().expect("telemetry thread panicked");
        let (out, chunks_written) = match writer_handle {
            Some(handle) => {
                let (out, written) = handle.join().expect("writer thread panicked")?;
                (Some(out), written)
            }
            None => (None, 0),
        };

        Ok((
            ParallelOutcome {
                report,
                telemetry,
                batches,
                events,
                chunks_written,
            },
            out,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_streaming;
    use crate::source::SliceSource;
    use crate::{FixedKeepAlive, Simulation};
    use crate::{JsonlSink, Tee};
    use cc_compress::CompressionModel;
    use cc_trace::SyntheticTrace;
    use cc_workload::Catalog;

    fn scenario() -> (cc_trace::Trace, Workload, ClusterConfig) {
        let trace = SyntheticTrace::builder()
            .functions(40)
            .duration(SimDuration::from_mins(45))
            .seed(77)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.4);
        (trace, workload, config)
    }

    #[test]
    fn parallel_matches_serial_report_jsonl_and_telemetry() {
        let (trace, workload, config) = scenario();

        // Serial reference: report + JSONL bytes + telemetry digest.
        let mut policy = FixedKeepAlive::ten_minutes();
        let mut tee = Tee(JsonlSink::new(Vec::new()), Telemetry::new(config.interval));
        let serial =
            Simulation::new(config.clone(), &trace, &workload).run_with_sink(&mut policy, &mut tee);
        let serial_bytes = tee.0.finish().expect("flush");
        let serial_tel = tee.1.digest();

        for workers in [1usize, 2, 3, 4, 8] {
            let mut policy = FixedKeepAlive::ten_minutes();
            let options = ParallelOptions::default()
                .with_workers(workers)
                .with_window(SimDuration::from_secs(30));
            let (outcome, bytes) = run_parallel(
                &config,
                SliceSource::from_trace(&trace),
                &workload,
                &mut policy,
                Some(Vec::new()),
                &options,
            )
            .expect("pipeline io");
            assert_eq!(
                outcome.report.digest(),
                serial.digest(),
                "report digest diverged at {workers} workers"
            );
            assert_eq!(
                outcome.telemetry.digest(),
                serial_tel,
                "telemetry digest diverged at {workers} workers"
            );
            assert_eq!(
                bytes.expect("jsonl requested"),
                serial_bytes,
                "JSONL bytes diverged at {workers} workers"
            );
            assert_eq!(outcome.batches, outcome.chunks_written);
        }
    }

    #[test]
    fn window_length_does_not_change_results() {
        let (trace, workload, config) = scenario();
        let mut reference = None;
        for window_secs in [1u64, 7, 60, 600] {
            let mut policy = FixedKeepAlive::ten_minutes();
            let options =
                ParallelOptions::default().with_window(SimDuration::from_secs(window_secs));
            let (outcome, bytes) = run_parallel(
                &config,
                SliceSource::from_trace(&trace),
                &workload,
                &mut policy,
                Some(Vec::new()),
                &options,
            )
            .expect("pipeline io");
            let key = (
                outcome.report.digest(),
                outcome.telemetry.digest(),
                bytes.expect("jsonl requested"),
            );
            match &reference {
                None => reference = Some(key),
                Some(expected) => assert_eq!(*expected, key, "window {window_secs}s diverged"),
            }
        }
    }

    #[test]
    fn streaming_source_parity_serial_vs_parallel() {
        // A constant-memory StreamingTrace through the full pipeline must
        // match a serial run over an identically-seeded stream.
        let build = || {
            cc_trace::StreamingTrace::builder()
                .functions(60)
                .duration(SimDuration::from_mins(120))
                .seed(2024)
                .mean_gap_median(SimDuration::from_mins(8))
                .build()
        };
        let stream = build();
        let workload = Workload::from_functions(
            stream.functions(),
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.4);

        let mut policy = FixedKeepAlive::ten_minutes();
        let mut tee = Tee(JsonlSink::new(Vec::new()), Telemetry::new(config.interval));
        let serial = run_streaming(&config, stream, &workload, &mut policy, &mut tee, true);
        let serial_bytes = tee.0.finish().expect("flush");
        let serial_tel = tee.1.digest();
        assert!(serial.stats.invocations() > 0);

        for workers in [1usize, 3] {
            let mut policy = FixedKeepAlive::ten_minutes();
            let options = ParallelOptions::default().with_workers(workers);
            let (outcome, bytes) = run_parallel(
                &config,
                build(),
                &workload,
                &mut policy,
                Some(Vec::new()),
                &options,
            )
            .expect("pipeline io");
            assert_eq!(outcome.report.digest(), serial.digest());
            assert_eq!(outcome.telemetry.digest(), serial_tel);
            assert_eq!(bytes.expect("jsonl requested"), serial_bytes);
        }
    }

    #[test]
    fn telemetry_only_pipeline_skips_encoders() {
        let (trace, workload, config) = scenario();
        let mut policy = FixedKeepAlive::ten_minutes();
        let (outcome, bytes) = run_parallel::<_, Vec<u8>>(
            &config,
            SliceSource::from_trace(&trace),
            &workload,
            &mut policy,
            None,
            &ParallelOptions::default(),
        )
        .expect("pipeline io");
        assert!(bytes.is_none());
        assert_eq!(outcome.chunks_written, 0);
        assert!(outcome.events > 0);
    }
}
