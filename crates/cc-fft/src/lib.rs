//! A from-scratch radix-2 FFT and the spectral analysis the IceBreaker
//! baseline uses to predict function invocation periodicity.
//!
//! IceBreaker (Roy et al., ASPLOS '22) learns each function's invocation
//! period with a Fourier transform over its per-minute invocation counts
//! and pre-warms the function just before the next predicted invocation.
//! This crate supplies that dependency: a [`Complex`] type, an in-place
//! iterative Cooley–Tukey [`fft`]/[`ifft`] pair, a [`periodogram`], and
//! [`dominant_period`] extraction.
//!
//! # Example
//!
//! ```
//! use cc_fft::dominant_period;
//!
//! // A clean periodic signal: spikes every 8 minutes.
//! let signal: Vec<f64> = (0..64).map(|i| if i % 8 == 0 { 1.0 } else { 0.0 }).collect();
//! assert_eq!(dominant_period(&signal), Some(8.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod spectrum;
mod transform;

pub use complex::Complex;
pub use spectrum::{dominant_period, periodogram};
pub use transform::{dft_naive, fft, ifft};
