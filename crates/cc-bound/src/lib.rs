//! Hindsight-optimal cost estimators for recorded CodeCrunch runs.
//!
//! Every policy PR so far measured policy-vs-policy deltas; this crate
//! supplies the missing fixed reference: the *hindsight-optimal*
//! keep-alive/placement cost of a recorded trace, so every run can report
//! its gap to optimal instead of its gap to another heuristic.
//!
//! Three estimators bracket the optimum of the relaxed offline problem
//! (see `DESIGN.md` §15 for the formulation and exactly what each bound
//! does and does not capture):
//!
//! * [`dp_lower_bound`] — an exact per-function interval dynamic program
//!   over the four hindsight actions available between consecutive
//!   invocations (keep warm, keep compressed, drop + cold restart,
//!   drop + just-in-time pre-warm), including the compressed-warm third
//!   state with its decompression penalty and compression-ready timing.
//!   Exact for the capacity-relaxed problem; a true lower bound on any
//!   engine run's [measured cost](measured_cost_of_report).
//! * [`segment_lower_bound`] — the same DP run on time segments with free
//!   entry states: provably ≤ the DP optimum, robust to capacity
//!   coupling arguments, and evaluable with bounded memory per segment.
//! * [`local_search_upper_bound`] — a feasible plan seeded from the
//!   recorded schedule and improved by per-gap coordinate descent: an
//!   upper bound on the optimum that also certifies how much of a
//!   policy's gap is real slack rather than relaxation looseness.
//!
//! [`exhaustive_reference`] enumerates every per-function plan on tiny
//! inputs and pins the DP exactly (they must agree to the unit).
//!
//! Costs are exact integers in *nano-units*: one microsecond of added
//! latency (wait + start penalty) counts `1000`, and one picodollar of
//! keep-alive spend counts [`HindsightInput::lambda_nanos`] (default 1,
//! i.e. λ = 1000 latency-seconds per dollar). Input construction rejects
//! λ values large enough to break the lower-bound argument (see
//! [`HindsightInput::with_lambda`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimators;
mod gap;
mod input;
mod measured;
mod model;

pub use estimators::{
    dp_lower_bound, exhaustive_reference, local_search_upper_bound, segment_lower_bound,
};
pub use gap::{GapReport, PolicyGap};
pub use input::{FnCase, HindsightInput, LATENCY_NANOS_PER_MICRO};
pub use measured::{measured_cost_of_records, measured_cost_of_report};
pub use model::{GapChoice, InitChoice, NanoCost};
