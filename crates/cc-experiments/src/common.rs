//! Shared scenario construction and reporting helpers.
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use serde_json::Value;

use cc_compress::CompressionModel;
use cc_policies::SitW;
use cc_sim::{ClusterConfig, JsonlSink, Scheduler, SimReport, Simulation, Tee, Telemetry};
use cc_trace::{SyntheticTrace, Trace};
use cc_types::{Cost, SimDuration};
use cc_workload::{Catalog, Workload};

/// Size of an experiment run.
///
/// The default scale deliberately over-subscribes the cluster's memory
/// (total warm footprint of all functions ≫ cluster memory), reproducing
/// the production regime in which the Azure trace's 200k functions share
/// 31 nodes. The smoke scale exists for tests and CI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// Unique functions in the trace.
    pub functions: usize,
    /// Trace length in minutes.
    pub minutes: u64,
    /// x86 worker nodes.
    pub x86_nodes: u32,
    /// ARM worker nodes.
    pub arm_nodes: u32,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny scale for unit tests (seconds to run).
    pub fn smoke() -> Scale {
        Scale {
            functions: 60,
            minutes: 90,
            x86_nodes: 1,
            arm_nodes: 2,
            seed: 7,
        }
    }

    /// The default experiment scale (a scaled-down Azure day: memory
    /// pressure comparable to the paper's setup, cores sized so queueing
    /// appears only during the load peaks).
    pub fn standard() -> Scale {
        Scale {
            functions: 600,
            minutes: 480,
            x86_nodes: 6,
            arm_nodes: 7,
            seed: 7,
        }
    }

    /// A larger overnight scale (a two-day, 2000-function slice closer to
    /// the paper's regime; the full suite takes tens of minutes).
    pub fn large() -> Scale {
        Scale {
            functions: 2000,
            minutes: 2 * 24 * 60,
            x86_nodes: 13,
            arm_nodes: 18,
            seed: 7,
        }
    }

    /// The synthetic trace for this scale (with the default load peaks).
    pub fn trace(&self) -> Trace {
        SyntheticTrace::builder()
            .functions(self.functions)
            .duration(SimDuration::from_mins(self.minutes))
            .seed(self.seed)
            .build()
    }

    /// Resolves the trace against the paper catalog.
    pub fn workload(&self, trace: &Trace) -> Workload {
        Workload::from_trace(
            trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        )
    }

    /// The cluster for this scale (paper node shapes, unlimited budget).
    ///
    /// The warm pool is capped at 20% of node memory so the total warm
    /// demand of the function population exceeds what fits — the
    /// production memory-pressure regime in which the paper's compression
    /// and budget mechanisms have something to do. Cores stay plentiful so
    /// queueing appears only at load peaks.
    pub fn cluster(&self) -> ClusterConfig {
        ClusterConfig::small(self.x86_nodes, self.arm_nodes).with_warm_memory_fraction(0.20)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::standard()
    }
}

/// Measures SitW's natural keep-alive spend on `(trace, workload)` under
/// `config` and converts it into a per-interval budget — the paper's
/// normalization ("CodeCrunch's total keep-alive budget is the same as the
/// total keep-alive cost expenditure of SitW").
pub fn sitw_budget_per_interval(
    trace: &Trace,
    workload: &Workload,
    config: &ClusterConfig,
) -> Cost {
    let mut probe = SitW::new();
    let natural = Simulation::new(config.clone(), trace, workload).run(&mut probe);
    let intervals = (trace.duration().as_micros() / config.interval.as_micros()).max(1);
    natural.keep_alive_spend.scale(1.0 / intervals as f64)
}

static TELEMETRY_DIR: OnceLock<PathBuf> = OnceLock::new();
static TELEMETRY_SEQ: AtomicU64 = AtomicU64::new(0);

/// Opt in to telemetry capture: every subsequent [`run_policy`] call also
/// streams its JSONL event log (plus a final snapshot line) into `dir`,
/// one `runNNNN-<policy>.jsonl` file per simulation. Figure runs stay on
/// the uninstrumented fast path unless this is called (the `expr` binary
/// exposes it as `--telemetry DIR`).
pub fn enable_telemetry(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let _ = TELEMETRY_DIR.set(dir.to_path_buf());
    Ok(())
}

/// Runs one policy and returns its report.
pub fn run_policy(
    policy: &mut dyn Scheduler,
    config: &ClusterConfig,
    trace: &Trace,
    workload: &Workload,
) -> SimReport {
    let sim = Simulation::new(config.clone(), trace, workload);
    let Some(dir) = TELEMETRY_DIR.get() else {
        return sim.run(policy);
    };
    let seq = TELEMETRY_SEQ.fetch_add(1, Ordering::Relaxed);
    let name: String = policy
        .name()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("run{seq:04}-{name}.jsonl"));
    let file = match File::create(&path) {
        Ok(file) => file,
        Err(e) => {
            eprintln!(
                "telemetry: cannot create {}: {e}; running uninstrumented",
                path.display()
            );
            return sim.run(policy);
        }
    };
    let mut sink = Tee(
        Telemetry::new(config.interval),
        JsonlSink::new(BufWriter::new(file)),
    );
    let report = sim.run_with_sink(policy, &mut sink);
    let Tee(telemetry, mut jsonl) = sink;
    jsonl.write_line(&telemetry.snapshot_line());
    if let Err(e) = jsonl.finish().and_then(|mut w| w.flush()) {
        eprintln!("telemetry: error writing {}: {e}", path.display());
    }
    report
}

/// The output of one experiment: human-readable lines plus the raw data
/// (the "rows/series the paper reports") as JSON.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id.
    pub id: String,
    /// Human-readable report lines.
    pub lines: Vec<String>,
    /// Raw series/rows.
    pub data: Value,
}

impl ExperimentOutput {
    /// Creates an output bundle.
    pub fn new(id: &str, lines: Vec<String>, data: Value) -> ExperimentOutput {
        ExperimentOutput {
            id: id.to_owned(),
            lines,
            data,
        }
    }

    /// Prints the human-readable lines to stdout.
    pub fn print(&self) {
        println!("== {} ==", self.id);
        for line in &self.lines {
            println!("{line}");
        }
        println!();
    }
}

impl serde_json::ToJson for ExperimentOutput {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "id": self.id.as_str(),
            "lines": self.lines.clone(),
            "data": self.data.clone(),
        })
    }
}

/// Formats a compact numeric series for terminal output.
pub fn fmt_series(values: &[f64], precision: usize) -> String {
    let rendered: Vec<String> = values.iter().map(|v| format!("{v:.precision$}")).collect();
    rendered.join(", ")
}

/// Renders a numeric series as a unicode sparkline, scaled to the series'
/// own min-max range. Empty input yields an empty string; a constant
/// series renders at the lowest level; non-finite values render as a dot.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return values.iter().map(|_| '.').collect();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '.';
            }
            let level = if span <= 0.0 {
                0
            } else {
                (((v - min) / span) * 7.0).round() as usize
            };
            BARS[level.min(7)]
        })
        .collect()
}

/// Downsamples a series by averaging consecutive chunks of `factor`.
pub fn downsample(values: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return values.to_vec();
    }
    values
        .chunks(factor)
        .map(|chunk| chunk.iter().sum::<f64>() / chunk.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_builds_consistent_pieces() {
        let scale = Scale::smoke();
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        assert_eq!(trace.functions().len(), scale.functions);
        assert_eq!(workload.len(), scale.functions);
        scale.cluster().validate();
    }

    #[test]
    fn sitw_budget_is_positive() {
        let scale = Scale::smoke();
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let budget = sitw_budget_per_interval(&trace, &workload, &scale.cluster());
        assert!(budget > Cost::ZERO);
    }

    #[test]
    fn downsample_averages() {
        assert_eq!(downsample(&[1.0, 3.0, 5.0, 7.0], 2), vec![2.0, 6.0]);
        assert_eq!(downsample(&[1.0, 3.0, 5.0], 2), vec![2.0, 5.0]);
        assert_eq!(downsample(&[1.0], 1), vec![1.0]);
    }

    #[test]
    fn fmt_series_renders() {
        assert_eq!(fmt_series(&[1.0, 2.5], 1), "1.0, 2.5");
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "\u{2581}\u{2581}\u{2581}");
        let line = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('\u{2581}') && line.ends_with('\u{2588}'));
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0]).chars().nth(1), Some('.'));
    }
}
