//! Invariants of the [`ClusterView`] observed live, from inside a policy,
//! at every callback of a full simulation run.

use cc_compress::CompressionModel;
use cc_sim::{ClusterConfig, ClusterView, KeepDecision, Scheduler, Simulation};
use cc_trace::SyntheticTrace;
use cc_types::{Arch, FunctionId, MemoryMb, SimDuration, SimTime};
use cc_workload::{Catalog, Workload};

/// A policy that behaves like the fixed baseline but asserts view
/// invariants at every opportunity.
struct InvariantProbe {
    checks: u64,
    last_now: SimTime,
}

impl InvariantProbe {
    fn new() -> Self {
        InvariantProbe {
            checks: 0,
            last_now: SimTime::ZERO,
        }
    }

    fn check(&mut self, view: &ClusterView<'_>) {
        self.checks += 1;
        // Time is monotone across callbacks.
        assert!(view.now >= self.last_now, "time ran backwards");
        self.last_now = view.now;

        // Per-node accounting stays within capacity.
        for node in view.nodes {
            assert!(node.busy_cores <= node.cores, "{}: cores", node.id);
            let used = node.running_memory + node.warm_memory;
            assert!(used <= node.memory, "{}: memory over capacity", node.id);
            // The warm cap holds at all times.
            assert!(
                node.warm_memory <= view.config.warm_memory_cap(),
                "{}: warm cap violated ({} > {})",
                node.id,
                node.warm_memory,
                view.config.warm_memory_cap()
            );
        }

        // The per-function index agrees with the O(1) aggregate counters,
        // and every instance it yields is internally consistent.
        let mut via_index = 0usize;
        let mut compressed = 0usize;
        let mut warm_mem_instances = MemoryMb::ZERO;
        for f in 0..view.workload.len() {
            let function = FunctionId::new(f as u32);
            let instances = view.warm_instances_of(function);
            assert_eq!(view.is_warm(function), !instances.is_empty());
            via_index += instances.len();
            for inst in instances {
                assert_eq!(inst.function, function);
                // The handle the index hands out resolves back to the same
                // instance (generation check passes while it is live).
                assert_eq!(view.instance(inst.id).map(|i| i.seq), Some(inst.seq));
                let node = &view.nodes[inst.node.index()];
                assert_eq!(node.arch, inst.arch);
                assert!(inst.expiry >= inst.since);
                warm_mem_instances += inst.memory;
                if inst.compressed {
                    compressed += 1;
                }
            }
        }
        assert_eq!(via_index, view.warm_count(), "index out of sync with count");
        let warm_mem_nodes: MemoryMb = view.nodes.iter().map(|n| n.warm_memory).sum();
        assert_eq!(
            warm_mem_nodes, warm_mem_instances,
            "warm memory out of sync"
        );

        // Aggregates are consistent.
        assert_eq!(view.total_warm_memory(), warm_mem_nodes);
        assert!(view.busy_core_fraction() >= 0.0 && view.busy_core_fraction() <= 1.0);
        assert_eq!(view.compressed_count(), compressed);
    }
}

impl Scheduler for InvariantProbe {
    fn name(&self) -> &str {
        "invariant-probe"
    }

    fn place(&mut self, function: FunctionId, view: &ClusterView<'_>) -> Arch {
        self.check(view);
        // Exercise per-function queries too.
        let _ = view.is_warm(function);
        let _ = view.warm_instances_of(function);
        if view.free_cores(Arch::X86) >= view.free_cores(Arch::Arm) {
            Arch::X86
        } else {
            Arch::Arm
        }
    }

    fn on_completion(
        &mut self,
        function: FunctionId,
        _arch: Arch,
        view: &ClusterView<'_>,
    ) -> KeepDecision {
        self.check(view);
        // Compress every third function to exercise both pool shapes.
        KeepDecision {
            keep_alive: SimDuration::from_mins(8),
            compress: function.index().is_multiple_of(3),
        }
    }

    fn on_interval(&mut self, view: &ClusterView<'_>) -> Vec<cc_sim::Command> {
        self.check(view);
        Vec::new()
    }
}

#[test]
fn view_invariants_hold_throughout_a_pressured_run() {
    let trace = SyntheticTrace::builder()
        .functions(60)
        .duration(SimDuration::from_mins(120))
        .seed(55)
        .build();
    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    // Tight warm cap: eviction, compression, and queueing all fire.
    let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.15);
    let mut probe = InvariantProbe::new();
    let report = Simulation::new(config, &trace, &workload).run(&mut probe);
    assert_eq!(report.records.len(), trace.invocations().len());
    assert!(
        probe.checks > 1000,
        "probe barely ran: {} checks",
        probe.checks
    );
    assert!(report.compression_events > 0);
}
