//! Mux edge cases, verified through the `cc-replay` decoder: shards that
//! emit nothing, shards that panic mid-stream, and shards that complete
//! out of submission order must all produce deterministic, decodable
//! merged output.

use std::sync::mpsc;

use cc_obs::{event_line, ChannelSink, Event, EventSink, SamplingSink};
use cc_replay::decode_stream;
use cc_shard::{run_sharded_jsonl, ShardedRunConfig};
use cc_types::{FunctionId, SimTime};

fn arrival(us: u64) -> Event {
    Event::Arrival {
        at: SimTime::from_micros(us),
        function: FunctionId::new(2),
    }
}

fn config(workers: usize) -> ShardedRunConfig {
    ShardedRunConfig {
        workers,
        channel_capacity: 16,
        lossy: false,
        sample_every: 1,
    }
}

/// A shard that emits no events still gets its begin/end markers, the end
/// marker declares zero events, and the merged stream decodes cleanly.
#[test]
fn zero_event_shard_produces_an_empty_decodable_block() {
    let run = || {
        let jobs: Vec<_> = [3u64, 0, 2]
            .into_iter()
            .map(|count| {
                move |sink: &mut SamplingSink<ChannelSink>| {
                    for i in 0..count {
                        sink.record(&arrival(i));
                    }
                }
            })
            .collect();
        let (results, bytes, report) =
            run_sharded_jsonl(jobs, &config(2), Vec::new()).expect("in-memory mux cannot fail");
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        assert_eq!(report.events_written, 5);
        String::from_utf8(bytes).unwrap()
    };

    let text = run();
    assert_eq!(
        text,
        run(),
        "merged output must be run-to-run deterministic"
    );

    let log = decode_stream(&text).expect("merged stream must decode");
    assert!(log.tagged);
    assert_eq!(log.shards.len(), 3);
    let per_shard: Vec<usize> = log.shards.iter().map(|s| s.events.len()).collect();
    assert_eq!(per_shard, vec![3, 0, 2]);
    let empty = &log.shards[1];
    let end = empty.end.expect("empty shard still carries its end marker");
    assert_eq!(end.events, 0);
    assert_eq!(end.dropped, 0);
}

/// A shard that panics mid-stream still delivers the events it emitted
/// before dying plus its end-of-shard marker (the sink is finished on the
/// panic path), so the merged stream stays decodable and deterministic —
/// and the sibling shards are unaffected.
#[test]
fn panicking_shard_leaves_a_decodable_deterministic_stream() {
    let run = || {
        type Job = Box<dyn FnOnce(&mut SamplingSink<ChannelSink>) + Send>;
        let jobs: Vec<Job> = vec![
            Box::new(|sink: &mut SamplingSink<ChannelSink>| {
                for i in 0..4 {
                    sink.record(&arrival(i));
                }
            }),
            Box::new(|sink: &mut SamplingSink<ChannelSink>| {
                sink.record(&arrival(100));
                sink.record(&arrival(101));
                panic!("simulated divergence after two events");
            }),
            Box::new(|sink: &mut SamplingSink<ChannelSink>| {
                sink.record(&arrival(200));
            }),
        ];
        let (results, bytes, report) =
            run_sharded_jsonl(jobs, &config(2), Vec::new()).expect("in-memory mux cannot fail");
        assert!(results[0].outcome.is_ok());
        let err = results[1].outcome.as_ref().unwrap_err();
        assert!(err.contains("simulated divergence"), "got {err:?}");
        assert!(results[2].outcome.is_ok());
        assert_eq!(report.events_written, 7);
        String::from_utf8(bytes).unwrap()
    };

    let text = run();
    assert_eq!(
        text,
        run(),
        "merged output must be run-to-run deterministic"
    );

    let log = decode_stream(&text).expect("a panicked shard must not corrupt the stream");
    assert_eq!(log.shards.len(), 3);
    let per_shard: Vec<usize> = log.shards.iter().map(|s| s.events.len()).collect();
    assert_eq!(per_shard, vec![4, 2, 1]);
    // The panicked shard's block is well-formed: marker counts match the
    // events that made it out before the panic.
    let end = log.shards[1].end.expect("panicked shard still ends");
    assert_eq!(end.events, 2);
    assert_eq!(end.dropped, 0);
}

/// Shard 0 stalls until shard 1 has completely finished, forcing strictly
/// out-of-order completion; the merged stream must still present shard 0's
/// block first, byte-for-byte as if completion had been in order.
#[test]
fn out_of_order_completion_still_merges_in_shard_order() {
    let (signal_tx, signal_rx) = mpsc::channel::<()>();
    type Job = Box<dyn FnOnce(&mut SamplingSink<ChannelSink>) + Send>;
    let jobs: Vec<Job> = vec![
        Box::new(move |sink: &mut SamplingSink<ChannelSink>| {
            // Wait until shard 1 is completely done before emitting.
            signal_rx.recv().expect("shard 1 signals completion");
            sink.record(&arrival(0));
            sink.record(&arrival(1));
        }),
        Box::new(move |sink: &mut SamplingSink<ChannelSink>| {
            sink.record(&arrival(100));
            sink.record(&arrival(101));
            signal_tx.send(()).expect("shard 0 is waiting");
        }),
    ];
    // Two workers, so both shards run concurrently and the stall cannot
    // deadlock the sweep.
    let (results, bytes, report) =
        run_sharded_jsonl(jobs, &config(2), Vec::new()).expect("in-memory mux cannot fail");
    assert!(results.iter().all(|r| r.outcome.is_ok()));
    assert_eq!(report.events_written, 4);

    let text = String::from_utf8(bytes).unwrap();
    let expected = format!(
        "{{\"t\":\"shard_begin\",\"shard\":0}}\n{}\n{}\n\
         {{\"t\":\"shard_end\",\"shard\":0,\"events\":2,\"dropped\":0}}\n\
         {{\"t\":\"shard_begin\",\"shard\":1}}\n{}\n{}\n\
         {{\"t\":\"shard_end\",\"shard\":1,\"events\":2,\"dropped\":0}}\n",
        event_line(&arrival(0)),
        event_line(&arrival(1)),
        event_line(&arrival(100)),
        event_line(&arrival(101)),
    );
    assert_eq!(text, expected, "blocks must appear in shard-id order");

    let log = decode_stream(&text).expect("merged stream must decode");
    assert_eq!(log.shards.len(), 2);
    assert_eq!(log.shards[0].events.len(), 2);
    assert_eq!(log.shards[1].events.len(), 2);
}
