//! The fixed keep-alive baseline.

use cc_types::{Arch, FunctionId, SimDuration};

use crate::{ClusterView, KeepDecision, Scheduler};

/// The production-default policy Amazon Lambda and Azure Functions use:
/// keep every instance alive for a fixed window (10 minutes) after
/// execution, never compress, and place cold starts on the least-loaded
/// architecture.
///
/// Used directly in the paper's motivation experiments (Fig. 1) and as the
/// "fixed 10-minute keep-alive" ablation in Fig. 12.
///
/// # Example
///
/// ```
/// use cc_sim::FixedKeepAlive;
/// use cc_types::SimDuration;
///
/// let p = FixedKeepAlive::ten_minutes();
/// let custom = FixedKeepAlive::new(SimDuration::from_mins(30), true);
/// # let _ = (p, custom);
/// ```
#[derive(Debug, Clone)]
pub struct FixedKeepAlive {
    keep_alive: SimDuration,
    compress: bool,
    prefer_arch: Option<Arch>,
}

impl FixedKeepAlive {
    /// Creates a fixed policy with the given window; `compress` stores
    /// every kept instance compressed (the Fig. 1 "with compression"
    /// variant).
    pub fn new(keep_alive: SimDuration, compress: bool) -> FixedKeepAlive {
        FixedKeepAlive {
            keep_alive,
            compress,
            prefer_arch: None,
        }
    }

    /// The production default: 10 minutes, uncompressed.
    pub fn ten_minutes() -> FixedKeepAlive {
        FixedKeepAlive::new(SimDuration::from_mins(10), false)
    }

    /// Restricts cold-start placement to one architecture (for
    /// homogeneous-cluster ablations).
    pub fn pinned_to(mut self, arch: Arch) -> FixedKeepAlive {
        self.prefer_arch = Some(arch);
        self
    }
}

impl Scheduler for FixedKeepAlive {
    fn name(&self) -> &str {
        if self.compress {
            "fixed-keepalive+compression"
        } else {
            "fixed-keepalive"
        }
    }

    fn place(&mut self, _function: FunctionId, view: &ClusterView<'_>) -> Arch {
        if let Some(arch) = self.prefer_arch {
            return arch;
        }
        // Least-loaded architecture by free cores.
        if view.free_cores(Arch::X86) >= view.free_cores(Arch::Arm) {
            Arch::X86
        } else {
            Arch::Arm
        }
    }

    fn on_completion(
        &mut self,
        _function: FunctionId,
        _arch: Arch,
        _view: &ClusterView<'_>,
    ) -> KeepDecision {
        KeepDecision {
            keep_alive: self.keep_alive,
            compress: self.compress,
        }
    }
}
