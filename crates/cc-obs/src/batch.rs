//! Window-aligned event batching: the transport for the intra-run
//! parallel pipeline.
//!
//! A [`BatchSink`] buffers the engine's event stream and flushes it as
//! [`EventBatch`]es — shared, immutable event slices tagged with a
//! monotone batch index. A flush happens when simulated time crosses a
//! window boundary (every `window` of simulated time) or when the buffer
//! reaches its size cap, whichever comes first. Each batch is fanned out
//! to every subscribed channel, so independent consumers (JSONL encoder
//! workers, a telemetry folder) observe the same batches without copying
//! events.
//!
//! Determinism: batch indices are assigned in emission order, and events
//! within a batch stay in emission order, so any consumer that processes
//! batches in index order reconstructs the exact serial event stream —
//! regardless of the window length, the size cap, or how many worker
//! threads consume the batches. The window only controls flush *cadence*
//! (latency and batch granularity), never content order.

use std::sync::mpsc::SyncSender;
use std::sync::Arc;

use cc_types::{SimDuration, SimTime};

use crate::event::{Event, EventSink};

/// One flushed batch: a contiguous run of the event stream.
///
/// `index` is dense and monotone (0, 1, 2, …); concatenating batches in
/// index order yields the serial emission order.
#[derive(Debug, Clone)]
pub struct EventBatch {
    /// Dense, monotone batch ordinal.
    pub index: u64,
    /// The events, in emission order, shared across subscribers.
    pub events: Arc<[Event]>,
}

/// Buffers events into window-aligned, size-capped batches and fans each
/// batch out to every subscriber channel.
#[derive(Debug)]
pub struct BatchSink {
    window: SimDuration,
    cap: usize,
    window_end: SimTime,
    next_index: u64,
    buffer: Vec<Event>,
    subscribers: Vec<SyncSender<EventBatch>>,
    send_failures: u64,
}

impl BatchSink {
    /// Creates a sink flushing at every `window` of simulated time or
    /// every `cap` events, fanning batches out to `subscribers`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero, `cap` is zero, or there are no
    /// subscribers (the batches would go nowhere).
    pub fn new(
        window: SimDuration,
        cap: usize,
        subscribers: Vec<SyncSender<EventBatch>>,
    ) -> BatchSink {
        assert!(window > SimDuration::ZERO, "window must be positive");
        assert!(cap > 0, "batch size cap must be positive");
        assert!(
            !subscribers.is_empty(),
            "batches need at least one subscriber"
        );
        BatchSink {
            window,
            cap,
            window_end: SimTime::ZERO + window,
            next_index: 0,
            buffer: Vec::with_capacity(cap),
            subscribers,
            send_failures: 0,
        }
    }

    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        // Dynamic probe (this sink is used behind `&mut dyn`-style
        // composition, so no profiler type parameter reaches it): one
        // relaxed atomic load when profiling is off. Blocked fan-out sends
        // (subscriber backpressure) are inside the span.
        let _span = cc_prof::DynScope::new(cc_prof::Phase::BatchFlush);
        cc_prof::dyn_add(cc_prof::PerfCounter::BatchFlushes, 1);
        let events: Arc<[Event]> = self.buffer.drain(..).collect();
        let index = self.next_index;
        self.next_index += 1;
        for tx in &self.subscribers {
            let batch = EventBatch {
                index,
                events: Arc::clone(&events),
            };
            if tx.send(batch).is_err() {
                self.send_failures += 1;
            }
        }
    }

    /// Flushes the final partial batch and hangs up the subscriber
    /// channels. Returns `(batches flushed, failed sends)`; a failed send
    /// means a subscriber disconnected early and its stream is incomplete.
    pub fn finish(mut self) -> (u64, u64) {
        self.flush();
        (self.next_index, self.send_failures)
    }
}

impl EventSink for BatchSink {
    fn record(&mut self, event: &Event) {
        let at = event.at();
        if at >= self.window_end {
            // Crossing into a new window: everything buffered belongs to
            // completed windows — flush it, then advance the boundary past
            // this event (skipping empty windows in one step).
            self.flush();
            while self.window_end <= at {
                self.window_end += self.window;
            }
        }
        self.buffer.push(*event);
        if self.buffer.len() >= self.cap {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::FunctionId;
    use std::sync::mpsc::sync_channel;

    fn arrival(us: u64) -> Event {
        Event::Arrival {
            at: SimTime::from_micros(us),
            function: FunctionId::new(0),
        }
    }

    #[test]
    fn batches_are_dense_and_preserve_order() {
        let (tx, rx) = sync_channel(64);
        let mut sink = BatchSink::new(SimDuration::from_micros(100), 3, vec![tx]);
        for us in [0, 10, 150, 160, 170, 180, 420] {
            sink.record(&arrival(us));
        }
        let (batches, failures) = sink.finish();
        assert_eq!(failures, 0);
        let received: Vec<EventBatch> = rx.into_iter().collect();
        assert_eq!(received.len() as u64, batches);
        let mut replayed = Vec::new();
        for (i, batch) in received.iter().enumerate() {
            assert_eq!(batch.index, i as u64, "indices must be dense");
            assert!(!batch.events.is_empty(), "no empty batches");
            assert!(batch.events.len() <= 3, "size cap respected");
            replayed.extend(batch.events.iter().map(|e| e.at().as_micros()));
        }
        // Window at 100µs splits 10→150; cap of 3 splits 150,160,170→180.
        assert_eq!(replayed, [0, 10, 150, 160, 170, 180, 420]);
        assert_eq!(batches, 4);
    }

    #[test]
    fn every_subscriber_sees_every_batch() {
        let (tx_a, rx_a) = sync_channel(8);
        let (tx_b, rx_b) = sync_channel(8);
        let mut sink = BatchSink::new(SimDuration::from_mins(1), 2, vec![tx_a, tx_b]);
        for us in 0..5 {
            sink.record(&arrival(us));
        }
        let (batches, failures) = sink.finish();
        assert_eq!((batches, failures), (3, 0));
        let a: Vec<EventBatch> = rx_a.into_iter().collect();
        let b: Vec<EventBatch> = rx_b.into_iter().collect();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert!(
                Arc::ptr_eq(&x.events, &y.events),
                "events are shared, not copied"
            );
        }
    }

    #[test]
    fn disconnected_subscriber_is_counted_not_fatal() {
        let (tx_gone, rx_gone) = sync_channel(1);
        let (tx_live, rx_live) = sync_channel(8);
        drop(rx_gone);
        let mut sink = BatchSink::new(SimDuration::from_mins(1), 1, vec![tx_gone, tx_live]);
        sink.record(&arrival(1));
        sink.record(&arrival(2));
        let (batches, failures) = sink.finish();
        assert_eq!(batches, 2);
        assert_eq!(failures, 2, "one failure per batch for the dead channel");
        assert_eq!(rx_live.into_iter().count(), 2, "live subscriber unaffected");
    }
}
