//! The objective interface optimizers minimize.

use cc_types::FnChoice;

/// A discrete objective over joint per-function choices.
///
/// Implementors estimate the mean service time of the functions invoked in
/// the current optimization interval under a candidate assignment (lower is
/// better), and may declare assignments infeasible (over the keep-alive
/// budget).
pub trait Objective: Sync {
    /// Number of functions being optimized (`solution.len()` everywhere).
    fn num_functions(&self) -> usize;

    /// Estimated cost of a solution (mean service time in the paper).
    /// Lower is better. Must be finite for feasible solutions.
    fn evaluate(&self, solution: &[FnChoice]) -> f64;

    /// Whether the solution satisfies the budget constraint. Default:
    /// everything is feasible.
    fn is_feasible(&self, solution: &[FnChoice]) -> bool {
        let _ = solution;
        true
    }

    /// Secondary metric used by the paper's tie-break: when several
    /// solutions are within 10% on cost, prefer the one consuming less
    /// keep-alive memory, crediting the savings to future intervals.
    /// Default: no preference.
    fn memory_cost(&self, solution: &[FnChoice]) -> f64 {
        let _ = solution;
        0.0
    }
}

/// The result of one optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptOutcome {
    /// The best feasible solution found.
    pub solution: Vec<FnChoice>,
    /// Its objective value.
    pub cost: f64,
    /// How many objective evaluations were spent.
    pub evaluations: u64,
}

impl OptOutcome {
    /// Evaluates `solution` against `objective` and wraps it.
    pub fn of(objective: &dyn Objective, solution: Vec<FnChoice>, evaluations: u64) -> Self {
        let cost = objective.evaluate(&solution);
        OptOutcome {
            solution,
            cost,
            evaluations,
        }
    }
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use cc_types::{Arch, SimDuration};

    /// A quadratic bowl in keep-alive minutes with arch/compression
    /// penalties: unique optimum at `(Arm, compressed, target minutes)`.
    pub struct Bowl {
        pub n: usize,
        pub target_mins: f64,
        /// Optional budget: total keep-alive minutes allowed.
        pub max_total_mins: Option<f64>,
    }

    impl Objective for Bowl {
        fn num_functions(&self) -> usize {
            self.n
        }

        fn evaluate(&self, solution: &[FnChoice]) -> f64 {
            solution
                .iter()
                .map(|c| {
                    let d = c.keep_alive.as_mins_f64() - self.target_mins;
                    let arch_pen = if c.arch == Arch::X86 { 3.0 } else { 0.0 };
                    let comp_pen = if c.compress { 0.0 } else { 2.0 };
                    d * d + arch_pen + comp_pen
                })
                .sum()
        }

        fn is_feasible(&self, solution: &[FnChoice]) -> bool {
            match self.max_total_mins {
                None => true,
                Some(max) => {
                    solution
                        .iter()
                        .map(|c| c.keep_alive.as_mins_f64())
                        .sum::<f64>()
                        <= max
                }
            }
        }

        fn memory_cost(&self, solution: &[FnChoice]) -> f64 {
            solution.iter().map(|c| c.keep_alive.as_mins_f64()).sum()
        }
    }

    pub fn optimum(bowl: &Bowl) -> Vec<FnChoice> {
        vec![
            FnChoice::new(
                Arch::Arm,
                true,
                SimDuration::from_mins(bowl.target_mins as u64),
            );
            bowl.n
        ]
    }

    #[test]
    fn bowl_optimum_is_zero() {
        let bowl = Bowl {
            n: 3,
            target_mins: 7.0,
            max_total_mins: None,
        };
        assert_eq!(bowl.evaluate(&optimum(&bowl)), 0.0);
        assert!(bowl.evaluate(&[FnChoice::production_default(); 3]) > 0.0);
    }
}
