//! Estimator inputs: per-function arrival sequences plus the priced
//! parameters of the cluster they ran on.

use cc_sim::ClusterConfig;
use cc_trace::Trace;
use cc_types::{Arch, CostRate, FunctionId, MemoryMb, ServiceRecord, SimDuration};
use cc_workload::Workload;

/// Latency weight: nano-units per microsecond of wait + start penalty.
///
/// Fixed by the cost metric's definition; the tunable side of the
/// trade-off is [`HindsightInput::lambda_nanos`] (nano-units per
/// picodollar of keep-alive spend).
pub const LATENCY_NANOS_PER_MICRO: u128 = 1000;

/// One function's hindsight case: sorted arrival times plus the resolved
/// spec parameters the estimators price. All times are microseconds;
/// cold starts are already scaled by the cluster's runtime.
#[derive(Debug, Clone)]
pub struct FnCase {
    /// The function this case prices.
    pub id: FunctionId,
    /// Arrival times in microseconds, sorted ascending.
    pub arrivals: Vec<u64>,
    /// Execution time per architecture (µs, indexed by [`Arch::index`]).
    pub exec: [u64; 2],
    /// Runtime-scaled cold-start penalty per architecture (µs).
    pub cold: [u64; 2],
    /// Decompression penalty per architecture (µs).
    pub decompress: [u64; 2],
    /// Compression latency (µs): a compressed instance reused earlier
    /// than this after admission pays no decompression penalty.
    pub compress: u64,
    /// Warm-instance memory footprint (uncompressed).
    pub memory: MemoryMb,
    /// Memory footprint while kept compressed.
    pub compressed_memory: MemoryMb,
}

/// Everything the estimators need about one recorded run's inputs.
#[derive(Debug, Clone)]
pub struct HindsightInput {
    /// Per-function cases (functions with no arrivals are omitted).
    pub functions: Vec<FnCase>,
    /// Keep-alive cost rate per architecture (indexed by [`Arch::index`]).
    pub rates: [CostRate; 2],
    /// Architectures with at least one node in the cluster.
    pub archs: Vec<Arch>,
    /// Optimization-interval length in microseconds (pre-warms are
    /// issued on this tick grid).
    pub interval: u64,
    /// Nano-units charged per picodollar of keep-alive spend (λ).
    /// The default 1 weighs a dollar at 1000 latency-seconds.
    pub lambda_nanos: u64,
}

impl HindsightInput {
    /// Builds the input from a trace (ground-truth arrivals), the
    /// resolved workload, and the cluster it ran on.
    pub fn from_trace(
        trace: &Trace,
        workload: &Workload,
        config: &ClusterConfig,
    ) -> Result<HindsightInput, String> {
        let mut arrivals: Vec<Vec<u64>> = vec![Vec::new(); workload.len()];
        for inv in trace.invocations() {
            let idx = inv.function.index();
            if idx >= arrivals.len() {
                return Err(format!(
                    "trace invokes function #{idx} but the workload resolves only {} functions",
                    arrivals.len()
                ));
            }
            arrivals[idx].push(inv.arrival.as_micros());
        }
        HindsightInput::build(arrivals, workload, config)
    }

    /// Builds the input from recorded service records (e.g. reconstructed
    /// from a cc-replay event log): arrivals are taken from the records,
    /// so the estimators price exactly the invocations the run served.
    pub fn from_records(
        records: &[ServiceRecord],
        workload: &Workload,
        config: &ClusterConfig,
    ) -> Result<HindsightInput, String> {
        let mut arrivals: Vec<Vec<u64>> = vec![Vec::new(); workload.len()];
        for r in records {
            let idx = r.function.index();
            if idx >= arrivals.len() {
                return Err(format!(
                    "record for function #{idx} but the workload resolves only {} functions",
                    arrivals.len()
                ));
            }
            arrivals[idx].push(r.arrival.as_micros());
        }
        HindsightInput::build(arrivals, workload, config)
    }

    fn build(
        arrivals: Vec<Vec<u64>>,
        workload: &Workload,
        config: &ClusterConfig,
    ) -> Result<HindsightInput, String> {
        let interval = config.interval.as_micros();
        if interval == 0 {
            return Err("optimization interval must be positive".to_owned());
        }
        let mut archs = Vec::new();
        if config.x86_nodes > 0 {
            archs.push(Arch::X86);
        }
        if config.arm_nodes > 0 {
            archs.push(Arch::Arm);
        }
        if archs.is_empty() {
            return Err("cluster has no nodes".to_owned());
        }
        let scale = config.runtime.cold_start_scale();
        let mut functions = Vec::new();
        for (idx, mut times) in arrivals.into_iter().enumerate() {
            if times.is_empty() {
                continue;
            }
            times.sort_unstable();
            let spec = workload.spec(FunctionId::new(idx as u32));
            functions.push(FnCase {
                id: spec.id,
                arrivals: times,
                exec: [
                    spec.exec_time(Arch::X86).as_micros(),
                    spec.exec_time(Arch::Arm).as_micros(),
                ],
                cold: [
                    spec.cold_start(Arch::X86).scale(scale).as_micros(),
                    spec.cold_start(Arch::Arm).scale(scale).as_micros(),
                ],
                decompress: [
                    spec.decompress_time(Arch::X86).as_micros(),
                    spec.decompress_time(Arch::Arm).as_micros(),
                ],
                compress: spec.compress.as_micros(),
                memory: spec.memory,
                compressed_memory: spec.compressed_memory,
            });
        }
        let input = HindsightInput {
            functions,
            rates: [config.x86_rate, config.arm_rate],
            archs,
            interval,
            lambda_nanos: 1,
        };
        input.validate_lambda()?;
        Ok(input)
    }

    /// Overrides λ, the nano-units charged per picodollar of spend.
    ///
    /// Rejects values that would break the lower-bound argument: the DP
    /// relaxes queueing to zero wait, which is only conservative while a
    /// microsecond of wait (1000 nano-units) outweighs the keep-alive
    /// dollars that microsecond of delay could save — i.e. while
    /// λ · ρ(memory, 1 µs) ≤ 1000 nano-units for every function on every
    /// available architecture.
    pub fn with_lambda(mut self, lambda_nanos: u64) -> Result<HindsightInput, String> {
        self.lambda_nanos = lambda_nanos;
        self.validate_lambda()?;
        Ok(self)
    }

    fn validate_lambda(&self) -> Result<(), String> {
        if self.lambda_nanos == 0 {
            return Err("lambda must be positive (a free dollar scale has no optimum)".to_owned());
        }
        for case in &self.functions {
            for &arch in &self.archs {
                let per_second = self.rates[arch.index()]
                    .keep_alive_cost(case.memory, SimDuration::from_secs(1))
                    .as_picodollars() as u128;
                if per_second * self.lambda_nanos as u128 > 1_000_000_000 {
                    return Err(format!(
                        "lambda {} too large for function #{} on {arch}: keeping it warm saves \
                         more than 1000 nano-units per microsecond, so the zero-wait relaxation \
                         would no longer be a lower bound",
                        self.lambda_nanos,
                        case.id.index()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total recorded invocations across all functions.
    pub fn invocations(&self) -> usize {
        self.functions.iter().map(|f| f.arrivals.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_compress::CompressionModel;
    use cc_trace::SyntheticTrace;
    use cc_workload::Catalog;

    fn small_pieces() -> (Trace, Workload, ClusterConfig) {
        let trace = SyntheticTrace::builder()
            .functions(8)
            .duration(SimDuration::from_mins(10))
            .seed(3)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        (trace, workload, ClusterConfig::small(1, 1))
    }

    #[test]
    fn from_trace_sorts_and_scales() {
        let (trace, workload, config) = small_pieces();
        let input = HindsightInput::from_trace(&trace, &workload, &config).unwrap();
        assert_eq!(input.invocations(), trace.invocations().len());
        for case in &input.functions {
            assert!(case.arrivals.windows(2).all(|w| w[0] <= w[1]));
            let spec = workload.spec(case.id);
            let scale = config.runtime.cold_start_scale();
            assert_eq!(
                case.cold[0],
                spec.cold_start(Arch::X86).scale(scale).as_micros()
            );
        }
    }

    #[test]
    fn from_records_matches_trace_arrivals() {
        let (trace, workload, config) = small_pieces();
        let records: Vec<ServiceRecord> = trace
            .invocations()
            .iter()
            .map(|inv| ServiceRecord {
                function: inv.function,
                arrival: inv.arrival,
                wait: SimDuration::ZERO,
                start_penalty: SimDuration::ZERO,
                execution: SimDuration::from_millis(1),
                kind: cc_types::StartKind::Cold,
                arch: Arch::X86,
            })
            .collect();
        let a = HindsightInput::from_trace(&trace, &workload, &config).unwrap();
        let b = HindsightInput::from_records(&records, &workload, &config).unwrap();
        assert_eq!(a.functions.len(), b.functions.len());
        for (x, y) in a.functions.iter().zip(&b.functions) {
            assert_eq!(x.arrivals, y.arrivals);
        }
    }

    #[test]
    fn oversized_lambda_is_rejected() {
        let (trace, workload, config) = small_pieces();
        let input = HindsightInput::from_trace(&trace, &workload, &config).unwrap();
        assert!(input.clone().with_lambda(0).is_err());
        assert!(input.clone().with_lambda(1).is_ok());
        assert!(input.with_lambda(u64::MAX).is_err());
    }

    #[test]
    fn single_arch_cluster_restricts_archs() {
        let (trace, workload, _) = small_pieces();
        let config = ClusterConfig::small(2, 0);
        let input = HindsightInput::from_trace(&trace, &workload, &config).unwrap();
        assert_eq!(input.archs, vec![Arch::X86]);
    }
}
