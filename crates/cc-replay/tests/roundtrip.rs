//! Property tests: encode → decode is lossless for every event variant.
//!
//! The canonical encoder (`cc_obs::event_line`) and the strict decoder
//! (`cc_replay::decode_line`) are inverses on the full event space:
//! decoding an encoded event yields an equal event, and re-encoding the
//! decoded event reproduces the original line byte-for-byte. The
//! generators push boundary values (0, 1, `u64::MAX`, `f64::MAX`, negative
//! zero) through every field with non-trivial probability.

use cc_obs::{
    event_line, Event, EventSink, IntervalSample, JsonlSink, OptimizerRound, ReleaseReason,
};
use cc_replay::{decode_line, decode_stream, Line};
use cc_types::{Arch, Cost, FunctionId, MemoryMb, NodeId, SimDuration, SimTime, StartKind, WarmId};
use proptest::prelude::*;

/// Warps a uniform draw so boundary values appear with probability ~1/2.
fn warp(v: u64) -> u64 {
    match v % 8 {
        0 => 0,
        1 => 1,
        2 => u64::MAX,
        3 => u64::MAX - 1,
        _ => v,
    }
}

fn warp32(v: u64) -> u32 {
    match v % 8 {
        0 => 0,
        1 => 1,
        2 => u32::MAX,
        3 => u32::MAX - 1,
        _ => (v >> 32) as u32,
    }
}

/// Warps a finite draw toward floating-point edge cases. NaN and the
/// infinities are excluded here (they encode as `null` and decode as NaN,
/// which `Event`'s `PartialEq` cannot confirm); the dedicated unit tests
/// in the decoder cover that normalization.
fn warp_f(x: f64, sel: u64) -> f64 {
    match sel % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => 1.0,
        3 => -1.0,
        4 => f64::MAX,
        5 => f64::MIN_POSITIVE,
        6 => 1e-300,
        _ => x,
    }
}

fn arch_of(v: u64) -> Arch {
    if v.is_multiple_of(2) {
        Arch::X86
    } else {
        Arch::Arm
    }
}

/// Builds one event of the variant selected by `sel` from raw draws.
#[allow(clippy::too_many_arguments)]
fn build_event(sel: u8, a: [u64; 6], b: [u64; 6], flag: bool, x: f64, y: f64) -> Event {
    let at = SimTime::from_micros(warp(a[0]));
    let function = FunctionId::new(warp32(a[1]));
    let node = NodeId::new(warp32(b[1]));
    let id = WarmId::new(warp32(a[2]), warp32(b[0]));
    let arch = arch_of(b[2]);
    match sel % 12 {
        0 => Event::Arrival { at, function },
        1 => Event::Queued {
            at,
            function,
            depth: warp(a[3]),
        },
        2 => Event::ExecutionStarted {
            at,
            function,
            node,
            arch,
            kind: match b[3] % 3 {
                0 => StartKind::Cold,
                1 => StartKind::WarmUncompressed,
                _ => StartKind::WarmCompressed,
            },
            wait: SimDuration::from_micros(warp(a[4])),
            start_penalty: SimDuration::from_micros(warp(a[5])),
            execution: SimDuration::from_micros(warp(b[4])),
        },
        3 => Event::InstanceAdmitted {
            at,
            id,
            function,
            node,
            arch,
            compressed: flag,
            memory: MemoryMb::new(warp32(b[5])),
            expiry: SimTime::from_micros(warp(a[3])),
            reserved: Cost::from_picodollars(warp(a[4])),
        },
        4 => Event::InstanceReleased {
            at,
            id,
            function,
            node,
            memory: MemoryMb::new(warp32(b[5])),
            compressed: flag,
            since: SimTime::from_micros(warp(a[3])),
            reason: match b[3] % 3 {
                0 => ReleaseReason::Reused,
                1 => ReleaseReason::Evicted,
                _ => ReleaseReason::Expired,
            },
        },
        5 => Event::CompressionStarted {
            at,
            id,
            function,
            node,
            ready_at: SimTime::from_micros(warp(a[3])),
        },
        6 => Event::CompressionFinished {
            at,
            id,
            function,
            node,
        },
        7 => Event::BudgetDebit {
            at,
            requested: Cost::from_picodollars(warp(a[3])),
            granted: Cost::from_picodollars(warp(a[4])),
        },
        8 => Event::BudgetCredit {
            at,
            amount: Cost::from_picodollars(warp(a[3])),
        },
        9 => Event::PrewarmDropped { at, function, arch },
        10 => Event::OptimizerRound {
            at,
            round: OptimizerRound {
                round: warp32(a[3]),
                subproblems: warp32(a[4]),
                dimensions: warp32(a[5]),
                objective: warp_f(x, b[3]),
                accepted_moves: warp(b[4]),
                evaluations: warp(b[5]),
            },
        },
        _ => Event::IntervalSampled {
            at,
            sample: IntervalSample {
                index: warp(a[3]),
                spend_delta_dollars: warp_f(x, b[3]),
                warm_pool: warp(a[4]),
                compressed: warp(a[5]),
                utilization: warp_f(y, b[4]),
                compression_events_delta: warp(b[5]),
                pending: warp(b[0]),
            },
        },
    }
}

fn six() -> impl Strategy<Value = [u64; 6]> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(a, b, c, d, e, f)| [a, b, c, d, e, f])
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        (0u8..12u8, any::<bool>(), any::<f64>(), any::<f64>()),
        six(),
        six(),
    )
        .prop_map(|((sel, flag, x, y), a, b)| build_event(sel, a, b, flag, x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_lossless(event in event_strategy()) {
        let line = event_line(&event);
        match decode_line(&line) {
            Ok(Line::Event(decoded)) => {
                prop_assert_eq!(decoded, event);
                // Canonical encoding: re-encoding reproduces the bytes.
                prop_assert_eq!(event_line(&decoded), line);
            }
            other => return Err(format!("{line:?} decoded to {other:?}")),
        }
    }

    #[test]
    fn every_line_prefix_is_a_typed_error(event in event_strategy()) {
        // Truncation anywhere must produce a typed error, never a panic
        // and never a bogus success.
        let line = event_line(&event);
        for end in 0..line.len() {
            if !line.is_char_boundary(end) {
                continue;
            }
            prop_assert!(decode_line(&line[..end]).is_err());
        }
    }

    #[test]
    fn event_sequences_roundtrip_through_a_jsonl_stream(
        events in prop::collection::vec(event_strategy(), 0..40)
    ) {
        let mut sink = JsonlSink::new(Vec::new());
        for event in &events {
            sink.record(event);
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let log = match decode_stream(&text) {
            Ok(log) => log,
            Err(e) => return Err(format!("stream failed to decode: {e}")),
        };
        prop_assert!(!log.tagged);
        if events.is_empty() {
            // An empty file decodes to an empty log, not an empty shard.
            prop_assert!(log.shards.is_empty());
            return Ok(());
        }
        prop_assert_eq!(log.shards.len(), 1);
        prop_assert_eq!(log.shards[0].events.len(), events.len());
        for (i, ((line_no, decoded), original)) in
            log.shards[0].events.iter().zip(&events).enumerate()
        {
            prop_assert_eq!(*line_no, i as u64 + 1);
            prop_assert_eq!(decoded, original);
        }
        // Re-encoding the decoded stream reproduces the file bytes.
        let mut re = String::new();
        for (_, decoded) in &log.shards[0].events {
            re.push_str(&event_line(decoded));
            re.push('\n');
        }
        prop_assert_eq!(re, text);
    }
}
