//! [`SharedTelemetry`]: the [`Telemetry`] aggregate behind a lock, so a
//! *running* service can be observed from other threads.
//!
//! Batch runs read telemetry after the engine returns; an always-on
//! service (cc-serve) wants live per-interval snapshots — a status line
//! printed as each optimization interval closes, a drain handler dumping
//! the final report. `SharedTelemetry` is the standard aggregate wrapped
//! in `Arc<Mutex<…>>`: clones share one aggregate, the engine records
//! into it through the normal [`EventSink`] path, and observers take
//! consistent snapshots through [`SharedTelemetry::with`].
//!
//! The lock is uncontended in the common case (one engine thread, an
//! observer polling at interval granularity), and the digest it yields is
//! the same [`Telemetry::digest`] a batch run produces — shared
//! observation does not perturb the batch-equivalence contract.

use std::sync::{Arc, Mutex};

use cc_types::SimDuration;

use crate::event::{Event, EventSink};
use crate::telemetry::Telemetry;

/// A cloneable, lock-protected [`Telemetry`] usable as an [`EventSink`]
/// on one thread while other threads snapshot it.
#[derive(Debug, Clone)]
pub struct SharedTelemetry {
    inner: Arc<Mutex<Telemetry>>,
}

impl SharedTelemetry {
    /// An empty shared aggregate bucketing at `interval`.
    pub fn new(interval: SimDuration) -> SharedTelemetry {
        SharedTelemetry::from_telemetry(Telemetry::new(interval))
    }

    /// Wraps an existing aggregate (e.g. one pre-loaded with state).
    pub fn from_telemetry(telemetry: Telemetry) -> SharedTelemetry {
        SharedTelemetry {
            inner: Arc::new(Mutex::new(telemetry)),
        }
    }

    /// Runs `f` over a consistent snapshot of the aggregate. Keep `f`
    /// short: the engine's `record` path blocks on the same lock.
    pub fn with<R>(&self, f: impl FnOnce(&Telemetry) -> R) -> R {
        f(&self.inner.lock().expect("telemetry lock"))
    }

    /// The most recently closed interval row, if any
    /// (see [`Telemetry::latest_row`]).
    pub fn latest_row(&self) -> Option<String> {
        self.with(Telemetry::latest_row)
    }

    /// One-line live summary (see [`Telemetry::snapshot_line`]).
    pub fn snapshot_line(&self) -> String {
        self.with(Telemetry::snapshot_line)
    }

    /// Order-sensitive digest over everything recorded so far
    /// (see [`Telemetry::digest`]).
    pub fn digest(&self) -> u64 {
        self.with(Telemetry::digest)
    }

    /// The full printable report (see [`Telemetry::report`]).
    pub fn report(&self) -> String {
        self.with(Telemetry::report)
    }
}

impl EventSink for SharedTelemetry {
    fn record(&mut self, event: &Event) {
        self.inner.lock().expect("telemetry lock").record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::{FunctionId, SimTime};

    #[test]
    fn shared_clones_observe_one_aggregate_and_digest_matches_unshared() {
        let interval = SimDuration::from_mins(10);
        let events = [
            Event::Arrival {
                at: SimTime::from_micros(1),
                function: FunctionId::new(0),
            },
            Event::Queued {
                at: SimTime::from_micros(2),
                function: FunctionId::new(0),
                depth: 3,
            },
        ];

        let mut shared = SharedTelemetry::new(interval);
        let observer = shared.clone();
        let mut plain = Telemetry::new(interval);
        for event in &events {
            shared.record(event);
            plain.record(event);
        }
        assert_eq!(observer.digest(), plain.digest());
        assert_eq!(observer.snapshot_line(), plain.snapshot_line());
        assert_eq!(observer.with(|t| t.samples().len()), 0);
    }
}
