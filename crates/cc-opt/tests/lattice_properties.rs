//! Property tests on the choice lattice and the optimizers' contracts.

use proptest::prelude::*;
use std::collections::HashSet;

use cc_opt::{combine_solutions, CoordinateDescent, Objective, Sre};
use cc_types::{Arch, FnChoice, SimDuration, KEEP_ALIVE_MAX};

fn choice_strategy() -> impl Strategy<Value = FnChoice> {
    (0u8..2, any::<bool>(), 0u64..=60).prop_map(|(arch, compress, mins)| {
        FnChoice::new(Arch::from_bit(arch), compress, SimDuration::from_mins(mins))
    })
}

/// Breadth-first distance between two choices under the neighbor relation.
fn lattice_distance(from: FnChoice, to: FnChoice) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut seen: HashSet<FnChoice> = HashSet::new();
    let mut frontier = vec![from];
    seen.insert(from);
    for depth in 1..=130 {
        let mut next = Vec::new();
        for node in frontier {
            for neighbor in node.neighbors() {
                if neighbor == to {
                    return Some(depth);
                }
                if seen.insert(neighbor) {
                    next.push(neighbor);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lattice_is_connected(a in choice_strategy(), b in choice_strategy()) {
        // Any choice is reachable from any other: the optimizer can never
        // be structurally locked out of the optimum.
        let d = lattice_distance(a, b);
        prop_assert!(d.is_some(), "{a} cannot reach {b}");
        // Diameter bound: 60 keep-alive steps + arch flip + compress flip.
        prop_assert!(d.unwrap() <= 62, "distance {d:?} exceeds the diameter bound");
    }

    #[test]
    fn neighbors_stay_in_bounds_and_differ(c in choice_strategy()) {
        for n in c.neighbors() {
            prop_assert!(n.keep_alive <= KEEP_ALIVE_MAX);
            prop_assert_ne!(n, c, "neighbor equals the origin");
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric(c in choice_strategy()) {
        for n in c.neighbors() {
            prop_assert!(
                n.neighbors().contains(&c),
                "asymmetric move {c} -> {n}"
            );
        }
    }

    #[test]
    fn combine_is_idempotent_on_agreement(
        solution in prop::collection::vec(choice_strategy(), 1..10),
        rounds in 1usize..5,
    ) {
        // When every round agrees, combining changes nothing (modulo the
        // sub-minute truncation of averaging identical values).
        let rounds: Vec<Vec<FnChoice>> = (0..rounds).map(|_| solution.clone()).collect();
        let combined = combine_solutions(&rounds);
        for (c, s) in combined.iter().zip(&solution) {
            prop_assert_eq!(c.arch, s.arch);
            prop_assert_eq!(c.compress, s.compress);
            prop_assert_eq!(c.keep_alive, s.keep_alive);
        }
    }
}

/// A rugged objective: descent must still terminate and never return an
/// infeasible or worse-than-start solution.
struct Rugged;

impl Objective for Rugged {
    fn num_functions(&self) -> usize {
        6
    }
    fn evaluate(&self, solution: &[FnChoice]) -> f64 {
        solution
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let m = c.keep_alive.as_mins_f64();
                // Oscillating landscape with arch/compress interactions.
                (m * 0.7 + i as f64).sin() * 3.0
                    + if c.compress == (i % 2 == 0) { 0.0 } else { 1.0 }
                    + if c.arch == Arch::Arm { 0.3 } else { 0.0 }
                    + m * 0.01
            })
            .sum()
    }
    fn is_feasible(&self, solution: &[FnChoice]) -> bool {
        solution
            .iter()
            .map(|c| c.keep_alive.as_mins_f64())
            .sum::<f64>()
            <= 120.0
    }
}

#[test]
fn descent_terminates_and_improves_on_rugged_objectives() {
    let start = vec![FnChoice::production_default(); 6];
    let start_cost = Rugged.evaluate(&start);
    let out = CoordinateDescent::default().optimize(&Rugged, start);
    assert!(out.cost <= start_cost);
    assert!(Rugged.is_feasible(&out.solution));
}

#[test]
fn sre_terminates_and_improves_on_rugged_objectives() {
    let start = vec![FnChoice::production_default(); 6];
    let start_cost = Rugged.evaluate(&start);
    let mut counts = vec![0u32; 6];
    let out = Sre::scaled_to(6).optimize(&Rugged, start, &mut counts);
    assert!(out.cost <= start_cost);
    assert!(Rugged.is_feasible(&out.solution));
}
