//! # cc-obs: zero-cost event tracing and streaming telemetry
//!
//! The simulator's observability layer. The engine is generic over an
//! [`EventSink`]; with [`NullSink`] (the default) every emission site is
//! guarded by the sink's `ENABLED` associated constant and compiles to
//! nothing — event values are never constructed, so the uninstrumented hot
//! path is identical to a build without this crate.
//!
//! With a real sink attached, the engine emits a typed [`Event`] stream:
//! arrivals, queueing, execution starts (cold / warm / warm-compressed),
//! warm-pool admissions and releases, background compression, budget
//! debits/credits, dropped pre-warms, per-interval samples, and per-round
//! optimizer progress.
//!
//! Consumers compose from three families:
//!
//! * **Instruments** — [`Counter`], [`Gauge`], [`LogHistogram`], and the
//!   [`Telemetry`] aggregate, which folds the stream into a final report
//!   and a per-interval table (quantiles via [`cc_metrics`]'s P² and
//!   summary machinery).
//! * **Exporters** — [`JsonlSink`] (one JSON object per event, stable key
//!   order, deterministic bytes) and [`ChromeTraceSink`] (Chrome
//!   `trace_event` JSON loadable in Perfetto, rendering node occupancy and
//!   warm-instance lifetimes as tracks).
//! * **Combinators** — [`Tee`] to fan out to two sinks, [`BufferSink`] to
//!   retain events in memory, `&mut S` which forwards to `S`,
//!   [`SamplingSink`] for deterministic 1-in-N sampling with explicit drop
//!   accounting, [`ChannelSink`] which streams shard-tagged events over
//!   a bounded channel to a mux thread (the transport for the sharded
//!   parallel driver), and [`BatchSink`] which flushes window-aligned,
//!   index-tagged event batches to multiple subscribers (the transport
//!   for the intra-run parallel pipeline).
//!
//! This crate deliberately depends only on `cc-types` and `cc-metrics`;
//! `cc-sim` depends on it (not the reverse), and re-exports the sink
//! vocabulary so most users never import `cc-obs` directly.

#![warn(missing_docs)]

mod batch;
mod channel;
mod chrome;
mod event;
mod instruments;
mod jsonl;
mod sampling;
mod shared;
mod telemetry;

pub use batch::{BatchSink, EventBatch};
pub use channel::{ChannelSink, ChannelStats, ShardMsg};
pub use chrome::ChromeTraceSink;
pub use event::{
    BufferSink, Event, EventSink, IntervalSample, NullSink, OptimizerRound, ReleaseReason, Tee,
};
pub use instruments::{Counter, Gauge, LogHistogram};
pub use jsonl::{event_line, JsonlSink};
pub use sampling::SamplingSink;
pub use shared::SharedTelemetry;
pub use telemetry::Telemetry;
