//! The gap conservation invariant: no policy's measured cost ever lands
//! below the hindsight lower bound — serial or sharded — and the bound
//! chain itself stays ordered (segment ≤ DP ≤ local-search upper bound).
//!
//! This is the yardstick's load-bearing guarantee: a "lower bound" a real
//! run can beat is a bug in the estimator (a missed hindsight action, a
//! pricing mismatch with the engine's ledger), and an upper bound below
//! the DP is a broken search. The scenario deliberately includes memory
//! pressure, both architectures, and a budget so all engine mechanisms
//! (eviction, compression, pro-rata budget truncation) are in play.

use codecrunch_suite::prelude::*;

fn scenario() -> (Trace, Workload, ClusterConfig) {
    let trace = SyntheticTrace::builder()
        .functions(40)
        .duration(SimDuration::from_mins(45))
        .seed(90)
        .build();
    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.35);
    (trace, workload, config)
}

const POLICIES: [&str; 6] = [
    "fixed_keepalive",
    "sitw",
    "faascache",
    "icebreaker",
    "oracle",
    "codecrunch",
];

fn make_policy(name: &str, trace: &Trace) -> Box<dyn Scheduler> {
    match name {
        "fixed_keepalive" => Box::new(FixedKeepAlive::ten_minutes()),
        "sitw" => Box::new(SitW::new()),
        "faascache" => Box::new(FaasCache::new()),
        "icebreaker" => Box::new(IceBreaker::new()),
        "oracle" => Box::new(Oracle::new(trace)),
        "codecrunch" => Box::new(CodeCrunch::new()),
        other => panic!("unknown policy {other}"),
    }
}

#[test]
fn no_policy_beats_the_lower_bound_serial() {
    let (trace, workload, config) = scenario();
    let input = HindsightInput::from_trace(&trace, &workload, &config).unwrap();
    let bound = GapReport::for_input(&input);
    for name in POLICIES {
        let mut policy = make_policy(name, &trace);
        let report = Simulation::new(config.clone(), &trace, &workload).run(policy.as_mut());
        let gap = bound.policy(name, measured_cost_of_report(&report, input.lambda_nanos));
        assert!(
            gap.holds(),
            "{name}: measured {} < lower bound {} (gap {})",
            gap.measured,
            gap.lower_bound,
            gap.gap
        );
    }
}

#[test]
fn no_policy_beats_the_lower_bound_sharded() {
    let (trace, workload, config) = scenario();
    let input = HindsightInput::from_trace(&trace, &workload, &config).unwrap();
    let bound = GapReport::for_input(&input);
    let jobs: Vec<_> = POLICIES
        .iter()
        .map(|&name| {
            let (trace, workload, config) = (trace.clone(), workload.clone(), config.clone());
            move |_sink: &mut NullSink| {
                let mut policy = make_policy(name, &trace);
                Simulation::new(config, &trace, &workload).run(policy.as_mut())
            }
        })
        .collect();
    for result in run_sharded(jobs, 2, &NullSinkFactory) {
        let report = result.outcome.expect("policy shard panicked");
        let gap = bound.policy(
            &report.policy.clone(),
            measured_cost_of_report(&report, input.lambda_nanos),
        );
        assert!(
            gap.holds(),
            "{} (sharded): measured {} < lower bound {} (gap {})",
            gap.policy,
            gap.measured,
            gap.lower_bound,
            gap.gap
        );
    }
}

#[test]
fn bound_chain_is_ordered_on_the_scenario() {
    let (trace, workload, config) = scenario();
    let input = HindsightInput::from_trace(&trace, &workload, &config).unwrap();
    let dp = dp_lower_bound(&input);
    for segments in [2, 5, 16] {
        assert!(segment_lower_bound(&input, segments) <= dp);
    }
    // Seed the upper bound from a real recorded schedule and check it
    // brackets from above while staying under that run's measured cost.
    let mut policy = make_policy("codecrunch", &trace);
    let report = Simulation::new(config, &trace, &workload).run(policy.as_mut());
    let upper = local_search_upper_bound(&input, &report.records);
    assert!(dp <= upper);
    let measured = measured_cost_of_report(&report, input.lambda_nanos);
    assert!(upper <= measured, "upper {upper} > measured {measured}");
}
