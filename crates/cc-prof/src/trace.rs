//! Chrome/Perfetto trace export of the simulator's *own* threads.
//!
//! This is wall-clock time of the simulator process — deliberately
//! distinct from cc-obs's simulated-time trace export, which draws the
//! modeled cluster. Load the output in `ui.perfetto.dev` or
//! `chrome://tracing`. Format: the Trace Event JSON array with `M`
//! (thread_name metadata) records followed by `X` (complete span)
//! records; `ts`/`dur` are microseconds since the profiling epoch.

use std::fmt::Write as _;

use crate::profile::SelfProfile;

/// Process id stamped on every record (single-process tracer).
const PID: u32 = 1;

/// Renders the profile's retained wall-trace spans as a Chrome Trace
/// Event JSON array. Empty trace → a valid two-byte `[]` document.
pub fn to_chrome_trace(profile: &SelfProfile) -> String {
    let mut out = String::new();
    out.push('[');
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
            out.push('\n');
        } else {
            out.push_str(",\n");
        }
    };
    for thread in &profile.threads {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\": \"M\", \"pid\": {PID}, \"tid\": {}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            thread.tid,
            escape(&thread.label),
        );
    }
    for span in &profile.trace {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\": \"X\", \"pid\": {PID}, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
             \"name\": \"{}\", \"cat\": \"cc-prof\"}}",
            span.tid,
            micros(span.start_ns),
            micros(span.dur_ns),
            span.phase.label(),
        );
    }
    out.push_str(if first { "]" } else { "\n]" });
    out.push('\n');
    out
}

/// Nanoseconds → microseconds with sub-µs precision kept as decimals.
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1000) {
        format!("{}", ns / 1000)
    } else {
        format!("{}.{:03}", ns / 1000, ns % 1000)
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => ' '.to_string().chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use crate::profile::{ThreadInfo, TraceSpan};

    #[test]
    fn trace_export_emits_metadata_then_spans() {
        let profile = SelfProfile {
            threads: vec![ThreadInfo {
                tid: 1,
                label: "main".to_string(),
            }],
            trace: vec![
                TraceSpan {
                    phase: Phase::Arrival,
                    tid: 1,
                    start_ns: 1_500,
                    dur_ns: 250,
                },
                TraceSpan {
                    phase: Phase::Completion,
                    tid: 1,
                    start_ns: 2_000,
                    dur_ns: 1_000,
                },
            ],
            ..SelfProfile::default()
        };
        let trace = to_chrome_trace(&profile);
        assert!(trace.starts_with('['));
        assert!(trace.trim_end().ends_with(']'));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"ts\": 1.500, \"dur\": 0.250"));
        assert!(trace.contains("\"ts\": 2, \"dur\": 1"));
        let meta_at = trace.find("\"M\"").unwrap();
        let span_at = trace.find("\"X\"").unwrap();
        assert!(meta_at < span_at);
    }

    #[test]
    fn empty_trace_is_valid_json_array() {
        assert_eq!(to_chrome_trace(&SelfProfile::default()), "[]\n");
    }
}
