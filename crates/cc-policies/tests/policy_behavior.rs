//! Behavioral tests of the baseline policies on hand-crafted traces.

use cc_compress::CompressionModel;
use cc_policies::{Enhanced, FaasCache, IceBreaker, Oracle, SitW};
use cc_sim::{ClusterConfig, FixedKeepAlive, Simulation};
use cc_trace::{Trace, TraceFunction};
use cc_types::{Cost, FunctionId, Invocation, MemoryMb, SimDuration, SimTime, StartKind};
use cc_workload::{Catalog, Workload};

fn periodic_trace(functions: &[(u64, u32, u64)], minutes: u64) -> Trace {
    // functions: (exec_ms, mem_mb, period_mins)
    let mut fns = Vec::new();
    let mut invocations = Vec::new();
    for (i, &(exec_ms, mem, period)) in functions.iter().enumerate() {
        let id = FunctionId::new(i as u32);
        fns.push(TraceFunction::new(
            id,
            SimDuration::from_millis(exec_ms),
            MemoryMb::new(mem),
        ));
        let mut t = 0;
        while t < minutes {
            invocations.push(Invocation::new(
                id,
                SimTime::ZERO + SimDuration::from_mins(t),
            ));
            t += period;
        }
    }
    Trace::new(fns, invocations).expect("valid trace")
}

fn workload(trace: &Trace) -> Workload {
    Workload::from_trace(
        trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    )
}

#[test]
fn sitw_prewarms_long_period_functions_instead_of_holding_them() {
    // A 20-minute-period function: SitW's histogram head exceeds its
    // pre-warm threshold, so it should release the instance and pre-warm
    // near the head — landing warm starts at a fraction of the
    // hold-everything cost.
    let trace = periodic_trace(&[(2_000, 256, 20)], 300);
    let w = workload(&trace);
    let config = ClusterConfig::small(1, 1);

    let mut sitw = SitW::new();
    let r_sitw = Simulation::new(config.clone(), &trace, &w).run(&mut sitw);
    let mut hold = FixedKeepAlive::new(SimDuration::from_mins(21), false);
    let r_hold = Simulation::new(config, &trace, &w).run(&mut hold);

    // Warm fractions comparable once the histogram has data…
    assert!(
        r_sitw.warm_fraction() >= r_hold.warm_fraction() - 0.35,
        "sitw warm {} vs hold {}",
        r_sitw.warm_fraction(),
        r_hold.warm_fraction()
    );
    // …at a fraction of the keep-alive spend.
    assert!(
        r_sitw.keep_alive_spend < r_hold.keep_alive_spend.scale(0.8),
        "sitw spend {} not below holding spend {}",
        r_sitw.keep_alive_spend,
        r_hold.keep_alive_spend
    );
}

#[test]
fn faascache_keeps_hot_functions_over_cold_ones() {
    // One hot function (every 2 min) and five lukewarm ones (every 11 min),
    // under a warm cap that fits only a few instances: greedy-dual must
    // privilege the hot one.
    let trace = periodic_trace(
        &[
            (1_000, 1_800, 2),
            (1_000, 1_800, 11),
            (1_000, 1_800, 11),
            (1_000, 1_800, 11),
            (1_000, 1_800, 11),
            (1_000, 1_800, 11),
        ],
        240,
    );
    let w = workload(&trace);
    let config = ClusterConfig::small(1, 1).with_warm_memory_fraction(0.12);
    let mut policy = FaasCache::new();
    let report = Simulation::new(config, &trace, &w).run(&mut policy);

    let warm_of = |f: u32| {
        let recs: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.function == FunctionId::new(f))
            .collect();
        recs.iter().filter(|r| r.kind.is_warm()).count() as f64 / recs.len() as f64
    };
    let hot = warm_of(0);
    let lukewarm: f64 = (1..6).map(warm_of).sum::<f64>() / 5.0;
    assert!(
        hot > lukewarm,
        "hot function warm {hot} should beat lukewarm mean {lukewarm}"
    );
    assert!(
        hot > 0.8,
        "hot function should be almost always warm: {hot}"
    );
}

#[test]
fn icebreaker_prewarms_detected_periods() {
    // Strong 10-minute periodicity over four hours gives the FFT plenty of
    // signal; IceBreaker should beat a no-keep-alive strawman massively.
    let trace = periodic_trace(&[(2_000, 256, 10), (2_000, 256, 10)], 240);
    let w = workload(&trace);
    let config = ClusterConfig::small(1, 1);
    let mut ice = IceBreaker::new();
    let r_ice = Simulation::new(config.clone(), &trace, &w).run(&mut ice);
    let mut none = FixedKeepAlive::new(SimDuration::ZERO, false);
    let r_none = Simulation::new(config, &trace, &w).run(&mut none);
    assert_eq!(r_none.warm_fraction(), 0.0);
    assert!(
        r_ice.warm_fraction() > 0.5,
        "icebreaker warm {} too low on a clean periodic trace",
        r_ice.warm_fraction()
    );
}

#[test]
fn oracle_spends_nearly_nothing_on_never_again_functions() {
    // Every function is invoked exactly once: the oracle must not keep
    // anything alive.
    let trace = periodic_trace(&[(1_000, 256, 1_000), (1_000, 256, 1_000)], 60);
    let w = workload(&trace);
    let mut oracle = Oracle::new(&trace);
    let report = Simulation::new(ClusterConfig::small(1, 1), &trace, &w).run(&mut oracle);
    assert_eq!(report.keep_alive_spend, Cost::ZERO);
    assert_eq!(report.warm_fraction(), 0.0);
}

#[test]
fn enhanced_wrapper_only_compresses_favorable_functions() {
    // Under pressure, the Enhanced wrapper compresses — but only functions
    // whose decompression beats their cold start on the executing arch.
    let trace = periodic_trace(
        &[
            (3_400, 640, 3),
            (900, 256, 3),
            (3_400, 640, 4),
            (900, 256, 4),
        ],
        180,
    );
    let w = workload(&trace);
    let config = ClusterConfig::small(1, 1).with_warm_memory_fraction(0.08);
    let mut policy = Enhanced::new(FixedKeepAlive::ten_minutes()).with_pressure_threshold(0.0);
    let report = Simulation::new(config, &trace, &w).run(&mut policy);
    for r in &report.records {
        if r.kind == StartKind::WarmCompressed {
            assert!(
                w.spec(r.function).compression_favorable(r.arch),
                "{} compressed despite being unfavorable",
                r.function
            );
        }
    }
    assert!(
        report.compression_events > 0,
        "favorable functions exist; some must compress"
    );
}
