//! Classical optimizers: coordinate (gradient) descent, Newton-like
//! descent, random search, and brute force.

use cc_types::{Arch, FnChoice, SimDuration, KEEP_ALIVE_MAX, KEEP_ALIVE_STEP};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Objective, OptOutcome};

/// Steepest-descent over the discrete choice lattice — the paper's
/// "gradient descent" baseline and also the inner optimizer of SRE's
/// sub-problems.
///
/// Each round evaluates every single-choice neighbor of the current
/// solution (restricted to `active` functions if set), takes the best
/// feasible improvement, and applies the paper's tie-break: among
/// candidates within 10% of the best cost, prefer the one with the lowest
/// keep-alive memory.
#[derive(Debug, Clone)]
pub struct CoordinateDescent {
    /// Maximum descent rounds.
    pub max_rounds: usize,
    /// Hard cap on objective evaluations.
    pub eval_budget: u64,
}

impl Default for CoordinateDescent {
    fn default() -> Self {
        CoordinateDescent {
            max_rounds: 64,
            eval_budget: 100_000,
        }
    }
}

impl CoordinateDescent {
    /// Optimizes starting from `start` over all functions.
    pub fn optimize(&self, objective: &dyn Objective, start: Vec<FnChoice>) -> OptOutcome {
        let active: Vec<usize> = (0..start.len()).collect();
        self.optimize_subset(objective, start, &active)
    }

    /// Optimizes only the `active` function indices, holding others fixed
    /// (SRE's sub-problem step).
    pub fn optimize_subset(
        &self,
        objective: &dyn Objective,
        start: Vec<FnChoice>,
        active: &[usize],
    ) -> OptOutcome {
        assert_eq!(
            start.len(),
            objective.num_functions(),
            "solution length must match the objective"
        );
        let mut current = start;
        let mut current_cost = objective.evaluate(&current);
        let mut evaluations = 1u64;
        // Hoisted out of the sweep so the descent allocates once per call,
        // not once per coordinate visit.
        let mut candidates: Vec<(f64, f64, FnChoice)> = Vec::new();

        // Gauss–Seidel sweeps: each round visits every active coordinate
        // and immediately applies its best improving move, so a window can
        // grow by one step per coordinate per round rather than one step
        // per round globally.
        'rounds: for _ in 0..self.max_rounds {
            let mut improved = false;
            for &idx in active {
                // Best improving feasible neighbor of this coordinate, with
                // the paper's tie-break: among moves within 10% of the
                // best, take the one minimizing keep-alive memory.
                candidates.clear();
                for neighbor in &current[idx].neighbors_inline() {
                    if evaluations >= self.eval_budget {
                        break 'rounds;
                    }
                    let old = current[idx];
                    current[idx] = neighbor;
                    evaluations += 1;
                    if objective.is_feasible(&current) {
                        let cost = objective.evaluate(&current);
                        if cost < current_cost {
                            candidates.push((cost, objective.memory_cost(&current), neighbor));
                        }
                    }
                    current[idx] = old;
                }
                let Some(best_cost) = candidates.iter().map(|&(c, _, _)| c).min_by(f64::total_cmp)
                else {
                    continue;
                };
                let threshold = best_cost + 0.1 * best_cost.abs();
                let (_, _, choice) = candidates
                    .drain(..)
                    .filter(|&(c, _, _)| c <= threshold)
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.total_cmp(&b.0)))
                    .expect("best candidate satisfies its own threshold");
                current[idx] = choice;
                current_cost = objective.evaluate(&current);
                evaluations += 1;
                improved = true;
            }
            if !improved {
                break;
            }
        }
        OptOutcome {
            solution: current,
            cost: current_cost,
            evaluations,
        }
    }
}

/// A Newton-flavored descent: uses first and second differences along the
/// keep-alive axis to jump multiple steps at once, plus plain flips for the
/// binary dimensions.
///
/// On the paper's rugged discrete space the quadratic model misleads —
/// which is the point of including it in the Fig. 3 comparison.
#[derive(Debug, Clone)]
pub struct NewtonDescent {
    /// Maximum descent rounds.
    pub max_rounds: usize,
    /// Hard cap on objective evaluations.
    pub eval_budget: u64,
}

impl Default for NewtonDescent {
    fn default() -> Self {
        NewtonDescent {
            max_rounds: 32,
            eval_budget: 100_000,
        }
    }
}

impl NewtonDescent {
    /// Optimizes starting from `start`.
    pub fn optimize(&self, objective: &dyn Objective, start: Vec<FnChoice>) -> OptOutcome {
        let mut current = start;
        let mut current_cost = objective.evaluate(&current);
        let mut evaluations = 1u64;

        'outer: for _ in 0..self.max_rounds {
            let mut improved = false;
            for idx in 0..current.len() {
                if evaluations >= self.eval_budget {
                    break 'outer;
                }
                // Newton step along keep-alive using central differences.
                let base = current[idx];
                let step = KEEP_ALIVE_STEP;
                let up = FnChoice {
                    keep_alive: (base.keep_alive + step).min(KEEP_ALIVE_MAX),
                    ..base
                };
                let down = FnChoice {
                    keep_alive: base.keep_alive.saturating_sub(step),
                    ..base
                };
                let f0 = current_cost;
                current[idx] = up;
                let fup = objective.evaluate(&current);
                current[idx] = down;
                let fdown = objective.evaluate(&current);
                current[idx] = base;
                evaluations += 2;

                let grad = (fup - fdown) / 2.0;
                let hess = fup - 2.0 * f0 + fdown;
                if grad.abs() > 1e-12 {
                    let steps = if hess > 1e-12 {
                        (-(grad / hess)).round()
                    } else {
                        -grad.signum() * 4.0
                    };
                    let steps = steps.clamp(-60.0, 60.0);
                    if steps != 0.0 {
                        let mins = base.keep_alive.as_mins_f64() + steps;
                        let target = SimDuration::from_mins(mins.clamp(0.0, 60.0) as u64);
                        let candidate = FnChoice {
                            keep_alive: target,
                            ..base
                        };
                        current[idx] = candidate;
                        evaluations += 1;
                        if objective.is_feasible(&current) {
                            let cost = objective.evaluate(&current);
                            if cost < current_cost {
                                current_cost = cost;
                                improved = true;
                                continue;
                            }
                        }
                        current[idx] = base;
                    }
                }

                // Binary dimensions: plain flips.
                for flip in [
                    FnChoice {
                        compress: !base.compress,
                        ..base
                    },
                    FnChoice {
                        arch: base.arch.other(),
                        ..base
                    },
                ] {
                    current[idx] = flip;
                    evaluations += 1;
                    if objective.is_feasible(&current) {
                        let cost = objective.evaluate(&current);
                        if cost < current_cost {
                            current_cost = cost;
                            improved = true;
                            break;
                        }
                    }
                    current[idx] = base;
                }
            }
            if !improved {
                break;
            }
        }
        OptOutcome {
            solution: current,
            cost: current_cost,
            evaluations,
        }
    }
}

/// Uniform random feasible sampling — the floor any real optimizer must
/// beat.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Number of samples to draw.
    pub samples: u64,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSearch {
    /// Draws `samples` random solutions and keeps the best feasible one
    /// (falling back to `start` if none are feasible).
    pub fn optimize(&self, objective: &dyn Objective, start: Vec<FnChoice>) -> OptOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best = start;
        let mut best_cost = objective.evaluate(&best);
        let mut evaluations = 1u64;
        for _ in 0..self.samples {
            let candidate: Vec<FnChoice> = (0..objective.num_functions())
                .map(|_| random_choice(&mut rng))
                .collect();
            evaluations += 1;
            if objective.is_feasible(&candidate) {
                let cost = objective.evaluate(&candidate);
                if cost < best_cost {
                    best_cost = cost;
                    best = candidate;
                }
            }
        }
        OptOutcome {
            solution: best,
            cost: best_cost,
            evaluations,
        }
    }
}

/// Draws a uniformly random choice tuple.
pub(crate) fn random_choice(rng: &mut StdRng) -> FnChoice {
    FnChoice::new(
        Arch::from_bit(rng.gen_range(0..2)),
        rng.gen_bool(0.5),
        SimDuration::from_mins(rng.gen_range(0..=60)),
    )
}

/// Exact enumeration over a restricted keep-alive menu — Fig. 3's Oracle.
///
/// The space is `(2 × 2 × keep_alive_options.len())^N`; callers are
/// responsible for keeping `N` tiny.
///
/// # Panics
///
/// Panics if the space exceeds 20 million points (a brute force that large
/// is a bug, not an experiment).
pub fn brute_force(objective: &dyn Objective, keep_alive_options: &[SimDuration]) -> OptOutcome {
    let n = objective.num_functions();
    let per_fn = 4 * keep_alive_options.len() as u128;
    let total = per_fn.checked_pow(n as u32).unwrap_or(u128::MAX);
    assert!(
        total <= 20_000_000,
        "brute force space {total} too large for exact search"
    );

    let mut best: Option<(f64, Vec<FnChoice>)> = None;
    let mut evaluations = 0u64;
    let mut indices = vec![0usize; n];
    let options: Vec<FnChoice> = keep_alive_options
        .iter()
        .flat_map(|&ka| {
            [
                FnChoice::new(Arch::X86, false, ka),
                FnChoice::new(Arch::X86, true, ka),
                FnChoice::new(Arch::Arm, false, ka),
                FnChoice::new(Arch::Arm, true, ka),
            ]
        })
        .collect();

    loop {
        let candidate: Vec<FnChoice> = indices.iter().map(|&i| options[i]).collect();
        evaluations += 1;
        if objective.is_feasible(&candidate) {
            let cost = objective.evaluate(&candidate);
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, candidate));
            }
        }
        // Odometer increment.
        let mut digit = 0;
        loop {
            if digit == n {
                let (cost, solution) = best.expect("at least one feasible point evaluated");
                return OptOutcome {
                    solution,
                    cost,
                    evaluations,
                };
            }
            indices[digit] += 1;
            if indices[digit] < options.len() {
                break;
            }
            indices[digit] = 0;
            digit += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::testing::{optimum, Bowl};

    fn bowl(n: usize) -> Bowl {
        Bowl {
            n,
            target_mins: 7.0,
            max_total_mins: None,
        }
    }

    #[test]
    fn coordinate_descent_finds_bowl_optimum() {
        let b = bowl(5);
        let start = vec![FnChoice::production_default(); 5];
        let out = CoordinateDescent::default().optimize(&b, start);
        assert_eq!(out.cost, 0.0, "solution {:?}", out.solution);
        assert_eq!(out.solution, optimum(&b));
    }

    #[test]
    fn coordinate_descent_respects_budget_constraint() {
        let b = Bowl {
            n: 4,
            target_mins: 30.0,
            max_total_mins: Some(60.0),
        };
        let start = vec![FnChoice::drop_now(Arch::X86); 4];
        let out = CoordinateDescent::default().optimize(&b, start);
        assert!(b.is_feasible(&out.solution));
        let total: f64 = out
            .solution
            .iter()
            .map(|c| c.keep_alive.as_mins_f64())
            .sum();
        assert!(total <= 60.0);
    }

    #[test]
    fn coordinate_descent_subset_freezes_inactive() {
        let b = bowl(4);
        let start = vec![FnChoice::production_default(); 4];
        let out = CoordinateDescent::default().optimize_subset(&b, start.clone(), &[0, 1]);
        assert_eq!(out.solution[2], start[2]);
        assert_eq!(out.solution[3], start[3]);
        assert_ne!(out.solution[0], start[0]);
    }

    #[test]
    fn newton_descent_improves() {
        let b = bowl(4);
        let start = vec![FnChoice::new(Arch::X86, false, SimDuration::from_mins(40)); 4];
        let start_cost = b.evaluate(&start);
        let out = NewtonDescent::default().optimize(&b, start);
        assert!(out.cost < start_cost, "{} !< {start_cost}", out.cost);
        // The quadratic model along keep-alive should land each function on
        // the target.
        for c in &out.solution {
            assert_eq!(c.keep_alive, SimDuration::from_mins(7));
        }
    }

    #[test]
    fn random_search_improves_over_bad_start() {
        let b = bowl(2);
        let start = vec![FnChoice::new(Arch::X86, false, SimDuration::from_mins(60)); 2];
        let start_cost = b.evaluate(&start);
        let out = RandomSearch {
            samples: 500,
            seed: 1,
        }
        .optimize(&b, start);
        assert!(out.cost < start_cost);
    }

    #[test]
    fn brute_force_is_exact() {
        let b = Bowl {
            n: 2,
            target_mins: 10.0,
            max_total_mins: None,
        };
        let menu = [0u64, 5, 10, 20].map(SimDuration::from_mins);
        let out = brute_force(&b, &menu);
        assert_eq!(out.cost, 0.0);
        for c in &out.solution {
            assert_eq!(c.keep_alive, SimDuration::from_mins(10));
            assert_eq!(c.arch, Arch::Arm);
            assert!(c.compress);
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn brute_force_rejects_huge_spaces() {
        let b = bowl(20);
        let menu: Vec<SimDuration> = (0..=60).map(SimDuration::from_mins).collect();
        let _ = brute_force(&b, &menu);
    }

    #[test]
    fn eval_budget_is_respected() {
        let b = bowl(50);
        let start = vec![FnChoice::production_default(); 50];
        let out = CoordinateDescent {
            max_rounds: 1000,
            eval_budget: 300,
        }
        .optimize(&b, start);
        assert!(out.evaluations <= 302, "{}", out.evaluations);
    }
}
