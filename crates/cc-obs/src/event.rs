//! The typed event stream the simulator emits, and the sink trait that
//! receives it.
//!
//! The engine is generic over an [`EventSink`]; the sink's associated
//! `ENABLED` constant lets every emission site compile down to nothing for
//! [`NullSink`] — the event value is never even constructed, so the
//! disabled path is byte-identical to an uninstrumented engine.

use cc_types::{Arch, Cost, FunctionId, MemoryMb, NodeId, SimDuration, SimTime, StartKind, WarmId};

/// Why a warm instance left the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseReason {
    /// Consumed by a warm start.
    Reused,
    /// Evicted under memory pressure or by a policy command.
    Evicted,
    /// Its keep-alive window elapsed.
    Expired,
}

impl ReleaseReason {
    /// Stable lowercase label (used by the exporters).
    pub fn label(self) -> &'static str {
        match self {
            ReleaseReason::Reused => "reused",
            ReleaseReason::Evicted => "evicted",
            ReleaseReason::Expired => "expired",
        }
    }
}

/// One round of the per-interval optimizer (SRE or the full-space descent
/// ablation), as reported by the policy through
/// `Scheduler::drain_optimizer_rounds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerRound {
    /// Round ordinal within the interval (0-based).
    pub round: u32,
    /// Sub-problems sampled this round (1 for full-space descent).
    pub subproblems: u32,
    /// Choice dimensions optimized this round (3 × sampled functions).
    pub dimensions: u32,
    /// Objective value of the spliced working solution after the round.
    pub objective: f64,
    /// Coordinates whose value changed versus the round's start.
    pub accepted_moves: u64,
    /// Objective evaluations consumed by the round's sub-problem searches.
    pub evaluations: u64,
}

/// The per-interval sample the engine already computes for `SimReport`'s
/// series, surfaced as one event per tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSample {
    /// Tick ordinal (0 at simulated time zero).
    pub index: u64,
    /// Keep-alive dollars spent since the previous tick (net of refunds).
    pub spend_delta_dollars: f64,
    /// Live warm instances at the tick.
    pub warm_pool: u64,
    /// Live compressed instances at the tick.
    pub compressed: u64,
    /// Fraction of execution cores busy at the tick.
    pub utilization: f64,
    /// Compressed admissions since the previous tick.
    pub compression_events_delta: u64,
    /// Invocations waiting for capacity at the tick.
    pub pending: u64,
}

/// A typed simulator event.
///
/// Every variant carries its simulated timestamp `at`. Events are emitted
/// in engine processing order, which is non-decreasing in `at` with one
/// exception: [`Event::CompressionFinished`] is emitted at admission time
/// (the moment its completion instant becomes known) but timestamped with
/// that future instant — consumers that need strict ordering should sort
/// by `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A trace invocation arrived.
    Arrival {
        /// Arrival time.
        at: SimTime,
        /// The invoked function.
        function: FunctionId,
    },
    /// An arrival could not be placed immediately and joined the queue
    /// (emitted once per invocation, not per retry).
    Queued {
        /// When the invocation joined the queue.
        at: SimTime,
        /// The invoked function.
        function: FunctionId,
        /// Queue depth after joining.
        depth: u64,
    },
    /// An execution started (the simulator knows all timing components up
    /// front, so the whole span is described here).
    ExecutionStarted {
        /// Start time (arrival + wait).
        at: SimTime,
        /// The function.
        function: FunctionId,
        /// Hosting node.
        node: NodeId,
        /// Node architecture.
        arch: Arch,
        /// Cold, warm-compressed (pays decompression), or warm.
        kind: StartKind,
        /// Queueing wait already paid.
        wait: SimDuration,
        /// Cold-start or decompression penalty.
        start_penalty: SimDuration,
        /// Execution time.
        execution: SimDuration,
    },
    /// A finished (or pre-warmed) instance entered the warm pool.
    InstanceAdmitted {
        /// Admission time.
        at: SimTime,
        /// Pool handle.
        id: WarmId,
        /// The function.
        function: FunctionId,
        /// Hosting node.
        node: NodeId,
        /// Node architecture.
        arch: Arch,
        /// Stored compressed.
        compressed: bool,
        /// Footprint charged to the node.
        memory: MemoryMb,
        /// Keep-alive expiry instant.
        expiry: SimTime,
        /// Budget reserved for the window.
        reserved: Cost,
    },
    /// A warm instance left the pool (reuse, eviction, or expiry).
    InstanceReleased {
        /// Release time.
        at: SimTime,
        /// Pool handle.
        id: WarmId,
        /// The function.
        function: FunctionId,
        /// Hosting node.
        node: NodeId,
        /// Footprint released.
        memory: MemoryMb,
        /// Was stored compressed.
        compressed: bool,
        /// When the instance was admitted (span start for exporters).
        since: SimTime,
        /// Why it left.
        reason: ReleaseReason,
    },
    /// Background compression of a freshly admitted instance began.
    CompressionStarted {
        /// Admission time.
        at: SimTime,
        /// Pool handle.
        id: WarmId,
        /// The function.
        function: FunctionId,
        /// Hosting node.
        node: NodeId,
        /// When compression completes (reuses before this pay nothing).
        ready_at: SimTime,
    },
    /// Background compression completed. Emitted at admission (see the
    /// enum docs); `at` is the completion instant.
    CompressionFinished {
        /// Completion instant.
        at: SimTime,
        /// Pool handle.
        id: WarmId,
        /// The function.
        function: FunctionId,
        /// Hosting node.
        node: NodeId,
    },
    /// The ledger granted (part of) a keep-alive reservation.
    BudgetDebit {
        /// Reservation time.
        at: SimTime,
        /// What the keep-alive decision asked for.
        requested: Cost,
        /// What the budget afforded (equal to `requested` when unlimited).
        granted: Cost,
    },
    /// The ledger was refunded an unused reservation tail.
    BudgetCredit {
        /// Refund time.
        at: SimTime,
        /// Amount returned to the balance.
        amount: Cost,
    },
    /// A pre-warm command found no node with capacity and was dropped.
    PrewarmDropped {
        /// Tick time.
        at: SimTime,
        /// The function that was to be warmed.
        function: FunctionId,
        /// Requested architecture.
        arch: Arch,
    },
    /// One optimizer round finished inside the policy's interval callback.
    OptimizerRound {
        /// Tick time.
        at: SimTime,
        /// Round telemetry.
        round: OptimizerRound,
    },
    /// Per-interval engine sample (mirrors `SimReport`'s series).
    IntervalSampled {
        /// Tick time.
        at: SimTime,
        /// The sampled values.
        sample: IntervalSample,
    },
}

impl Event {
    /// The event's simulated timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            Event::Arrival { at, .. }
            | Event::Queued { at, .. }
            | Event::ExecutionStarted { at, .. }
            | Event::InstanceAdmitted { at, .. }
            | Event::InstanceReleased { at, .. }
            | Event::CompressionStarted { at, .. }
            | Event::CompressionFinished { at, .. }
            | Event::BudgetDebit { at, .. }
            | Event::BudgetCredit { at, .. }
            | Event::PrewarmDropped { at, .. }
            | Event::OptimizerRound { at, .. }
            | Event::IntervalSampled { at, .. } => at,
        }
    }

    /// Stable lowercase type tag (used by the exporters).
    pub fn tag(&self) -> &'static str {
        match self {
            Event::Arrival { .. } => "arrival",
            Event::Queued { .. } => "queued",
            Event::ExecutionStarted { .. } => "exec_start",
            Event::InstanceAdmitted { .. } => "warm_admit",
            Event::InstanceReleased { .. } => "warm_release",
            Event::CompressionStarted { .. } => "compress_start",
            Event::CompressionFinished { .. } => "compress_finish",
            Event::BudgetDebit { .. } => "budget_debit",
            Event::BudgetCredit { .. } => "budget_credit",
            Event::PrewarmDropped { .. } => "prewarm_dropped",
            Event::OptimizerRound { .. } => "opt_round",
            Event::IntervalSampled { .. } => "interval",
        }
    }
}

/// Receives simulator events.
///
/// The engine is monomorphized over the sink type, and every emission site
/// is guarded by `S::ENABLED`, so a [`NullSink`] run contains no telemetry
/// code at all — not even event construction.
pub trait EventSink {
    /// Whether this sink observes anything. Emission sites skip event
    /// construction entirely when `false`.
    const ENABLED: bool = true;

    /// Receives one event.
    fn record(&mut self, event: &Event);
}

/// The disabled sink: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }
}

/// Fans one event stream out to two sinks (compose for more).
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn record(&mut self, event: &Event) {
        if A::ENABLED {
            self.0.record(event);
        }
        if B::ENABLED {
            self.1.record(event);
        }
    }
}

/// Retains every event in memory (tests and small analyses).
#[derive(Debug, Default)]
pub struct BufferSink {
    /// The recorded events, in emission order.
    pub events: Vec<Event>,
}

impl BufferSink {
    /// Creates an empty buffer.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }
}

impl EventSink for BufferSink {
    fn record(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(us: u64) -> Event {
        Event::Arrival {
            at: SimTime::from_micros(us),
            function: FunctionId::new(7),
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        fn enabled<S: EventSink>() -> bool {
            S::ENABLED
        }
        assert!(!enabled::<NullSink>());
        assert!(enabled::<BufferSink>());
        // A tee is enabled iff either side is.
        assert!(enabled::<Tee<NullSink, BufferSink>>());
        assert!(!enabled::<Tee<NullSink, NullSink>>());
    }

    #[test]
    fn tee_duplicates_events() {
        let mut tee = Tee(BufferSink::new(), BufferSink::new());
        tee.record(&arrival(5));
        assert_eq!(tee.0.events.len(), 1);
        assert_eq!(tee.1.events, tee.0.events);
    }

    #[test]
    fn timestamps_and_tags_are_exposed() {
        let e = arrival(42);
        assert_eq!(e.at(), SimTime::from_micros(42));
        assert_eq!(e.tag(), "arrival");
        assert_eq!(ReleaseReason::Expired.label(), "expired");
    }

    #[test]
    fn mut_ref_sinks_forward() {
        let mut buffer = BufferSink::new();
        {
            let mut as_ref = &mut buffer;
            EventSink::record(&mut as_ref, &arrival(1));
        }
        assert_eq!(buffer.events.len(), 1);
    }
}
