//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace ships this minimal, dependency-free implementation of
//! the small `rand` 0.8 API surface it actually uses:
//!
//! - [`rngs::StdRng`]: a xoshiro256++ generator seeded through SplitMix64
//!   (`seed_from_u64`). Deterministic across platforms and runs — which is
//!   the property the simulator's reproducibility story rests on. The
//!   stream differs from upstream `rand`'s ChaCha12-based `StdRng`; all
//!   seeds/thresholds in this repository were (re)calibrated against this
//!   generator.
//! - [`Rng`]: `gen`, `gen_range` (integer and float, half-open and
//!   inclusive), `gen_bool`, `fill`.
//! - [`SeedableRng`]: `from_seed`, `seed_from_u64`, `from_entropy`.
//!
//! Everything is `no_std`-friendly except for nothing: it is plain `std`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64` via SplitMix64 expansion (the
    /// same construction upstream `rand` documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator from a process-level entropy source. This
    /// offline stand-in derives it from the system clock — adequate for
    /// non-cryptographic simulation seeding only.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// SplitMix64: seed expander (Steele, Lea, Flood 2014).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = mul_shift(rng.next_u64(), span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full 64-bit domain
                }
                let offset = mul_shift(rng.next_u64(), span as u64);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform `u64` onto `[0, span)` with a widening multiply
/// (Lemire's multiply-shift; bias is below 2^-64 · span, negligible for
/// simulation workloads and fully deterministic).
fn mul_shift(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna). Not cryptographic; excellent statistical quality and very
    /// fast, with a deterministic cross-platform stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    0x2545f4914f6cdd1d,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seed_from_u64_uses_full_state() {
        // Zero seed must not produce the all-zero degenerate state.
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
