//! Fig. 14: sensitivity to the x86/ARM node mix.
//!
//! Paper result: across node mixes, CodeCrunch stays ≈35% closer to the
//! Oracle than SitW does, and service time rises as x86 nodes disappear
//! (most functions prefer x86).

use serde_json::json;

use cc_policies::{Oracle, SitW};
use codecrunch::CodeCrunch;

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// Fig. 14 experiment.
pub struct Fig14;

impl Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }

    fn title(&self) -> &'static str {
        "service time across x86/ARM node mixes: SitW vs CodeCrunch vs Oracle (Fig. 14)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let total = scale.x86_nodes + scale.arm_nodes;
        // Sweep the x86 share while holding the total node count.
        let mixes: Vec<(u32, u32)> = (1..total).map(|x86| (x86, total - x86)).collect();

        let mut lines = vec![format!(
            "{:<10} {:>10} {:>12} {:>10} {:>18}",
            "mix", "sitw (s)", "crunch (s)", "oracle (s)", "crunch-vs-sitw gap"
        )];
        let mut rows = Vec::new();
        for (x86, arm) in mixes {
            let mut cluster = scale.cluster();
            cluster.x86_nodes = x86;
            cluster.arm_nodes = arm;
            let budget = sitw_budget_per_interval(&trace, &workload, &cluster);
            let config = cluster.with_budget(budget);

            let mut sitw = SitW::new();
            let mut crunch = CodeCrunch::new();
            let mut oracle = Oracle::new(&trace);
            let r_sitw = run_policy(&mut sitw, &config, &trace, &workload);
            let r_crunch = run_policy(&mut crunch, &config, &trace, &workload);
            let r_oracle = run_policy(&mut oracle, &config, &trace, &workload);

            let gap_sitw = r_sitw.mean_service_time_secs() - r_oracle.mean_service_time_secs();
            let gap_crunch = r_crunch.mean_service_time_secs() - r_oracle.mean_service_time_secs();
            let closeness = if gap_sitw > 1e-9 {
                1.0 - gap_crunch / gap_sitw
            } else {
                0.0
            };
            lines.push(format!(
                "{:<10} {:>10.3} {:>12.3} {:>10.3} {:>17.1}%",
                format!("{x86}x86/{arm}arm"),
                r_sitw.mean_service_time_secs(),
                r_crunch.mean_service_time_secs(),
                r_oracle.mean_service_time_secs(),
                closeness * 100.0
            ));
            rows.push(json!({
                "x86_nodes": x86,
                "arm_nodes": arm,
                "sitw_secs": r_sitw.mean_service_time_secs(),
                "codecrunch_secs": r_crunch.mean_service_time_secs(),
                "oracle_secs": r_oracle.mean_service_time_secs(),
                "oracle_gap_closed": closeness,
            }));
        }
        lines.push(
            "(paper: CodeCrunch on average 35% closer to Oracle than SitW across mixes)".to_owned(),
        );

        ExperimentOutput::new(self.id(), lines, json!({ "rows": rows }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_lower_bound_in_every_mix() {
        let out = Fig14.run(&Scale::smoke());
        for row in out.data["rows"].as_array().unwrap() {
            let oracle = row["oracle_secs"].as_f64().unwrap();
            assert!(row["sitw_secs"].as_f64().unwrap() >= oracle * 0.98);
            assert!(row["codecrunch_secs"].as_f64().unwrap() >= oracle * 0.98);
        }
    }
}
