//! The profiling runtime: monomorphized probes, thread-local span stacks,
//! and the global aggregation registry.
//!
//! The design mirrors `cc-obs`'s `EventSink`: code that wants to be
//! profiled is generic over a [`Profiler`] type, every probe site is
//! guarded by the profiler's `ENABLED` associated constant, and the
//! [`NullProfiler`] instantiation compiles every probe away — no `Instant`
//! reads, no thread-local access, no branch. The [`WallProfiler`]
//! instantiation records into a per-thread span stack and flat aggregation
//! tables (arrays indexed by [`Phase`] discriminant, no hashing).
//!
//! Type-erased call sites (policies behind `dyn Scheduler`, the shard
//! driver's closures) cannot receive the generic parameter; they use
//! [`DynScope`], which checks one relaxed atomic ([`wall_enabled`]) per
//! span. Those sites are coarse — an SRE round, a whole shard job — so the
//! load is amortized over millions of probe-free instructions.
//!
//! Aggregation: each thread accumulates into its own table; a thread's
//! table merges into the global registry when the thread exits (TLS drop)
//! or when [`take_profile`] flushes the calling thread explicitly. The
//! pattern fits the simulator's thread topology: scoped worker threads
//! (feeder, encoders, mux, telemetry, shard workers) all join before the
//! run returns, so by collection time every table has landed.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::alloc::{self, UNATTRIBUTED_PHASE};
use crate::phase::{PerfCounter, Phase};
use crate::profile::{PhaseRow, SelfProfile, ThreadInfo, TraceSpan};

/// Cap on retained wall-trace spans per thread (~48 MB at the cap); spans
/// beyond it are counted in `trace_events_dropped`, never silently lost.
const TRACE_CAP_PER_THREAD: usize = 1 << 21;

/// Receives profiling probes. Monomorphized: probe sites are generic over
/// the profiler type and guarded by [`Profiler::ENABLED`], so the
/// [`NullProfiler`] instantiation contains no profiling code at all.
///
/// All methods are static — the profiler carries no value. State lives in
/// thread-local storage, which is what lets one type parameter cover every
/// thread of a pipelined run without plumbing handles around.
pub trait Profiler: 'static {
    /// Whether this profiler observes anything. Probe sites skip all work
    /// (including `Instant` reads) when `false`.
    const ENABLED: bool;

    /// Opens a span of `phase` on the calling thread.
    fn enter(phase: Phase);

    /// Closes the most recently opened span on the calling thread.
    fn exit();

    /// Accumulates `n` onto a hot-path counter.
    fn add(counter: PerfCounter, n: u64);

    /// Labels the calling thread for the wall-trace export.
    fn thread_label(label: &'static str);

    /// RAII span: enters now, exits on drop.
    #[inline(always)]
    fn scope(phase: Phase) -> Scope<Self>
    where
        Self: Sized,
    {
        Scope::new(phase)
    }
}

/// The disabled profiler: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    const ENABLED: bool = false;

    #[inline(always)]
    fn enter(_phase: Phase) {}

    #[inline(always)]
    fn exit() {}

    #[inline(always)]
    fn add(_counter: PerfCounter, _n: u64) {}

    #[inline(always)]
    fn thread_label(_label: &'static str) {}
}

/// The recording profiler: wall-clock spans into thread-local tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallProfiler;

impl Profiler for WallProfiler {
    const ENABLED: bool = true;

    #[inline]
    fn enter(phase: Phase) {
        enter_impl(phase);
    }

    #[inline]
    fn exit() {
        exit_impl();
    }

    #[inline]
    fn add(counter: PerfCounter, n: u64) {
        LOCAL.with_borrow_mut(|local| local.counters[counter.index()] += n);
    }

    fn thread_label(label: &'static str) {
        LOCAL.with_borrow_mut(|local| local.label = Some(label.to_string()));
    }
}

/// RAII span guard, monomorphized over the profiler. Not `Send`: a span
/// must close on the thread that opened it (each thread has its own
/// stack).
pub struct Scope<P: Profiler> {
    _profiler: PhantomData<fn() -> P>,
    _not_send: PhantomData<*const ()>,
}

impl<P: Profiler> Scope<P> {
    /// Opens a span of `phase` (a no-op when `P::ENABLED` is false).
    #[inline(always)]
    pub fn new(phase: Phase) -> Scope<P> {
        if P::ENABLED {
            P::enter(phase);
        }
        Scope {
            _profiler: PhantomData,
            _not_send: PhantomData,
        }
    }
}

impl<P: Profiler> Drop for Scope<P> {
    #[inline(always)]
    fn drop(&mut self) {
        if P::ENABLED {
            P::exit();
        }
    }
}

/// RAII span guard for type-erased call sites (code that cannot carry the
/// `Profiler` type parameter, e.g. behind `dyn` traits). Records through
/// [`WallProfiler`] iff [`wall_enabled`] — one relaxed atomic load when
/// profiling is off, so it belongs on coarse spans (an optimizer round, a
/// shard job), not per-event hot paths.
pub struct DynScope {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl DynScope {
    /// Opens a span of `phase` iff profiling is enabled.
    #[inline]
    pub fn new(phase: Phase) -> DynScope {
        let active = wall_enabled();
        if active {
            WallProfiler::enter(phase);
        }
        DynScope {
            active,
            _not_send: PhantomData,
        }
    }
}

impl Drop for DynScope {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            WallProfiler::exit();
        }
    }
}

/// Counter accumulation for type-erased call sites (see [`DynScope`]).
#[inline]
pub fn dyn_add(counter: PerfCounter, n: u64) {
    if wall_enabled() {
        WallProfiler::add(counter, n);
    }
}

/// Thread labeling for type-erased call sites (see [`DynScope`]).
pub fn dyn_thread_label(label: &'static str) {
    if wall_enabled() {
        WallProfiler::thread_label(label);
    }
}

static WALL_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_CAPTURE: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Turns the runtime profiling flag on or off. The flag gates only the
/// *dynamic* probes ([`DynScope`], [`dyn_add`]); monomorphized
/// [`WallProfiler`] probes record unconditionally. Binaries running a
/// profiled session set it so both families record together.
pub fn set_wall_enabled(on: bool) {
    if on {
        epoch();
    }
    WALL_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether a profiled session is active (the dynamic-probe gate).
#[inline]
pub fn wall_enabled() -> bool {
    WALL_ENABLED.load(Ordering::Relaxed)
}

/// Turns per-span wall-trace retention on or off (off by default: the
/// aggregate tables are always maintained, individual spans only when a
/// Perfetto export is wanted).
pub fn set_trace_capture(on: bool) {
    if on {
        epoch();
    }
    TRACE_CAPTURE.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Clone, Copy, Default)]
struct PhaseStat {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    max_ns: u64,
}

struct Frame {
    phase: Phase,
    start: Instant,
    child_ns: u64,
}

struct RawSpan {
    phase: Phase,
    start_ns: u64,
    dur_ns: u64,
}

/// One thread's profiling state. Merges into [`GLOBAL`] on thread exit.
struct LocalProf {
    tid: u32,
    label: Option<String>,
    registered: bool,
    stack: Vec<Frame>,
    stats: [PhaseStat; Phase::COUNT],
    counters: [u64; PerfCounter::COUNT],
    trace: Vec<RawSpan>,
    trace_dropped: u64,
    unbalanced_exits: u64,
}

impl LocalProf {
    fn new() -> LocalProf {
        LocalProf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            label: std::thread::current().name().map(str::to_string),
            registered: false,
            stack: Vec::new(),
            stats: [PhaseStat::default(); Phase::COUNT],
            counters: [0; PerfCounter::COUNT],
            trace: Vec::new(),
            trace_dropped: 0,
            unbalanced_exits: 0,
        }
    }

    /// Moves everything recorded so far into the global registry, leaving
    /// open frames on the stack (they land when they close).
    fn flush_into(&mut self, global: &mut GlobalData) {
        for (into, from) in global.stats.iter_mut().zip(&mut self.stats) {
            into.count += from.count;
            into.total_ns += from.total_ns;
            into.self_ns += from.self_ns;
            into.max_ns = into.max_ns.max(from.max_ns);
            *from = PhaseStat::default();
        }
        for (into, from) in global.counters.iter_mut().zip(&mut self.counters) {
            *into += *from;
            *from = 0;
        }
        if !self.registered || self.label.is_some() {
            let label = self
                .label
                .take()
                .unwrap_or_else(|| format!("thread-{}", self.tid));
            match global.threads.iter_mut().find(|t| t.tid == self.tid) {
                Some(info) => info.label = label,
                None => global.threads.push(ThreadInfo {
                    tid: self.tid,
                    label,
                }),
            }
            self.registered = true;
        }
        global.trace.extend(self.trace.drain(..).map(|s| TraceSpan {
            phase: s.phase,
            tid: self.tid,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
        }));
        global.trace_dropped += std::mem::take(&mut self.trace_dropped);
        global.unbalanced_exits += std::mem::take(&mut self.unbalanced_exits);
    }
}

impl Drop for LocalProf {
    fn drop(&mut self) {
        let mut global = lock_global();
        self.flush_into(&mut global);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalProf> = RefCell::new(LocalProf::new());
}

struct GlobalData {
    stats: [PhaseStat; Phase::COUNT],
    counters: [u64; PerfCounter::COUNT],
    threads: Vec<ThreadInfo>,
    trace: Vec<TraceSpan>,
    trace_dropped: u64,
    unbalanced_exits: u64,
}

impl GlobalData {
    const fn new() -> GlobalData {
        GlobalData {
            stats: [PhaseStat {
                count: 0,
                total_ns: 0,
                self_ns: 0,
                max_ns: 0,
            }; Phase::COUNT],
            counters: [0; PerfCounter::COUNT],
            threads: Vec::new(),
            trace: Vec::new(),
            trace_dropped: 0,
            unbalanced_exits: 0,
        }
    }
}

static GLOBAL: Mutex<GlobalData> = Mutex::new(GlobalData::new());

fn lock_global() -> std::sync::MutexGuard<'static, GlobalData> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn enter_impl(phase: Phase) {
    let start = Instant::now();
    LOCAL.with_borrow_mut(|local| {
        local.stack.push(Frame {
            phase,
            start,
            child_ns: 0,
        });
    });
    alloc::set_current_phase(phase.index() as u8);
}

fn exit_impl() {
    let end = Instant::now();
    LOCAL.with_borrow_mut(|local| {
        let Some(frame) = local.stack.pop() else {
            local.unbalanced_exits += 1;
            alloc::set_current_phase(UNATTRIBUTED_PHASE);
            return;
        };
        let dur_ns = end
            .saturating_duration_since(frame.start)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        // Profiler-internal bookkeeping below can allocate (the trace
        // buffer's capacity doublings are MiB-scale); park attribution on
        // the unattributed bucket so a `--profile-trace` capture charges
        // identical per-phase bytes to a plain `--profile-out` one.
        alloc::set_current_phase(UNATTRIBUTED_PHASE);
        let stat = &mut local.stats[frame.phase.index()];
        stat.count += 1;
        stat.total_ns += dur_ns;
        stat.self_ns += dur_ns.saturating_sub(frame.child_ns);
        stat.max_ns = stat.max_ns.max(dur_ns);
        if TRACE_CAPTURE.load(Ordering::Relaxed) {
            if local.trace.len() < TRACE_CAP_PER_THREAD {
                let start_ns = frame
                    .start
                    .saturating_duration_since(epoch())
                    .as_nanos()
                    .min(u128::from(u64::MAX)) as u64;
                local.trace.push(RawSpan {
                    phase: frame.phase,
                    start_ns,
                    dur_ns,
                });
            } else {
                local.trace_dropped += 1;
            }
        }
        if let Some(parent) = local.stack.last_mut() {
            parent.child_ns += dur_ns;
            alloc::set_current_phase(parent.phase.index() as u8);
        }
    });
}

/// Merges the calling thread's tables into the global registry now.
///
/// Thread-local state also merges when a thread exits, but a parent
/// waiting on `std::thread::scope` can resume *before* the children's TLS
/// destructors run — so a worker closure that should be visible in a
/// profile collected right after the scope must end with an explicit
/// flush. Cheap enough for per-job use (one mutex lock); gate on
/// `P::ENABLED` / [`wall_enabled`] at probe sites.
pub fn flush_thread() {
    LOCAL.with_borrow_mut(|local| {
        let mut global = lock_global();
        local.flush_into(&mut global);
    });
}

/// Flushes the calling thread's tables into the registry and drains the
/// registry into a [`SelfProfile`].
///
/// `label` names the captured session (scenario, sink, flags — whatever
/// makes the profile comparable later); `wall_ns` is the caller-measured
/// wall clock the profile accounts against (the self-time coverage ratio
/// in the human table divides by it). Allocation totals are read *and
/// reset* along with the span tables, so back-to-back sessions don't
/// bleed into each other.
///
/// Worker threads merge when they exit; call this after every profiled
/// thread has joined (true for the engine's scoped pipelines) or their
/// spans land in the *next* profile.
pub fn take_profile(label: &str, wall_ns: u64) -> SelfProfile {
    LOCAL.with_borrow_mut(|local| {
        let mut global = lock_global();
        local.flush_into(&mut global);
    });
    let mut global = lock_global();
    let data = std::mem::replace(&mut *global, GlobalData::new());
    drop(global);
    let alloc = alloc::take_snapshot();

    let mut phases = Vec::new();
    for phase in Phase::ALL {
        let stat = data.stats[phase.index()];
        let (alloc_count, alloc_bytes) = alloc.per_phase[phase.index()];
        if stat.count == 0 && alloc_count == 0 {
            continue;
        }
        phases.push(PhaseRow {
            phase,
            count: stat.count,
            total_ns: stat.total_ns,
            self_ns: stat.self_ns,
            max_ns: stat.max_ns,
            alloc_count,
            alloc_bytes,
        });
    }
    let counters = PerfCounter::ALL
        .iter()
        .map(|&c| (c, data.counters[c.index()]))
        .filter(|&(_, v)| v != 0)
        .collect();

    let mut threads = data.threads;
    threads.sort_by_key(|t| t.tid);
    let mut trace = data.trace;
    trace.sort_by_key(|s| (s.start_ns, s.tid, std::cmp::Reverse(s.dur_ns)));

    SelfProfile {
        label: label.to_string(),
        wall_ns,
        phases,
        counters,
        alloc: alloc.summary,
        threads,
        trace,
        trace_events_dropped: data.trace_dropped,
        unbalanced_exits: data.unbalanced_exits,
    }
}

/// Discards everything recorded so far: the calling thread's tables, the
/// global registry, and the allocation counters. Call before a profiled
/// session so warm-up runs don't pollute it. Other *live* threads' local
/// tables are untouched (dead threads have already merged and are
/// discarded here) — reset between pipelines, not during one.
pub fn reset() {
    LOCAL.with_borrow_mut(|local| {
        let mut global = lock_global();
        local.flush_into(&mut global);
    });
    *lock_global() = GlobalData::new();
    alloc::take_snapshot();
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::lock as locked;

    #[test]
    fn null_profiler_is_disabled_and_records_nothing() {
        let _guard = locked();
        reset();
        {
            let _scope = NullProfiler::scope(Phase::Arrival);
            NullProfiler::add(PerfCounter::PoolInsert, 5);
        }
        let profile = take_profile("null", 0);
        assert!(profile.phases.is_empty());
        assert!(profile.counters.is_empty());
    }

    #[test]
    fn nested_spans_split_self_time() {
        let _guard = locked();
        reset();
        {
            let _outer = WallProfiler::scope(Phase::Completion);
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = WallProfiler::scope(Phase::PoolAdmit);
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let profile = take_profile("nested", 0);
        let outer = profile.row(Phase::Completion).expect("outer recorded");
        let inner = profile.row(Phase::PoolAdmit).expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.total_ns >= 3_000_000);
        assert!(
            outer.total_ns >= inner.total_ns + 3_000_000,
            "outer total must cover the inner span plus its own work"
        );
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "self time must exclude the child"
        );
        assert_eq!(inner.self_ns, inner.total_ns, "leaf self == total");
        assert!(outer.max_ns >= outer.total_ns);
    }

    #[test]
    fn unbalanced_exit_is_counted_not_fatal() {
        let _guard = locked();
        reset();
        WallProfiler::exit();
        WallProfiler::exit();
        {
            let _scope = WallProfiler::scope(Phase::Tick);
        }
        let profile = take_profile("unbalanced", 0);
        assert_eq!(profile.unbalanced_exits, 2);
        assert_eq!(profile.row(Phase::Tick).expect("span recorded").count, 1);
    }

    #[test]
    fn cross_thread_spans_merge_with_distinct_threads() {
        let _guard = locked();
        reset();
        {
            let _main = WallProfiler::scope(Phase::EngineRun);
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        WallProfiler::thread_label("worker");
                        {
                            let _span = WallProfiler::scope(Phase::ShardWorker);
                            WallProfiler::add(PerfCounter::PoolInsert, 3);
                        }
                        // Parents can outrun child TLS destructors past a
                        // scope join; workers flush explicitly.
                        flush_thread();
                    });
                }
            });
        }
        let profile = take_profile("threads", 0);
        let workers = profile.row(Phase::ShardWorker).expect("worker spans");
        assert_eq!(workers.count, 2, "one span per worker thread");
        assert_eq!(profile.counter(PerfCounter::PoolInsert), 6);
        let labeled = profile
            .threads
            .iter()
            .filter(|t| t.label == "worker")
            .count();
        assert_eq!(labeled, 2, "each worker registered its label");
        // A worker's span must not siphon the main thread's self time:
        // stacks are per-thread, so EngineRun keeps its full duration.
        let run = profile.row(Phase::EngineRun).expect("root span");
        assert_eq!(run.self_ns, run.total_ns);
    }

    #[test]
    fn dyn_scope_obeys_the_runtime_flag() {
        let _guard = locked();
        reset();
        set_wall_enabled(false);
        {
            let _off = DynScope::new(Phase::SreRound);
            dyn_add(PerfCounter::BatchFlushes, 1);
        }
        let profile = take_profile("off", 0);
        assert!(profile.row(Phase::SreRound).is_none());

        set_wall_enabled(true);
        {
            let _on = DynScope::new(Phase::SreRound);
            dyn_add(PerfCounter::BatchFlushes, 1);
        }
        set_wall_enabled(false);
        let profile = take_profile("on", 0);
        assert_eq!(profile.row(Phase::SreRound).expect("recorded").count, 1);
        assert_eq!(profile.counter(PerfCounter::BatchFlushes), 1);
    }

    #[test]
    fn trace_capture_records_spans_in_start_order() {
        let _guard = locked();
        reset();
        set_trace_capture(true);
        {
            let _a = WallProfiler::scope(Phase::Arrival);
        }
        {
            let _b = WallProfiler::scope(Phase::Completion);
        }
        set_trace_capture(false);
        let profile = take_profile("trace", 0);
        assert_eq!(profile.trace.len(), 2);
        assert!(profile.trace[0].start_ns <= profile.trace[1].start_ns);
        assert_eq!(profile.trace[0].phase, Phase::Arrival);
        assert_eq!(profile.trace_events_dropped, 0);
    }
}
