//! Synthetic trace generator CLI.
//!
//! Produces a trace in the combined CSV schema on stdout (or a file), for
//! feeding experiments, external tools, or regression fixtures:
//!
//! ```sh
//! cargo run -p cc-trace --bin tracegen -- \
//!     --functions 200 --minutes 480 --seed 42 --zipf 0.9 --out trace.csv
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::process::ExitCode;

use cc_trace::{azure, SyntheticTrace};
use cc_types::SimDuration;

struct Options {
    functions: usize,
    minutes: u64,
    seed: u64,
    zipf: f64,
    diurnal: f64,
    no_peaks: bool,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            functions: 100,
            minutes: 480,
            seed: 0,
            zipf: 0.0,
            diurnal: 1.0,
            no_peaks: false,
            out: None,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: tracegen [--functions N] [--minutes N] [--seed N] [--zipf S] \
         [--diurnal R] [--no-peaks] [--out FILE]"
    );
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--functions" => {
                opts.functions = value("--functions")?
                    .parse()
                    .map_err(|e| format!("bad --functions: {e}"))?
            }
            "--minutes" => {
                opts.minutes = value("--minutes")?
                    .parse()
                    .map_err(|e| format!("bad --minutes: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--zipf" => {
                opts.zipf = value("--zipf")?
                    .parse()
                    .map_err(|e| format!("bad --zipf: {e}"))?
            }
            "--diurnal" => {
                opts.diurnal = value("--diurnal")?
                    .parse()
                    .map_err(|e| format!("bad --diurnal: {e}"))?
            }
            "--no-peaks" => opts.no_peaks = true,
            "--out" => opts.out = Some(value("--out")?),
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let mut builder = SyntheticTrace::builder();
    builder
        .functions(opts.functions)
        .duration(SimDuration::from_mins(opts.minutes))
        .seed(opts.seed);
    if opts.zipf > 0.0 {
        builder.zipf_popularity(opts.zipf);
    }
    if opts.diurnal > 1.0 {
        builder.diurnal(opts.diurnal);
    }
    if opts.no_peaks {
        builder.without_peaks();
    }
    let trace = builder.build();
    eprintln!(
        "generated {} functions, {} invocations over {:.0} minutes",
        trace.functions().len(),
        trace.invocations().len(),
        trace.duration().as_mins_f64()
    );

    let result = match &opts.out {
        Some(path) => match File::create(path) {
            Ok(file) => azure::write_combined_csv(&trace, BufWriter::new(file)),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let stdout = io::stdout();
            let mut lock = stdout.lock();
            let r = azure::write_combined_csv(&trace, &mut lock);
            let _ = lock.flush();
            r
        }
    };
    if let Err(e) = result {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
