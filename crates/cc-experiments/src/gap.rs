//! Optimality-gap analysis: every policy priced against the
//! hindsight-optimal lower bound from `cc-bound`.
//!
//! Not a paper artifact — the paper reports the Oracle as its empirical
//! ceiling; this experiment adds the complementary *floor*: a clairvoyant
//! DP over the recorded arrivals that relaxes cluster capacity and
//! pricing-tick granularity, so every real schedule (the Oracle included)
//! must cost at least this much. The per-policy gap column is the
//! distance each policy still has to the relaxation, and a negative gap
//! anywhere means the bound or the engine's cost accounting has a bug.

use serde_json::json;

use cc_bound::{local_search_upper_bound, segment_lower_bound, GapReport, HindsightInput};
use cc_policies::{FaasCache, IceBreaker, Oracle, SitW};
use cc_sim::{FixedKeepAlive, Scheduler};
use codecrunch::CodeCrunch;

use crate::common::{run_policy, ExperimentOutput, Scale};
use crate::Experiment;

/// The gap-analysis experiment.
pub struct GapAnalysis;

impl Experiment for GapAnalysis {
    fn id(&self) -> &'static str {
        "gap"
    }

    fn title(&self) -> &'static str {
        "optimality gap of every policy against the hindsight-optimal lower bound (cc-bound)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let config = scale.cluster();

        let input = HindsightInput::from_trace(&trace, &workload, &config)
            .expect("scale traces resolve against their own workload");
        let reference = GapReport::for_input(&input);
        let segment = segment_lower_bound(&input, 8);

        let mut policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FixedKeepAlive::ten_minutes()),
            Box::new(SitW::new()),
            Box::new(FaasCache::new()),
            Box::new(IceBreaker::new()),
            Box::new(Oracle::new(&trace)),
            Box::new(CodeCrunch::new()),
        ];

        let mut lines = vec![
            format!(
                "lower bound: DP {} nano-units (segment relaxation {}, λ = {} n/p$)",
                reference.lower_bound, segment, reference.lambda_nanos
            ),
            format!(
                "{:<16} {:>20} {:>20} {:>10}  {}",
                "policy", "measured (nano)", "lower (nano)", "gap %", "bound holds"
            ),
        ];
        let mut rows = Vec::new();
        let mut min_gap_pct = f64::INFINITY;
        let mut ub_of_best: Option<u128> = None;
        for policy in policies.iter_mut() {
            let report = run_policy(policy.as_mut(), &config, &trace, &workload);
            let measured = cc_bound::measured_cost_of_report(&report, reference.lambda_nanos);
            let row = reference.policy(&report.policy, measured);
            // Tighten the ceiling too: a local search seeded from the best
            // recorded schedule gives the narrowest certified bracket.
            let ub = local_search_upper_bound(&input, &report.records);
            if ub_of_best.is_none_or(|best| ub < best) {
                ub_of_best = Some(ub);
            }
            min_gap_pct = min_gap_pct.min(row.gap_pct);
            lines.push(format!(
                "{:<16} {:>20} {:>20} {:>9.1}%  {}",
                row.policy,
                row.measured,
                row.lower_bound,
                row.gap_pct,
                if row.holds() { "yes" } else { "VIOLATED" }
            ));
            rows.push(json!({
                "policy": row.policy,
                "measured_nano": row.measured.to_string(),
                "lower_bound_nano": row.lower_bound.to_string(),
                "gap_nano": row.gap.to_string(),
                "gap_pct": row.gap_pct,
                "holds": row.holds(),
            }));
        }
        let ub = ub_of_best.expect("at least one policy ran");
        lines.push(format!(
            "certified bracket: optimum in [{}, {}] nano-units (best policy within {:.1}% of \
             the lower bound)",
            reference.lower_bound, ub, min_gap_pct
        ));

        let data = json!({
            "lambda_nanos": reference.lambda_nanos,
            "dp_lower_bound_nano": reference.lower_bound.to_string(),
            "segment_lower_bound_nano": segment.to_string(),
            "local_search_upper_bound_nano": ub.to_string(),
            "rows": rows,
        });
        ExperimentOutput::new(self.id(), lines, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_row_respects_the_bound() {
        let out = GapAnalysis.run(&Scale::smoke());
        let rows = out.data["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 6, "all six policies report a gap row");
        for row in rows {
            assert_eq!(
                row["holds"].as_bool(),
                Some(true),
                "{} beat the lower bound",
                row["policy"]
            );
            assert!(row["gap_pct"].as_f64().unwrap() >= 0.0);
        }
        // The certified bracket is ordered: segment ≤ DP ≤ local-search UB.
        let seg: u128 = out.data["segment_lower_bound_nano"]
            .as_str()
            .unwrap()
            .parse()
            .unwrap();
        let dp: u128 = out.data["dp_lower_bound_nano"]
            .as_str()
            .unwrap()
            .parse()
            .unwrap();
        let ub: u128 = out.data["local_search_upper_bound_nano"]
            .as_str()
            .unwrap()
            .parse()
            .unwrap();
        assert!(seg <= dp && dp <= ub, "bracket disordered: {seg} {dp} {ub}");
    }
}
