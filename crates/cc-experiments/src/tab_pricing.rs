//! §5: CodeCrunch is effective even when both processor types cost the
//! same to reserve.
//!
//! Paper result: equal pricing moves the mean service time from 6.75 s to
//! only 6.87 s — scheduling decisions rest on relative execution times,
//! compression-friendliness, and invocation frequency, not the price gap.

use serde_json::json;

use codecrunch::CodeCrunch;

use crate::common::{run_policy, sitw_budget_per_interval, ExperimentOutput, Scale};
use crate::Experiment;

/// Pricing-sensitivity experiment.
pub struct TabPricing;

impl Experiment for TabPricing {
    fn id(&self) -> &'static str {
        "tab_pricing"
    }

    fn title(&self) -> &'static str {
        "equal x86/ARM pricing sensitivity (§5 pricing study)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        let base = scale.cluster();
        let budget = sitw_budget_per_interval(&trace, &workload, &base).scale(0.5);

        let paper_pricing = base.clone().with_budget(budget);
        let equal_pricing = base.with_equal_pricing().with_budget(budget);

        let mut p1 = CodeCrunch::new();
        let mut p2 = CodeCrunch::new();
        let r_paper = run_policy(&mut p1, &paper_pricing, &trace, &workload);
        let r_equal = run_policy(&mut p2, &equal_pricing, &trace, &workload);

        let lines = vec![
            format!(
                "paper pricing (ARM cheaper): {:.3}s mean service, warm {:.1}%",
                r_paper.mean_service_time_secs(),
                r_paper.warm_fraction() * 100.0
            ),
            format!(
                "equal pricing:               {:.3}s mean service, warm {:.1}%",
                r_equal.mean_service_time_secs(),
                r_equal.warm_fraction() * 100.0
            ),
            format!(
                "difference: {:+.1}% (paper: 6.75s -> 6.87s, +1.8%)",
                (r_equal.mean_service_time_secs() / r_paper.mean_service_time_secs() - 1.0) * 100.0
            ),
        ];
        let data = json!({
            "paper_pricing_secs": r_paper.mean_service_time_secs(),
            "equal_pricing_secs": r_equal.mean_service_time_secs(),
        });
        ExperimentOutput::new(self.id(), lines, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_model_barely_matters() {
        let out = TabPricing.run(&Scale::smoke());
        let paper = out.data["paper_pricing_secs"].as_f64().unwrap();
        let equal = out.data["equal_pricing_secs"].as_f64().unwrap();
        // The paper reports a <2% shift; allow 15% at smoke scale.
        assert!(
            (equal / paper - 1.0).abs() < 0.15,
            "pricing shift too large: {paper} vs {equal}"
        );
    }
}
