//! Canonical, length-limited Huffman coding.
//!
//! Code lengths are computed with the package-merge algorithm (exactly
//! optimal under a maximum-length constraint), then assigned canonically so
//! that a decoder can be reconstructed from the length table alone — the
//! frame only ships 256 length bytes, not the codes.
//!
//! # Example
//!
//! ```
//! use cc_compress::huffman::{HuffmanDecoder, HuffmanEncoder};
//! use cc_compress::{BitReader, BitWriter};
//!
//! let data = b"abracadabra";
//! let mut freqs = [0u64; 256];
//! for &b in data {
//!     freqs[b as usize] += 1;
//! }
//! let enc = HuffmanEncoder::from_frequencies(&freqs);
//! let mut w = BitWriter::new();
//! for &b in data {
//!     enc.encode(&mut w, b);
//! }
//! let bits = w.finish();
//!
//! let dec = HuffmanDecoder::from_code_lengths(enc.code_lengths())?;
//! let mut r = BitReader::new(&bits);
//! let decoded: Vec<u8> = (0..data.len())
//!     .map(|_| dec.decode(&mut r))
//!     .collect::<Result<_, _>>()?;
//! assert_eq!(decoded, data);
//! # Ok::<(), cc_compress::DecodeError>(())
//! ```

use crate::{BitReader, BitWriter, DecodeError};

/// Maximum code length produced by the encoder and accepted by the decoder.
///
/// 15 bits matches DEFLATE's limit and is always sufficient for a 256-symbol
/// alphabet (needs only ⌈log₂ 256⌉ = 8 in the worst flat case).
pub const MAX_CODE_LEN: u8 = 15;

/// Computes length-limited optimal code lengths via package-merge.
///
/// Returns one length per symbol; symbols with zero frequency get length 0.
/// If exactly one symbol occurs it gets length 1 (a one-entry, incomplete
/// but decodable code).
pub fn package_merge_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let active: Vec<(u16, u64)> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &w)| w > 0)
        .map(|(s, &w)| (s as u16, w))
        .collect();
    match active.len() {
        0 => return lengths,
        1 => {
            lengths[active[0].0 as usize] = 1;
            return lengths;
        }
        _ => {}
    }

    // Coins at each level: original symbols plus packages from the level
    // below. After MAX_CODE_LEN rounds, the first 2(n-1) packages' symbol
    // multiplicities are exactly the optimal lengths.
    let mut sorted = active.clone();
    sorted.sort_by_key(|&(s, w)| (w, s));
    let mut prev: Vec<(u128, Vec<u16>)> = Vec::new();
    for _ in 0..MAX_CODE_LEN {
        let mut cur: Vec<(u128, Vec<u16>)> = sorted
            .iter()
            .map(|&(s, w)| (u128::from(w), vec![s]))
            .collect();
        for pair in prev.chunks_exact(2) {
            let mut syms = pair[0].1.clone();
            syms.extend_from_slice(&pair[1].1);
            cur.push((pair[0].0 + pair[1].0, syms));
        }
        cur.sort_by_key(|a| a.0);
        prev = cur;
    }
    for (_, syms) in prev.iter().take(2 * (active.len() - 1)) {
        for &s in syms {
            lengths[s as usize] += 1;
        }
    }
    lengths
}

/// A canonical Huffman encoder over the byte alphabet.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    /// `(code, length)` per symbol; length 0 means the symbol never occurs.
    codes: Vec<(u32, u8)>,
    lengths: [u8; 256],
}

impl HuffmanEncoder {
    /// Builds an encoder from symbol frequencies.
    ///
    /// Symbols with zero frequency receive no code; attempting to encode one
    /// panics (it cannot appear in data the frequencies were counted from).
    pub fn from_frequencies(freqs: &[u64; 256]) -> Self {
        let lengths = package_merge_lengths(freqs);
        let codes = canonical_codes(&lengths);
        HuffmanEncoder { codes, lengths }
    }

    /// The code-length table to embed in the frame header.
    pub fn code_lengths(&self) -> &[u8; 256] {
        &self.lengths
    }

    /// Appends the code for `symbol` to `writer`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` had zero frequency when the encoder was built.
    pub fn encode(&self, writer: &mut BitWriter, symbol: u8) {
        let (code, len) = self.codes[symbol as usize];
        assert!(len > 0, "symbol {symbol} has no code");
        writer.write_bits(u64::from(code), u32::from(len));
    }
}

/// Assigns canonical codes from a length table: symbols sorted by
/// `(length, symbol)` receive consecutive codes.
fn canonical_codes(lengths: &[u8; 256]) -> Vec<(u32, u8)> {
    let mut order: Vec<u16> = (0u16..256).filter(|&s| lengths[s as usize] > 0).collect();
    order.sort_by_key(|&s| (lengths[s as usize], s));
    let mut codes = vec![(0u32, 0u8); 256];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &order {
        let len = lengths[s as usize];
        code <<= len - prev_len;
        codes[s as usize] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// A canonical Huffman decoder reconstructed from a code-length table.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// `count[len]` = number of codes of each length (index 0 unused).
    count: [u32; MAX_CODE_LEN as usize + 1],
    /// `first_code[len]` = canonical code value of the first code at `len`.
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    /// `first_index[len]` = index into `symbols` of that first code.
    first_index: [u32; MAX_CODE_LEN as usize + 1],
    /// Symbols sorted by `(length, symbol)`.
    symbols: Vec<u8>,
}

impl HuffmanDecoder {
    /// Reconstructs a decoder from the length table shipped in a frame.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadCodeTable`] if any length exceeds
    /// [`MAX_CODE_LEN`], the table is empty, or the lengths oversubscribe
    /// the code space (violate the Kraft inequality).
    pub fn from_code_lengths(lengths: &[u8; 256]) -> Result<Self, DecodeError> {
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        for &len in lengths.iter() {
            if len > MAX_CODE_LEN {
                return Err(DecodeError::BadCodeTable);
            }
            if len > 0 {
                count[len as usize] += 1;
            }
        }
        let total: u32 = count.iter().sum();
        if total == 0 {
            return Err(DecodeError::BadCodeTable);
        }
        // Kraft: Σ 2^(MAX-len) ≤ 2^MAX.
        let mut kraft: u64 = 0;
        for (len, &n) in count.iter().enumerate().skip(1) {
            kraft += u64::from(n) << (MAX_CODE_LEN as usize - len);
        }
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(DecodeError::BadCodeTable);
        }

        let mut order: Vec<u16> = (0u16..256).filter(|&s| lengths[s as usize] > 0).collect();
        order.sort_by_key(|&s| (lengths[s as usize], s));
        let symbols: Vec<u8> = order.iter().map(|&s| s as u8).collect();

        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut first_index = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code <<= 1;
            first_code[len] = code;
            first_index[len] = index;
            code += count[len];
            index += count[len];
        }
        Ok(HuffmanDecoder {
            count,
            first_code,
            first_index,
            symbols,
        })
    }

    /// Decodes one symbol from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if the input ends mid-code, or
    /// [`DecodeError::BadCodeTable`] if the bits do not resolve to any code
    /// (possible only for incomplete tables or corrupt data).
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u8, DecodeError> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | u32::from(reader.read_bit()?);
            let offset = code.wrapping_sub(self.first_code[len]);
            if offset < self.count[len] {
                return Ok(self.symbols[(self.first_index[len] + offset) as usize]);
            }
        }
        Err(DecodeError::BadCodeTable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn freqs_of(data: &[u8]) -> [u64; 256] {
        let mut f = [0u64; 256];
        for &b in data {
            f[b as usize] += 1;
        }
        f
    }

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let freqs = freqs_of(data);
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for &b in data {
            enc.encode(&mut w, b);
        }
        let bits = w.finish();
        let dec = HuffmanDecoder::from_code_lengths(enc.code_lengths()).unwrap();
        let mut r = BitReader::new(&bits);
        (0..data.len())
            .map(|_| dec.decode(&mut r).unwrap())
            .collect()
    }

    #[test]
    fn single_symbol_alphabet() {
        let data = vec![b'x'; 100];
        assert_eq!(roundtrip(&data), data);
        let lengths = package_merge_lengths(&freqs_of(&data));
        assert_eq!(lengths[b'x' as usize], 1);
        assert_eq!(lengths.iter().filter(|&&l| l > 0).count(), 1);
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let data = b"ababababab";
        let lengths = package_merge_lengths(&freqs_of(data));
        assert_eq!(lengths[b'a' as usize], 1);
        assert_eq!(lengths[b'b' as usize], 1);
    }

    #[test]
    fn skewed_frequencies_yield_short_codes_for_common_symbols() {
        let mut freqs = [0u64; 256];
        freqs[0] = 1000;
        freqs[1] = 10;
        freqs[2] = 10;
        freqs[3] = 1;
        let lengths = package_merge_lengths(&freqs);
        assert!(lengths[0] < lengths[3]);
        assert!(lengths[0] >= 1);
    }

    #[test]
    fn lengths_respect_limit_under_fibonacci_pressure() {
        // Fibonacci-like frequencies force maximal depth in unlimited
        // Huffman; package-merge must clamp to MAX_CODE_LEN.
        let mut freqs = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for slot in freqs.iter_mut().take(40) {
            *slot = a;
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        let lengths = package_merge_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
        // Kraft equality for a complete code.
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-9, "kraft = {kraft}");
    }

    #[test]
    fn flat_256_alphabet_is_8_bits() {
        let freqs = [1u64; 256];
        let lengths = package_merge_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l == 8));
    }

    #[test]
    fn decoder_rejects_oversubscribed_table() {
        let mut lengths = [0u8; 256];
        lengths[0] = 1;
        lengths[1] = 1;
        lengths[2] = 1; // three 1-bit codes cannot exist
        assert_eq!(
            HuffmanDecoder::from_code_lengths(&lengths).unwrap_err(),
            DecodeError::BadCodeTable
        );
    }

    #[test]
    fn decoder_rejects_empty_table() {
        assert_eq!(
            HuffmanDecoder::from_code_lengths(&[0u8; 256]).unwrap_err(),
            DecodeError::BadCodeTable
        );
    }

    #[test]
    fn decoder_rejects_overlong_lengths() {
        let mut lengths = [0u8; 256];
        lengths[0] = MAX_CODE_LEN + 1;
        assert_eq!(
            HuffmanDecoder::from_code_lengths(&lengths).unwrap_err(),
            DecodeError::BadCodeTable
        );
    }

    #[test]
    fn decode_truncated_stream_errors() {
        let data = b"hello huffman";
        let enc = HuffmanEncoder::from_frequencies(&freqs_of(data));
        let dec = HuffmanDecoder::from_code_lengths(enc.code_lengths()).unwrap();
        let mut r = BitReader::new(&[]);
        assert!(matches!(
            dec.decode(&mut r),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "has no code")]
    fn encoding_unseen_symbol_panics() {
        let enc = HuffmanEncoder::from_frequencies(&freqs_of(b"aaa"));
        let mut w = BitWriter::new();
        enc.encode(&mut w, b'z');
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in prop::collection::vec(any::<u8>(), 1..2048)) {
            prop_assert_eq!(roundtrip(&data), data);
        }

        #[test]
        fn encoded_size_beats_or_matches_flat_code(
            data in prop::collection::vec(0u8..4, 64..2048),
        ) {
            // A 4-symbol alphabet needs ≤2 bits/symbol under Huffman.
            let freqs = freqs_of(&data);
            let enc = HuffmanEncoder::from_frequencies(&freqs);
            let mut w = BitWriter::new();
            for &b in &data {
                enc.encode(&mut w, b);
            }
            let bits = w.finish();
            prop_assert!(bits.len() <= data.len() / 4 + 2);
        }

        #[test]
        fn lengths_always_form_prefix_code(data in prop::collection::vec(any::<u8>(), 1..512)) {
            let lengths = package_merge_lengths(&freqs_of(&data));
            let distinct = lengths.iter().filter(|&&l| l > 0).count();
            let kraft: f64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 2f64.powi(-i32::from(l)))
                .sum();
            if distinct == 1 {
                prop_assert!((kraft - 0.5).abs() < 1e-9);
            } else {
                prop_assert!((kraft - 1.0).abs() < 1e-9);
            }
            prop_assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
        }
    }
}
