//! Property-based integration tests: simulator conservation laws and
//! serialization roundtrips over randomized scenarios.

use proptest::prelude::*;

use codecrunch_suite::prelude::*;
use codecrunch_suite::trace::azure;
use codecrunch_suite::types::Cost;

fn arbitrary_scenario() -> impl Strategy<Value = (u64, usize, u64, u32, u32)> {
    // (seed, functions, minutes, x86 nodes, arm nodes)
    (0u64..1000, 5usize..40, 30u64..120, 1u32..3, 1u32..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_conservation_laws(
        (seed, functions, minutes, x86, arm) in arbitrary_scenario(),
        warm_fraction in 0.1f64..1.0,
    ) {
        let trace = SyntheticTrace::builder()
            .functions(functions)
            .duration(SimDuration::from_mins(minutes))
            .seed(seed)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let config = ClusterConfig::small(x86, arm).with_warm_memory_fraction(warm_fraction);
        let mut policy = CodeCrunch::new();
        let report = Simulation::new(config, &trace, &workload).run(&mut policy);

        // Every invocation completes exactly once.
        prop_assert_eq!(report.records.len(), trace.invocations().len());
        // Service components are consistent.
        for record in &report.records {
            prop_assert!(record.service_time() >= record.execution);
            prop_assert!(record.kind.is_warm() == (record.kind != StartKind::Cold));
            if record.kind == StartKind::WarmUncompressed {
                prop_assert!(record.start_penalty.is_zero());
            }
        }
        // Warm + cold fractions partition the run.
        let stats = &report.stats;
        prop_assert!((stats.warm_fraction() + stats.cold_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_is_never_overspent(
        (seed, functions, minutes, x86, arm) in arbitrary_scenario(),
        budget_pd in 0u64..50_000_000_000,
    ) {
        let trace = SyntheticTrace::builder()
            .functions(functions)
            .duration(SimDuration::from_mins(minutes))
            .seed(seed)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let budget = Cost::from_picodollars(budget_pd);
        let config = ClusterConfig::small(x86, arm).with_budget(budget);
        let mut policy = FixedKeepAlive::ten_minutes();
        let report = Simulation::new(config, &trace, &workload).run(&mut policy);

        // Spend cannot exceed the credit accrued through the last instant
        // the simulator touched the ledger — executions (and their
        // keep-alive decisions) drain past the final arrival, so the bound
        // covers completions, not just arrivals.
        let last_touch = report
            .records
            .iter()
            .map(|r| r.completion().as_micros())
            .max()
            .unwrap_or(0)
            .max(trace.duration().as_micros());
        let intervals = last_touch / 60_000_000 + 1;
        prop_assert!(
            report.keep_alive_spend <= budget * intervals,
            "spend {} exceeds accrued {} over {} intervals",
            report.keep_alive_spend,
            budget * intervals,
            intervals
        );
    }

    #[test]
    fn csv_roundtrip_preserves_counts(
        (seed, functions, minutes, _, _) in arbitrary_scenario(),
    ) {
        let trace = SyntheticTrace::builder()
            .functions(functions)
            .duration(SimDuration::from_mins(minutes))
            .seed(seed)
            .build();
        let mut buf = Vec::new();
        azure::write_combined_csv(&trace, &mut buf).expect("write");
        let back = azure::read_combined_csv(&buf[..]).expect("read");
        prop_assert_eq!(back.functions().len(), trace.functions().len());
        prop_assert_eq!(back.invocations().len(), trace.invocations().len());
        for f in trace.functions() {
            prop_assert_eq!(
                trace.per_minute_counts(f.id),
                back.per_minute_counts(f.id)
            );
        }
    }

    #[test]
    fn policies_agree_on_invocation_conservation(
        (seed, functions, minutes, x86, arm) in arbitrary_scenario(),
        policy_idx in 0usize..4,
    ) {
        let trace = SyntheticTrace::builder()
            .functions(functions)
            .duration(SimDuration::from_mins(minutes))
            .seed(seed)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let config = ClusterConfig::small(x86, arm);
        let mut policy: Box<dyn Scheduler> = match policy_idx {
            0 => Box::new(SitW::new()),
            1 => Box::new(FaasCache::new()),
            2 => Box::new(IceBreaker::new()),
            _ => Box::new(Oracle::new(&trace)),
        };
        let report = Simulation::new(config, &trace, &workload).run(policy.as_mut());
        prop_assert_eq!(report.records.len(), trace.invocations().len());
    }
}
