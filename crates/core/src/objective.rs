//! The per-interval optimization objective.

use cc_opt::{Objective, SeparableObjective};
use cc_types::{Arch, Cost, CostRate, FnChoice, FunctionId, SimDuration};
use cc_workload::Workload;

use crate::{ArchPolicy, ExecObserver};

/// The objective CodeCrunch minimizes each interval: the **estimated mean
/// service time** of the functions invoked in that interval, subject to
/// the keep-alive budget (the paper's `argmin Σ CS_i(j) + EX_i(j)` under
/// the `Σ cost ≤ K_t` constraint).
///
/// For a candidate choice `(C, T, K)` of function `i`:
///
/// - execution time is the observed (EWMA) time on `T`;
/// - if `K ≥ P_est(i)` the function is predicted to re-invoke warm: the
///   start penalty is the decompression time when `C` says compressed,
///   zero otherwise;
/// - if `K < P_est(i)` (or no estimate exists) the re-invocation is
///   predicted cold and pays the full cold start on `T`.
///
/// The keep-alive cost of a choice is `rate(T) × footprint(C) × K`, and
/// the sum across functions must stay within the interval's available
/// budget (accrued credit included — the creditor mechanism).
///
/// In SLA mode an additional penalty drives the optimizer away from
/// choices whose predicted service time exceeds
/// `(1 + sla) × exec_x86` (the uncompressed-warm-on-x86 reference).
pub struct IntervalObjective<'a> {
    /// Functions invoked in the interval, aligning with solutions.
    pub functions: &'a [FunctionId],
    /// Resolved workload specs.
    pub workload: &'a Workload,
    /// Observed execution times.
    pub exec: &'a ExecObserver,
    /// `P_est` per function (aligned with `functions`); `None` = no
    /// estimate yet (predicted cold).
    pub pest: &'a [Option<SimDuration>],
    /// Keep-alive cost rates indexed by [`Arch::index`].
    pub rates: [CostRate; 2],
    /// Available keep-alive budget for this interval's plan; `None` =
    /// unlimited.
    pub budget: Option<Cost>,
    /// SLA mode: allowed fractional increase over warm-x86 service.
    pub sla: Option<f64>,
    /// Architecture restriction.
    pub arch_policy: ArchPolicy,
    /// Compression permission (ablation switch).
    pub allow_compression: bool,
}

impl IntervalObjective<'_> {
    /// Probability that the function re-invokes while still warm under
    /// `choice`, given its `P_est` estimate.
    ///
    /// The paper's rule is binary (`K ≥ P_est` ⇒ warm), but a binary
    /// landscape gives the sub-problem gradient descent no slope to climb
    /// and ignores the heavy tail of real inter-arrival distributions
    /// (`P_est` is mean + one σ; plenty of gaps land beyond it). We model
    /// the re-invocation gap with an exponential-tail CDF scaled so that a
    /// window of exactly `P_est` is ≈86% likely to catch the next
    /// invocation and longer windows keep paying off with diminishing
    /// returns:
    ///
    /// ```text
    /// P(warm | K) = 1 − exp(−2 K / P_est)
    /// ```
    pub fn warm_probability(&self, idx: usize, choice: &FnChoice) -> f64 {
        let Some(pest) = self.pest[idx] else {
            return 0.0; // no estimate: predicted cold
        };
        if !choice.keeps_alive() {
            return 0.0;
        }
        if pest.is_zero() {
            return 1.0;
        }
        let ratio = choice.keep_alive.as_secs_f64() / pest.as_secs_f64();
        1.0 - (-2.0 * ratio).exp()
    }

    /// Predicted service time (seconds) of one function under one choice.
    pub fn predicted_service(&self, idx: usize, choice: &FnChoice) -> f64 {
        let f = self.functions[idx];
        let spec = self.workload.spec(f);
        let exec = self.exec.exec_time(f, choice.arch, self.workload);
        let p_warm = self.warm_probability(idx, choice);
        let warm_penalty = if choice.compress {
            spec.decompress_time(choice.arch)
        } else {
            SimDuration::ZERO
        };
        let cold_penalty = spec.cold_start(choice.arch);
        let penalty =
            p_warm * warm_penalty.as_secs_f64() + (1.0 - p_warm) * cold_penalty.as_secs_f64();
        exec.as_secs_f64() + penalty
    }

    /// Keep-alive cost of one choice.
    pub fn choice_cost(&self, idx: usize, choice: &FnChoice) -> Cost {
        if !choice.keeps_alive() {
            return Cost::ZERO;
        }
        let spec = self.workload.spec(self.functions[idx]);
        let footprint = if choice.compress {
            spec.compressed_memory
        } else {
            spec.memory
        };
        self.rates[choice.arch.index()].keep_alive_cost(footprint, choice.keep_alive)
    }

    /// Total plan cost.
    pub fn plan_cost(&self, solution: &[FnChoice]) -> Cost {
        solution
            .iter()
            .enumerate()
            .map(|(i, c)| self.choice_cost(i, c))
            .sum()
    }

    fn sla_penalty(&self, idx: usize, choice: &FnChoice, service: f64) -> f64 {
        let Some(sla) = self.sla else {
            return 0.0;
        };
        let _ = choice;
        let f = self.functions[idx];
        let reference = self
            .exec
            .exec_time(f, Arch::X86, self.workload)
            .as_secs_f64();
        let limit = (1.0 + sla) * reference;
        if service > limit {
            // Steep, smooth penalty: violations dominate the mean but stay
            // finite so descent has a gradient to follow.
            100.0 * (service - limit)
        } else {
            0.0
        }
    }
}

impl Objective for IntervalObjective<'_> {
    fn num_functions(&self) -> usize {
        self.functions.len()
    }

    fn evaluate(&self, solution: &[FnChoice]) -> f64 {
        if solution.is_empty() {
            return 0.0;
        }
        let total: f64 = solution
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let service = self.predicted_service(i, c);
                service + self.sla_penalty(i, c, service)
            })
            .sum();
        total / solution.len() as f64
    }

    fn is_feasible(&self, solution: &[FnChoice]) -> bool {
        for choice in solution {
            if !self.arch_policy.allows(choice.arch) {
                return false;
            }
            if choice.compress && !self.allow_compression {
                return false;
            }
        }
        match self.budget {
            None => true,
            Some(budget) => self.plan_cost(solution) <= budget,
        }
    }

    fn memory_cost(&self, solution: &[FnChoice]) -> f64 {
        solution
            .iter()
            .enumerate()
            .map(|(i, c)| SeparableObjective::memory_term(self, i, c))
            .sum()
    }
}

impl SeparableObjective for IntervalObjective<'_> {
    fn num_functions(&self) -> usize {
        self.functions.len()
    }

    fn service_term(&self, idx: usize, choice: &FnChoice) -> f64 {
        let service = self.predicted_service(idx, choice);
        service + self.sla_penalty(idx, choice, service)
    }

    fn cost_term(&self, idx: usize, choice: &FnChoice) -> f64 {
        self.choice_cost(idx, choice).as_picodollars() as f64
    }

    fn memory_term(&self, idx: usize, choice: &FnChoice) -> f64 {
        if !choice.keeps_alive() {
            return 0.0;
        }
        let spec = self.workload.spec(self.functions[idx]);
        let footprint = if choice.compress {
            spec.compressed_memory
        } else {
            spec.memory
        };
        footprint.as_mb() as f64 * choice.keep_alive.as_mins_f64()
    }

    fn allowed(&self, _idx: usize, choice: &FnChoice) -> bool {
        self.arch_policy.allows(choice.arch) && (self.allow_compression || !choice.compress)
    }

    fn budget(&self) -> Option<f64> {
        self.budget.map(|b| b.as_picodollars() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::MemoryMb;
    use cc_workload::FunctionSpec;

    fn spec(id: u32, exec_x86_s: u64, arm_ratio: f64, cold_s: u64) -> FunctionSpec {
        let exec = SimDuration::from_secs(exec_x86_s);
        FunctionSpec {
            id: FunctionId::new(id),
            profile_name: format!("test{id}"),
            exec: [exec, exec.scale(arm_ratio)],
            cold: [
                SimDuration::from_secs(cold_s),
                SimDuration::from_secs(cold_s).scale(1.25),
            ],
            decompress: [SimDuration::from_millis(300), SimDuration::from_millis(330)],
            compress: SimDuration::from_millis(1500),
            memory: MemoryMb::new(256),
            compressed_memory: MemoryMb::new(100),
        }
    }

    struct Fixture {
        workload: Workload,
        functions: Vec<FunctionId>,
        pest: Vec<Option<SimDuration>>,
        exec: ExecObserver,
    }

    fn fixture() -> Fixture {
        let workload = Workload::from_specs(vec![
            spec(0, 2, 0.8, 3), // ARM faster
            spec(1, 4, 1.3, 2), // x86 faster
        ]);
        Fixture {
            exec: ExecObserver::new(2, 0.3),
            functions: vec![FunctionId::new(0), FunctionId::new(1)],
            pest: vec![
                Some(SimDuration::from_mins(5)),
                Some(SimDuration::from_mins(20)),
            ],
            workload,
        }
    }

    fn objective<'a>(fx: &'a Fixture, budget: Option<Cost>) -> IntervalObjective<'a> {
        IntervalObjective {
            functions: &fx.functions,
            workload: &fx.workload,
            exec: &fx.exec,
            pest: &fx.pest,
            rates: [
                CostRate::paper_rate(Arch::X86),
                CostRate::paper_rate(Arch::Arm),
            ],
            budget,
            sla: None,
            arch_policy: ArchPolicy::Both,
            allow_compression: true,
        }
    }

    /// The exponential-tail warm model: `1 − exp(−2·K/P_est)`.
    fn p_warm(keep_alive_mins: f64, pest_mins: f64) -> f64 {
        1.0 - (-2.0 * keep_alive_mins / pest_mins).exp()
    }

    #[test]
    fn warm_prediction_removes_cold_penalty() {
        let fx = fixture();
        let obj = objective(&fx, None);
        // Function 0's P_est is 5 minutes.
        let no_keep = FnChoice::drop_now(Arch::X86);
        let partial = FnChoice::new(Arch::X86, false, SimDuration::from_mins(1));
        let warm_choice = FnChoice::new(Arch::X86, false, SimDuration::from_mins(10));
        assert_eq!(obj.predicted_service(0, &no_keep), 2.0 + 3.0);
        assert_eq!(obj.warm_probability(0, &no_keep), 0.0);

        let p1 = p_warm(1.0, 5.0);
        assert!((obj.warm_probability(0, &partial) - p1).abs() < 1e-12);
        assert!((obj.predicted_service(0, &partial) - (2.0 + (1.0 - p1) * 3.0)).abs() < 1e-9);

        // A window at 2× P_est is near-certain warm (≈98%).
        let p10 = p_warm(10.0, 5.0);
        assert!(p10 > 0.98);
        assert!((obj.predicted_service(0, &warm_choice) - (2.0 + (1.0 - p10) * 3.0)).abs() < 1e-9);
        // Longer windows keep improving: monotone in keep-alive.
        assert!(obj.predicted_service(0, &warm_choice) < obj.predicted_service(0, &partial));
    }

    #[test]
    fn compressed_warm_pays_decompression() {
        let fx = fixture();
        let obj = objective(&fx, None);
        let c = FnChoice::new(Arch::X86, true, SimDuration::from_mins(10));
        let p = p_warm(10.0, 5.0);
        let expected = 2.0 + p * 0.3 + (1.0 - p) * 3.0;
        assert!((obj.predicted_service(0, &c) - expected).abs() < 1e-9);
    }

    #[test]
    fn arm_choice_uses_arm_times() {
        let fx = fixture();
        let obj = objective(&fx, None);
        let c = FnChoice::new(Arch::Arm, false, SimDuration::from_mins(10));
        let p = p_warm(10.0, 5.0);
        let expected = 1.6 + (1.0 - p) * 3.75; // ARM exec and ARM cold start
        assert!((obj.predicted_service(0, &c) - expected).abs() < 1e-9);
    }

    #[test]
    fn budget_infeasibility() {
        let fx = fixture();
        let generous = objective(&fx, None);
        let broke = objective(&fx, Some(Cost::ZERO));
        let plan = vec![FnChoice::production_default(); 2];
        assert!(generous.is_feasible(&plan));
        assert!(!broke.is_feasible(&plan));
        // Dropping everything costs nothing and is always feasible.
        let drop_all = vec![FnChoice::drop_now(Arch::X86); 2];
        assert!(broke.is_feasible(&drop_all));
    }

    #[test]
    fn compression_halves_plan_cost_roughly() {
        let fx = fixture();
        let obj = objective(&fx, None);
        let raw = vec![FnChoice::new(Arch::X86, false, SimDuration::from_mins(10)); 2];
        let packed = vec![FnChoice::new(Arch::X86, true, SimDuration::from_mins(10)); 2];
        let ratio = obj.plan_cost(&packed).as_picodollars() as f64
            / obj.plan_cost(&raw).as_picodollars() as f64;
        assert!((ratio - 100.0 / 256.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn arch_policy_restricts_feasibility() {
        let fx = fixture();
        let mut obj = objective(&fx, None);
        obj.arch_policy = ArchPolicy::X86Only;
        let arm_plan = vec![FnChoice::new(Arch::Arm, false, SimDuration::from_mins(1)); 2];
        assert!(!obj.is_feasible(&arm_plan));
    }

    #[test]
    fn compression_ban_restricts_feasibility() {
        let fx = fixture();
        let mut obj = objective(&fx, None);
        obj.allow_compression = false;
        let plan = vec![FnChoice::new(Arch::X86, true, SimDuration::from_mins(1)); 2];
        assert!(!obj.is_feasible(&plan));
    }

    #[test]
    fn sla_penalizes_slow_choices() {
        let fx = fixture();
        let mut obj = objective(&fx, None);
        obj.sla = Some(0.2);
        // Cold start on function 0: service 5.0 vs limit 1.2 × 2.0 = 2.4.
        let violating = vec![
            FnChoice::drop_now(Arch::X86),
            FnChoice::new(Arch::X86, false, SimDuration::from_mins(30)),
        ];
        let compliant = vec![
            FnChoice::new(Arch::X86, false, SimDuration::from_mins(10)),
            FnChoice::new(Arch::X86, false, SimDuration::from_mins(30)),
        ];
        assert!(obj.evaluate(&violating) > obj.evaluate(&compliant) + 100.0);
    }

    #[test]
    fn unknown_pest_predicts_cold() {
        let fx = fixture();
        let pest = vec![None, None];
        let obj = IntervalObjective {
            pest: &pest,
            ..objective(&fx, None)
        };
        let c = FnChoice::new(Arch::X86, false, SimDuration::from_mins(60));
        assert_eq!(obj.predicted_service(0, &c), 5.0);
    }
}
