//! Emits `BENCH_sim.json`: simulator throughput (invocations/second) per
//! policy on the 10 000-function stress scenario.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run --release -p bench --bin simbench            # writes BENCH_sim.json
//! cargo run --release -p bench --bin simbench -- --runs 5 --out BENCH_sim.json
//! cargo run --release -p bench --bin simbench -- --scenario small --sink jsonl
//! cargo run --release -p bench --bin simbench -- --baseline BENCH_sim.json --tolerance 0.03
//! ```
//!
//! Each policy is replayed `--runs` times (default 3) after one warm-up
//! replay; the reported figure is the best run, which is the least noisy
//! estimator on a shared machine.
//!
//! `--sink` selects the event sink the replay runs under: `null` (the
//! default, PR 1's uninstrumented fast path), `jsonl`, or `chrome` — the
//! exporters serialize the full event stream into `std::io::sink()`, so
//! the measured delta is pure observability overhead with no disk noise.
//!
//! `--baseline` compares the measured throughput against a previously
//! recorded `BENCH_sim.json` (either this binary's output or the annotated
//! before/after variant) and exits non-zero if any measured policy falls
//! below `baseline * (1 - tolerance)`; `--tolerance` defaults to 0.03.
//!
//! `--shards N` switches to the sharded parallel driver: every selected
//! policy becomes one shard, dispatched across `N` worker threads. The
//! headline figure is then the *aggregate* sweep throughput (all policies'
//! invocations over the sweep wall-clock). Every mode records each
//! policy's canonical report digest, and `--digests-match PATH` asserts
//! they equal the digests in a previously written file — the CI proof that
//! `--shards N` is behavior-preserving with respect to a serial run.
//!
//! `--audit` (jsonl sink only) captures the serialized stream in memory
//! instead of discarding it, then runs the `cc-replay` invariant auditor
//! over every replay and exits non-zero on any violation — a cheap CI
//! smoke test that the live event stream obeys the engine's conservation
//! laws. Throughput measured under `--audit` includes the capture cost, so
//! don't compare those figures against `--baseline` numbers.
//!
//! `--profile` runs the *measured* replays (never the warm-ups) under
//! `cc-prof`'s wall-clock profiler and prints the per-phase self-time
//! table after the results. `--profile-out PATH` writes the self-profile
//! JSON (the input to `ccprof diff`), `--profile-trace PATH` writes a
//! Chrome/Perfetto trace of the simulator's own threads, and
//! `--profile-baseline PATH` names a previously recorded self-profile:
//! when the `--baseline` throughput gate fails, the failure output then
//! attributes the regression to the phase whose share of wall clock grew
//! the most. Build with `--features alloc-profile` to also attribute
//! allocations per phase.
//!
//! `--gap` prices every selected policy's run against the hindsight-optimal
//! lower bound from `cc-bound` and prints one gap row per policy (batch
//! scenarios only — the estimators need the materialized trace). Any
//! policy landing *below* the bound is a conservation violation and exits
//! non-zero; `--gap-ceiling POLICY=PCT` additionally bounds a policy's gap
//! from above (e.g. `--gap-ceiling oracle=50` asserts the clairvoyant
//! oracle stays within 50% of optimal). Under `--shards` the pricing
//! replays run on the sharded driver, so CI checks the invariant against
//! sharded execution itself.
//!
//! `--workers N` switches to the *intra-run* parallel engine
//! (`cc_sim::run_parallel`): ONE simulation per policy, with the
//! instrumentation pipeline (arrival prefetch, JSONL encoding, ordered
//! write-out, telemetry folding) spread across N encoder workers plus the
//! feeder/writer/telemetry threads. Results are worker-count-independent;
//! CI compares `--workers 1` against `--workers 2` digests via
//! `--digests-match`. The streaming scenarios (`--scenario stream|1m`)
//! require this mode: their invocation streams are generated on the fly
//! and never materialize, so `simulate_1m` (one million functions, two
//! simulated days, ~12M invocations) runs in O(#functions) memory.

use std::time::Instant;

use bench::{BenchScenario, StreamScenario};
use cc_bound::{measured_cost_of_report, GapReport, HindsightInput, NanoCost};
use cc_policies::{FaasCache, IceBreaker, Oracle, SitW};
use cc_shard::{run_sharded, run_sharded_jsonl, NullSinkFactory, ShardedRunConfig};
use cc_sim::{
    ChannelSink, ChromeTraceSink, FixedKeepAlive, JsonlSink, NullProfiler, NullSink,
    ParallelOptions, Profiler, SamplingSink, Scheduler, SimReport, Simulation, SliceSource,
    WallProfiler,
};
use cc_trace::Trace;
use codecrunch::CodeCrunch;

/// With the `alloc-profile` feature, every allocation in this binary is
/// counted and attributed to the active profiling phase.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: cc_prof::CountingAllocator = cc_prof::CountingAllocator::new();

const USAGE: &str = "usage: simbench [--runs N] [--out PATH] [--scenario large|small|stream|1m] \
                     [--sink null|jsonl|chrome] [--policies a,b,..] \
                     [--baseline PATH] [--tolerance FRAC] \
                     [--shards N] [--workers N] [--digests-match PATH] [--audit] \
                     [--gap] [--gap-ceiling POLICY=PCT] \
                     [--profile] [--profile-out PATH] [--profile-trace PATH] \
                     [--profile-baseline PATH]";

#[derive(Clone, Copy, PartialEq, Eq)]
enum SinkMode {
    Null,
    Jsonl,
    Chrome,
}

impl SinkMode {
    fn label(self) -> &'static str {
        match self {
            SinkMode::Null => "null",
            SinkMode::Jsonl => "jsonl",
            SinkMode::Chrome => "chrome",
        }
    }
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// The six policies the bench sweeps, in canonical order.
const POLICY_NAMES: [&str; 6] = [
    "fixed_keepalive",
    "sitw",
    "faascache",
    "icebreaker",
    "oracle",
    "codecrunch",
];

/// Builds a policy by name. Runs inside worker threads in sharded mode, so
/// it takes the trace rather than capturing pre-built boxes. The trace is
/// `None` for streaming scenarios, where the invocation stream is never
/// materialized — the clairvoyant oracle is unavailable there.
fn make_policy(name: &str, trace: Option<&Trace>) -> Box<dyn Scheduler> {
    match name {
        "fixed_keepalive" => Box::new(FixedKeepAlive::ten_minutes()),
        "sitw" => Box::new(SitW::new()),
        "faascache" => Box::new(FaasCache::new()),
        "icebreaker" => Box::new(IceBreaker::new()),
        "oracle" => match trace {
            Some(trace) => Box::new(Oracle::new(trace)),
            None => usage_error(
                "oracle needs a materialized trace (not available with --scenario stream|1m)",
            ),
        },
        "codecrunch" => Box::new(CodeCrunch::new()),
        other => panic!("unknown policy {other:?}"),
    }
}

/// Which scenario family the bench drives.
enum Bench {
    /// Materialized trace (the classic path).
    Batch(BenchScenario),
    /// On-the-fly invocation stream (requires `--workers`).
    Stream(StreamScenario),
}

fn main() {
    let mut runs: u32 = 3;
    let mut out = String::from("BENCH_sim.json");
    let mut scenario_name = String::from("large");
    let mut sink = SinkMode::Null;
    let mut policy_filter: Option<Vec<String>> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance: f64 = 0.03;
    let mut shards: Option<usize> = None;
    let mut workers_opt: Option<usize> = None;
    let mut digests_match: Option<String> = None;
    let mut gap = false;
    let mut gap_ceilings: Vec<(String, f64)> = Vec::new();
    let mut audit = false;
    let mut profile = false;
    let mut profile_out: Option<String> = None;
    let mut profile_trace: Option<String> = None;
    let mut profile_baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                runs = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => usage_error("--runs takes a positive integer"),
                };
            }
            "--out" => {
                out = match args.next() {
                    Some(path) => path,
                    None => usage_error("--out takes a path"),
                };
            }
            "--scenario" => match args.next().as_deref() {
                Some(name @ ("large" | "small" | "stream" | "1m")) => {
                    scenario_name = name.into();
                }
                _ => usage_error("--scenario takes large, small, stream, or 1m"),
            },
            "--sink" => {
                sink = match args.next().as_deref() {
                    Some("null") => SinkMode::Null,
                    Some("jsonl") => SinkMode::Jsonl,
                    Some("chrome") => SinkMode::Chrome,
                    _ => usage_error("--sink takes null, jsonl, or chrome"),
                };
            }
            "--policies" => {
                policy_filter = match args.next() {
                    Some(list) => Some(list.split(',').map(|s| s.trim().to_string()).collect()),
                    None => usage_error("--policies takes a comma-separated list"),
                };
            }
            "--baseline" => {
                baseline = match args.next() {
                    Some(path) => Some(path),
                    None => usage_error("--baseline takes a path"),
                };
            }
            "--tolerance" => {
                tolerance = match args.next().and_then(|v| v.parse().ok()) {
                    Some(f) if (0.0..1.0).contains(&f) => f,
                    _ => usage_error("--tolerance takes a fraction in [0, 1)"),
                };
            }
            "--shards" => {
                shards = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => usage_error("--shards takes a positive worker count"),
                };
            }
            "--workers" => {
                workers_opt = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => usage_error("--workers takes a positive worker count"),
                };
            }
            "--digests-match" => {
                digests_match = match args.next() {
                    Some(path) => Some(path),
                    None => usage_error("--digests-match takes a path"),
                };
            }
            "--gap" => gap = true,
            "--gap-ceiling" => match args.next() {
                Some(spec) => match spec.split_once('=') {
                    Some((name, pct)) => match pct.trim().parse::<f64>() {
                        Ok(pct) if pct >= 0.0 && pct.is_finite() => {
                            gap_ceilings.push((name.trim().to_string(), pct));
                        }
                        _ => usage_error("--gap-ceiling percent must be a non-negative number"),
                    },
                    None => usage_error("--gap-ceiling takes POLICY=PCT (e.g. oracle=25)"),
                },
                None => usage_error("--gap-ceiling takes POLICY=PCT (e.g. oracle=25)"),
            },
            "--audit" => audit = true,
            "--profile" => profile = true,
            "--profile-out" => {
                profile_out = match args.next() {
                    Some(path) => Some(path),
                    None => usage_error("--profile-out takes a path"),
                };
            }
            "--profile-trace" => {
                profile_trace = match args.next() {
                    Some(path) => Some(path),
                    None => usage_error("--profile-trace takes a path"),
                };
            }
            "--profile-baseline" => {
                profile_baseline = match args.next() {
                    Some(path) => Some(path),
                    None => usage_error("--profile-baseline takes a path"),
                };
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if shards.is_some() && sink == SinkMode::Chrome {
        usage_error("--shards supports null and jsonl sinks (chrome is serial-only)");
    }
    if shards.is_some() && baseline.is_some() {
        usage_error("--baseline compares per-policy serial throughput; use it without --shards");
    }
    if audit && sink != SinkMode::Jsonl {
        usage_error("--audit checks the serialized event stream; add --sink jsonl");
    }
    if workers_opt.is_some() && shards.is_some() {
        usage_error(
            "--workers (intra-run pipeline) and --shards (run-level sharding) are exclusive",
        );
    }
    if workers_opt.is_some() && sink == SinkMode::Chrome {
        usage_error("--workers supports null and jsonl sinks (chrome is serial-only)");
    }
    if workers_opt.is_some() && baseline.is_some() {
        usage_error("--baseline compares per-policy serial throughput; use it without --workers");
    }
    if !gap_ceilings.is_empty() && !gap {
        usage_error("--gap-ceiling needs --gap");
    }
    for (name, _) in &gap_ceilings {
        if !POLICY_NAMES.contains(&name.as_str()) {
            usage_error(&format!(
                "--gap-ceiling names unknown policy {name:?} (known: {POLICY_NAMES:?})"
            ));
        }
    }

    // Profiling session: discard any residue, arm the DynScope probe sites,
    // and (when a Perfetto trace was requested) retain raw spans. Warm-up
    // replays run with profiling force-disabled, so only measured replays
    // land in the profile and `measured_wall_ns` is exactly the wall clock
    // the recorded spans must cover.
    let profiling =
        profile || profile_out.is_some() || profile_trace.is_some() || profile_baseline.is_some();
    if profiling {
        cc_prof::reset();
        cc_prof::set_wall_enabled(true);
        if profile_trace.is_some() {
            cc_prof::set_trace_capture(true);
        }
    }
    let mut measured_wall_ns: u64 = 0;

    let bench = match scenario_name.as_str() {
        "small" => Bench::Batch(BenchScenario::new()),
        "large" => Bench::Batch(BenchScenario::large()),
        "stream" => Bench::Stream(StreamScenario::smoke()),
        "1m" => Bench::Stream(StreamScenario::million()),
        _ => unreachable!("scenario name validated at parse time"),
    };
    if matches!(bench, Bench::Stream(_)) && workers_opt.is_none() {
        usage_error("streaming scenarios run on the intra-run pipeline; add --workers N");
    }
    if gap && matches!(bench, Bench::Stream(_)) {
        usage_error("--gap prices a materialized trace; streaming scenarios never build one");
    }
    match &bench {
        Bench::Batch(scenario) => eprintln!(
            "scenario: {scenario_name} ({} functions, {} invocations, {} nodes), sink: {}",
            scenario.trace.functions().len(),
            scenario.trace.invocations().len(),
            scenario.config.total_nodes(),
            sink.label(),
        ),
        Bench::Stream(scenario) => eprintln!(
            "scenario: {scenario_name} ({} functions, ~{} invocations expected, {} nodes, \
             streaming), sink: {}",
            scenario.functions,
            scenario.expected_invocations,
            scenario.config.total_nodes(),
            sink.label(),
        ),
    }

    if let Some(filter) = &policy_filter {
        for name in filter {
            if !POLICY_NAMES.contains(&name.as_str()) {
                usage_error(&format!(
                    "unknown policy {name:?} (known: {POLICY_NAMES:?})"
                ));
            }
        }
    }
    let selected: Vec<&str> = POLICY_NAMES
        .iter()
        .copied()
        .filter(|name| match &policy_filter {
            Some(filter) => filter.iter().any(|f| f == name),
            // Streaming scale defaults to the cheapest policy: the point
            // is the engine pipeline, not a policy sweep, and the oracle
            // cannot run without a materialized trace anyway.
            None if matches!(bench, Bench::Stream(_)) => *name == "fixed_keepalive",
            None => true,
        })
        .collect();

    let mut entries = Vec::new();
    let mut measured: Vec<(String, f64)> = Vec::new();
    let mut digests: Vec<(String, u64)> = Vec::new();
    let mut aggregate = None;
    let mut actual_invocations: Option<u64> = None;

    if let Some(workers) = workers_opt {
        // Intra-run parallel mode: one simulation per policy on the
        // pipelined engine. Results are worker-count-independent, so the
        // recorded digests double as the parity reference.
        let options = ParallelOptions::default().with_workers(workers);
        for name in &selected {
            if matches!(bench, Bench::Batch(_)) {
                // Warm-up replay; streaming replays are long enough to
                // amortize cold caches, and each one rebuilds the source.
                unprofiled(|| parallel_once(&bench, name, &options, sink, audit, false));
            }
            let mut best = f64::INFINITY;
            let mut reference: Option<(u64, u64, u64)> = None;
            for _ in 0..runs {
                let started = Instant::now();
                let result = parallel_once(&bench, name, &options, sink, audit, profiling);
                let elapsed = started.elapsed();
                best = best.min(elapsed.as_secs_f64());
                measured_wall_ns += elapsed.as_nanos() as u64;
                if let Some(prev) = reference {
                    assert_eq!(
                        prev, result,
                        "policy {name} is not run-to-run deterministic under --workers"
                    );
                }
                reference = Some(result);
            }
            let (digest, tel_digest, inv) = reference.expect("at least one run");
            let throughput = inv as f64 / best;
            eprintln!(
                "{name:>16}: {best:7.3} s  ({throughput:11.0} inv/s, {inv} invocations, \
                 {workers} workers)"
            );
            entries.push(serde_json::json!({
                "policy": *name,
                "seconds_per_replay": best,
                "invocations_per_sec": throughput,
                "report_digest": format!("{digest:#018x}"),
                "telemetry_digest": format!("{tel_digest:#018x}"),
            }));
            digests.push((name.to_string(), digest));
            actual_invocations = Some(inv);
        }
        aggregate = Some(serde_json::json!({
            "workers": workers as u64,
            "mode": "intra_run",
            "window_secs": options.window.as_secs_f64(),
        }));
    } else if let Some(workers) = shards {
        let Bench::Batch(scenario) = &bench else {
            unreachable!("streaming scenarios were rejected without --workers");
        };
        let invocations = scenario.trace.invocations().len() as u64;
        // Sharded mode: one shard per policy, `workers` threads, one
        // warm-up sweep, then best-of-`runs` on the sweep wall-clock.
        unprofiled(|| sharded_sweep(scenario, &selected, workers, sink, audit, false)); // warm-up
        let mut best_wall = f64::INFINITY;
        let mut best_shards: Vec<(u64, f64)> = Vec::new();
        for _ in 0..runs {
            let (wall, per_shard) =
                sharded_sweep(scenario, &selected, workers, sink, audit, profiling);
            measured_wall_ns += (wall * 1e9) as u64;
            if !best_shards.is_empty() {
                let prev: Vec<u64> = best_shards.iter().map(|(d, _)| *d).collect();
                let this: Vec<u64> = per_shard.iter().map(|(d, _)| *d).collect();
                assert_eq!(prev, this, "sharded sweep is not run-to-run deterministic");
            }
            if wall < best_wall || best_shards.is_empty() {
                best_wall = wall;
                best_shards = per_shard;
            }
        }
        let total_invocations = invocations * selected.len() as u64;
        let sweep_throughput = total_invocations as f64 / best_wall;
        eprintln!(
            "sharded sweep ({} policies, {workers} workers): {best_wall:7.3} s \
             ({sweep_throughput:11.0} inv/s aggregate)",
            selected.len()
        );
        for (name, (digest, secs)) in selected.iter().zip(&best_shards) {
            eprintln!("{name:>16}: {secs:7.3} s in shard, digest {digest:#018x}");
            entries.push(serde_json::json!({
                "policy": *name,
                "seconds_in_shard": *secs,
                "report_digest": format!("{digest:#018x}"),
            }));
            digests.push((name.to_string(), *digest));
        }
        aggregate = Some(serde_json::json!({
            "workers": workers as u64,
            "seconds_per_sweep": best_wall,
            "total_invocations": total_invocations,
            "invocations_per_sec": sweep_throughput,
        }));
    } else {
        let Bench::Batch(scenario) = &bench else {
            unreachable!("streaming scenarios were rejected without --workers");
        };
        let invocations = scenario.trace.invocations().len() as u64;
        for name in &selected {
            // Warm-up replay (page in the trace, fault in allocator arenas).
            unprofiled(|| {
                run_once(
                    scenario,
                    make_policy(name, Some(&scenario.trace)).as_mut(),
                    sink,
                    audit,
                    false,
                )
            });
            let mut best = f64::INFINITY;
            let mut digest: Option<u64> = None;
            for _ in 0..runs {
                let started = Instant::now();
                let d = run_once(
                    scenario,
                    make_policy(name, Some(&scenario.trace)).as_mut(),
                    sink,
                    audit,
                    profiling,
                );
                let elapsed = started.elapsed();
                best = best.min(elapsed.as_secs_f64());
                measured_wall_ns += elapsed.as_nanos() as u64;
                if let Some(prev) = digest {
                    assert_eq!(prev, d, "policy {name} is not run-to-run deterministic");
                }
                digest = Some(d);
            }
            let digest = digest.expect("at least one run");
            let throughput = invocations as f64 / best;
            eprintln!("{name:>16}: {best:7.3} s  ({throughput:11.0} inv/s)");
            entries.push(serde_json::json!({
                "policy": *name,
                "seconds_per_replay": best,
                "invocations_per_sec": throughput,
                "report_digest": format!("{digest:#018x}"),
            }));
            measured.push((name.to_string(), throughput));
            digests.push((name.to_string(), digest));
        }
    }

    let (gap_block, gap_failed) = if gap {
        let Bench::Batch(scenario) = &bench else {
            unreachable!("streaming scenarios were rejected with --gap");
        };
        let (block, failed) = gap_pass(scenario, &selected, shards, &gap_ceilings);
        (Some(block), failed)
    } else {
        (None, false)
    };

    let (benchmark, functions, nodes, invocations_doc) = match &bench {
        Bench::Batch(s) => (
            "simulate_10k",
            s.trace.functions().len() as u64,
            s.config.total_nodes() as u64,
            s.trace.invocations().len() as u64,
        ),
        Bench::Stream(s) => (
            if scenario_name == "1m" {
                "simulate_1m"
            } else {
                "simulate_stream"
            },
            s.functions as u64,
            s.config.total_nodes() as u64,
            actual_invocations.unwrap_or(s.expected_invocations as u64),
        ),
    };
    let doc = serde_json::json!({
        "benchmark": benchmark,
        "scenario_name": scenario_name,
        "sink": sink.label(),
        "functions": functions,
        "invocations": invocations_doc,
        "nodes": nodes,
        "runs_per_policy": runs as u64,
        "shards": shards.unwrap_or(0) as u64,
        "workers": workers_opt.unwrap_or(0) as u64,
        "aggregate": aggregate,
        "gap": gap_block,
        "results": entries,
    });
    let body = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out, body + "\n").expect("write output file");
    eprintln!("wrote {out}");

    if gap_failed {
        eprintln!(
            "gap check failed: a policy priced below the hindsight lower bound or over its \
             --gap-ceiling"
        );
        std::process::exit(1);
    }

    let captured_profile = if profiling {
        let label = format!("simbench-{scenario_name}");
        let self_profile = cc_prof::take_profile(&label, measured_wall_ns);
        eprintln!();
        eprint!("{}", self_profile.render_table());
        if let Some(path) = &profile_out {
            std::fs::write(path, cc_prof::to_json(&self_profile))
                .unwrap_or_else(|e| usage_error(&format!("cannot write {path:?}: {e}")));
            eprintln!("wrote {path}");
        }
        if let Some(path) = &profile_trace {
            std::fs::write(path, cc_prof::to_chrome_trace(&self_profile))
                .unwrap_or_else(|e| usage_error(&format!("cannot write {path:?}: {e}")));
            eprintln!("wrote {path}");
        }
        Some(self_profile)
    } else {
        None
    };

    if let Some(path) = digests_match {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read digest file {path:?}: {e}")));
        let reference = parse_digests(&text);
        if reference.is_empty() {
            usage_error(&format!("no report_digest entries in {path:?}"));
        }
        let mut failed = false;
        for (name, digest) in &digests {
            let Some((_, expected)) = reference.iter().find(|(n, _)| n == name) else {
                eprintln!("digests: {name} not in {path}, skipping");
                continue;
            };
            let verdict = if digest == expected { "ok" } else { "DIVERGED" };
            eprintln!("digests: {name:>16} {digest:#018x} vs recorded {expected:#018x} {verdict}");
            failed |= digest != expected;
        }
        if failed {
            eprintln!("digest check failed: sharded output diverged from the recorded digests");
            std::process::exit(1);
        }
    }

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read baseline {path:?}: {e}")));
        let reference = parse_baseline(&text);
        if reference.is_empty() {
            usage_error(&format!("no per-policy throughput entries in {path:?}"));
        }
        let mut regressed: Vec<String> = Vec::new();
        for (name, throughput) in &measured {
            let Some((_, base)) = reference.iter().find(|(n, _)| n == name) else {
                eprintln!("baseline: {name} not in {path}, skipping");
                continue;
            };
            let floor = base * (1.0 - tolerance);
            let verdict = if *throughput >= floor {
                "ok"
            } else {
                "REGRESSED"
            };
            eprintln!(
                "baseline: {name:>16} measured {throughput:11.0} inv/s vs floor {floor:11.0} \
                 (recorded {base:.0}, tolerance {tolerance}) {verdict}"
            );
            if *throughput < floor {
                regressed.push(name.clone());
            }
        }
        if !regressed.is_empty() {
            eprintln!(
                "baseline check failed on scenario '{scenario_name}': throughput regressed \
                 beyond tolerance for {}",
                regressed.join(", ")
            );
            attribute_regression(captured_profile.as_ref(), profile_baseline.as_deref());
            std::process::exit(1);
        }
    }
}

/// Prices every selected policy against the scenario's hindsight-optimal
/// DP lower bound (`cc-bound`) and prints one gap row per policy.
///
/// Measured costs come from a dedicated pricing replay per policy — under
/// `--shards` those replays run on the sharded driver with the same worker
/// count, so the invariant is checked against sharded execution itself;
/// other modes price serially (`--workers` results are proven
/// worker-count-independent by the digest parity check, so the serial
/// replay prices the identical run).
///
/// Returns the JSON block embedded under `"gap"` in the output document
/// and whether any row failed: a negative gap (the conservation invariant
/// broke — the bound or the engine's accounting has a bug) or a gap above
/// the policy's `--gap-ceiling`.
fn gap_pass(
    scenario: &BenchScenario,
    selected: &[&str],
    shards: Option<usize>,
    ceilings: &[(String, f64)],
) -> (serde_json::Value, bool) {
    let input = HindsightInput::from_trace(&scenario.trace, &scenario.workload, &scenario.config)
        .unwrap_or_else(|e| usage_error(&format!("--gap: {e}")));
    let reference = GapReport::for_input(&input);
    let lambda = reference.lambda_nanos;
    let price = |name: &str| -> NanoCost {
        let mut policy = make_policy(name, Some(&scenario.trace));
        let report = Simulation::new(scenario.config.clone(), &scenario.trace, &scenario.workload)
            .run(policy.as_mut());
        measured_cost_of_report(&report, lambda)
    };
    let measured: Vec<(&str, NanoCost)> = match shards {
        Some(workers) => {
            let jobs: Vec<_> = selected
                .iter()
                .map(|&name| move |_sink: &mut NullSink| price(name))
                .collect();
            run_sharded(jobs, workers, &NullSinkFactory)
                .into_iter()
                .zip(selected)
                .map(|(r, &name)| (name, r.outcome.expect("shard panicked")))
                .collect()
        }
        None => selected.iter().map(|&name| (name, price(name))).collect(),
    };
    let mut rows = Vec::new();
    let mut failed = false;
    for (name, cost) in measured {
        let row = reference.policy(name, cost);
        let ceiling = ceilings
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, pct)| pct);
        let over_ceiling = ceiling.is_some_and(|pct| row.gap_pct > pct);
        let verdict = if !row.holds() {
            "VIOLATED"
        } else if over_ceiling {
            "OVER CEILING"
        } else {
            "ok"
        };
        eprintln!(
            "gap: {name:>16} measured {:>20} lower {:>20} gap {:>8.2}% {verdict}",
            row.measured, row.lower_bound, row.gap_pct
        );
        failed |= !row.holds() || over_ceiling;
        rows.push(serde_json::json!({
            "policy": name,
            "measured_nano": row.measured.to_string(),
            "lower_bound_nano": row.lower_bound.to_string(),
            "gap_nano": row.gap.to_string(),
            "gap_pct": row.gap_pct,
            "holds": row.holds(),
            "ceiling_pct": ceiling,
        }));
    }
    let block = serde_json::json!({
        "lambda_nanos": lambda,
        "lower_bound_nano": reference.lower_bound.to_string(),
        "policies": rows,
    });
    (block, failed)
}

/// When a throughput gate fails under `--profile`, points at the phase
/// whose share of wall clock grew the most relative to the recorded
/// self-profile — "codecrunch regressed" becomes "pool_evict's share of
/// wall doubled".
fn attribute_regression(new_profile: Option<&cc_prof::SelfProfile>, baseline: Option<&str>) {
    let Some(new_profile) = new_profile else {
        return;
    };
    let Some(path) = baseline else {
        eprintln!(
            "baseline: rerun with --profile-baseline SELF_PROFILE.json to attribute the \
             regression to a phase"
        );
        return;
    };
    let base = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| cc_prof::from_json(&text))
    {
        Ok(base) => base,
        Err(e) => {
            eprintln!("baseline: cannot attribute regression ({path}: {e})");
            return;
        }
    };
    // Shares, not nanoseconds: the recorded profile may come from another
    // host or another run count.
    let report = cc_prof::diff_profiles(
        &base,
        new_profile,
        cc_prof::DiffOptions {
            relative: true,
            ..cc_prof::DiffOptions::default()
        },
    );
    let top = report.rows.iter().max_by(|a, b| {
        (a.new_share - a.base_share)
            .partial_cmp(&(b.new_share - b.base_share))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if let Some(row) = top {
        eprintln!(
            "baseline: top self-time delta: phase '{}' went {:.1}% -> {:.1}% of wall clock",
            row.phase.label(),
            row.base_share * 100.0,
            row.new_share * 100.0,
        );
    }
}

/// Runs `f` with the DynScope probe sites force-disabled — warm-up replays
/// must not leak spans into the measured profile.
fn unprofiled<T>(f: impl FnOnce() -> T) -> T {
    let was = cc_prof::wall_enabled();
    cc_prof::set_wall_enabled(false);
    let result = f();
    cc_prof::set_wall_enabled(was);
    result
}

/// Pulls `(policy, invocations_per_sec)` pairs out of a recorded
/// `BENCH_sim.json` with a line scan — the vendored `serde_json` has no
/// parser, and the schema is shallow enough that one is not needed.
/// Accepts both this binary's output (`invocations_per_sec`) and the
/// annotated before/after variant (`after_invocations_per_sec`).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut policy: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"policy\":") {
            policy = Some(
                rest.trim()
                    .trim_end_matches(',')
                    .trim_matches('"')
                    .to_string(),
            );
        } else if let Some(rest) = line
            .strip_prefix("\"after_invocations_per_sec\":")
            .or_else(|| line.strip_prefix("\"invocations_per_sec\":"))
        {
            if let (Some(name), Ok(value)) = (
                policy.take(),
                rest.trim().trim_end_matches(',').parse::<f64>(),
            ) {
                pairs.push((name, value));
            }
        }
    }
    pairs
}

/// One replay on the intra-run parallel engine. Returns
/// `(report digest, telemetry digest, invocations)` — the tuple the
/// determinism assertion and the digest file both key on.
fn parallel_once(
    bench: &Bench,
    name: &str,
    options: &ParallelOptions,
    sink: SinkMode,
    audit: bool,
    profiled: bool,
) -> (u64, u64, u64) {
    if profiled {
        parallel_once_p::<WallProfiler>(bench, name, options, sink, audit)
    } else {
        parallel_once_p::<NullProfiler>(bench, name, options, sink, audit)
    }
}

fn parallel_once_p<P: Profiler>(
    bench: &Bench,
    name: &str,
    options: &ParallelOptions,
    sink: SinkMode,
    audit: bool,
) -> (u64, u64, u64) {
    match bench {
        Bench::Batch(s) => {
            let mut policy = make_policy(name, Some(&s.trace));
            run_parallel_once::<_, P>(
                &s.config,
                SliceSource::from_trace(&s.trace),
                &s.workload,
                policy.as_mut(),
                options,
                sink,
                audit,
            )
        }
        Bench::Stream(s) => {
            let mut policy = make_policy(name, None);
            // Per-invocation records at streaming scale would defeat the
            // constant-memory point; the digest then covers stats only.
            let options = options.clone().without_records();
            run_parallel_once::<_, P>(
                &s.config,
                s.source(),
                &s.workload,
                policy.as_mut(),
                &options,
                sink,
                audit,
            )
        }
    }
}

fn run_parallel_once<Src: cc_sim::ArrivalSource + Send, P: Profiler>(
    config: &cc_sim::ClusterConfig,
    source: Src,
    workload: &cc_workload::Workload,
    policy: &mut dyn Scheduler,
    options: &ParallelOptions,
    sink: SinkMode,
    audit: bool,
) -> (u64, u64, u64) {
    let (outcome, captured): (_, Option<Vec<u8>>) = match sink {
        SinkMode::Null => {
            let (outcome, _) = cc_sim::run_parallel_profiled::<_, _, P>(
                config,
                source,
                workload,
                policy,
                None::<std::io::Sink>,
                options,
            )
            .expect("pipeline io");
            (outcome, None)
        }
        SinkMode::Jsonl if audit => {
            let (outcome, bytes) = cc_sim::run_parallel_profiled::<_, _, P>(
                config,
                source,
                workload,
                policy,
                Some(Vec::new()),
                options,
            )
            .expect("writing to memory cannot fail");
            (outcome, bytes)
        }
        SinkMode::Jsonl => {
            let (outcome, _) = cc_sim::run_parallel_profiled::<_, _, P>(
                config,
                source,
                workload,
                policy,
                Some(std::io::sink()),
                options,
            )
            .expect("writing to io::sink cannot fail");
            (outcome, None)
        }
        SinkMode::Chrome => unreachable!("rejected at argument parsing"),
    };
    if let Some(bytes) = captured {
        audit_stream(&bytes);
    }
    (
        outcome.report.digest(),
        outcome.telemetry.digest(),
        outcome.report.stats.invocations(),
    )
}

fn check_report(scenario: &BenchScenario, report: &SimReport) -> u64 {
    assert_eq!(
        report.records.len() as u64,
        scenario.trace.invocations().len() as u64
    );
    report.digest()
}

fn run_once(
    scenario: &BenchScenario,
    policy: &mut dyn Scheduler,
    sink: SinkMode,
    audit: bool,
    profiled: bool,
) -> u64 {
    if profiled {
        run_once_p::<WallProfiler>(scenario, policy, sink, audit)
    } else {
        run_once_p::<NullProfiler>(scenario, policy, sink, audit)
    }
}

fn run_once_p<P: Profiler>(
    scenario: &BenchScenario,
    policy: &mut dyn Scheduler,
    sink: SinkMode,
    audit: bool,
) -> u64 {
    let sim = Simulation::new(scenario.config.clone(), &scenario.trace, &scenario.workload);
    let report = match sink {
        SinkMode::Null => sim.run_with_sink_profiled::<_, P>(policy, &mut NullSink),
        SinkMode::Jsonl if audit => {
            // Audit mode keeps the serialized stream in memory and runs
            // the invariant auditor over it after the replay.
            let mut sink = JsonlSink::new(Vec::new());
            let report = sim.run_with_sink_profiled::<_, P>(policy, &mut sink);
            let bytes = sink.finish().expect("writing to memory cannot fail");
            audit_stream(&bytes);
            report
        }
        SinkMode::Jsonl => {
            let mut sink = JsonlSink::new(std::io::sink());
            let report = sim.run_with_sink_profiled::<_, P>(policy, &mut sink);
            assert!(sink.events_written() > 0);
            report
        }
        SinkMode::Chrome => {
            let mut sink = ChromeTraceSink::new(std::io::sink());
            sim.run_with_sink_profiled::<_, P>(policy, &mut sink)
        }
    };
    check_report(scenario, &report)
}

/// Decodes and audits one captured JSONL stream; exits non-zero on a
/// malformed stream or any invariant violation.
fn audit_stream(bytes: &[u8]) {
    let text = std::str::from_utf8(bytes).expect("jsonl output is utf-8");
    let log = cc_replay::decode_stream(text).unwrap_or_else(|e| {
        eprintln!("audit: stream failed to decode: {e}");
        std::process::exit(1);
    });
    let report = cc_replay::audit_log(&log, false);
    if !report.is_clean() {
        eprint!("{}", report.summary());
        std::process::exit(1);
    }
    eprintln!(
        "audit: {} events across {} shard(s), 0 violations",
        log.events(),
        log.shards.len()
    );
}

/// One sharded sweep: each selected policy is a shard, dispatched across
/// `workers` threads. Returns the sweep wall-clock and per-shard
/// `(report digest, seconds inside the shard)` in policy order.
fn sharded_sweep(
    scenario: &BenchScenario,
    selected: &[&str],
    workers: usize,
    sink: SinkMode,
    audit: bool,
    profiled: bool,
) -> (f64, Vec<(u64, f64)>) {
    if profiled {
        sharded_sweep_p::<WallProfiler>(scenario, selected, workers, sink, audit)
    } else {
        sharded_sweep_p::<NullProfiler>(scenario, selected, workers, sink, audit)
    }
}

fn sharded_sweep_p<P: Profiler>(
    scenario: &BenchScenario,
    selected: &[&str],
    workers: usize,
    sink: SinkMode,
    audit: bool,
) -> (f64, Vec<(u64, f64)>) {
    let started = Instant::now();
    let per_shard: Vec<(u64, f64)> = match sink {
        SinkMode::Null => {
            let jobs: Vec<_> = selected
                .iter()
                .map(|&name| {
                    move |_sink: &mut NullSink| {
                        let shard_started = Instant::now();
                        let mut policy = make_policy(name, Some(&scenario.trace));
                        let report = Simulation::new(
                            scenario.config.clone(),
                            &scenario.trace,
                            &scenario.workload,
                        )
                        .run_with_sink_profiled::<_, P>(policy.as_mut(), &mut NullSink);
                        (
                            check_report(scenario, &report),
                            shard_started.elapsed().as_secs_f64(),
                        )
                    }
                })
                .collect();
            run_sharded(jobs, workers, &NullSinkFactory)
                .into_iter()
                .map(|r| r.outcome.expect("shard panicked"))
                .collect()
        }
        SinkMode::Jsonl => {
            let jobs: Vec<_> = selected
                .iter()
                .map(|&name| {
                    move |sink: &mut SamplingSink<ChannelSink>| {
                        let shard_started = Instant::now();
                        let mut policy = make_policy(name, Some(&scenario.trace));
                        let report = Simulation::new(
                            scenario.config.clone(),
                            &scenario.trace,
                            &scenario.workload,
                        )
                        .run_with_sink_profiled::<_, P>(policy.as_mut(), sink);
                        (
                            check_report(scenario, &report),
                            shard_started.elapsed().as_secs_f64(),
                        )
                    }
                })
                .collect();
            let config = ShardedRunConfig {
                workers,
                channel_capacity: 8192,
                lossy: false,
                sample_every: 1,
            };
            if audit {
                let (results, merged, mux) = run_sharded_jsonl(jobs, &config, Vec::new())
                    .expect("writing to memory cannot fail");
                assert!(
                    mux.events_written > 0,
                    "sharded jsonl run emitted no events"
                );
                audit_stream(&merged);
                results
                    .into_iter()
                    .map(|r| r.outcome.expect("shard panicked"))
                    .collect()
            } else {
                let (results, _, mux) = run_sharded_jsonl(jobs, &config, std::io::sink())
                    .expect("writing to io::sink cannot fail");
                assert!(
                    mux.events_written > 0,
                    "sharded jsonl run emitted no events"
                );
                results
                    .into_iter()
                    .map(|r| r.outcome.expect("shard panicked"))
                    .collect()
            }
        }
        SinkMode::Chrome => unreachable!("rejected at argument parsing"),
    };
    (started.elapsed().as_secs_f64(), per_shard)
}

/// Pulls `(policy, report_digest)` pairs out of a recorded
/// `BENCH_sim.json` with the same line scan as [`parse_baseline`].
fn parse_digests(text: &str) -> Vec<(String, u64)> {
    let mut pairs = Vec::new();
    let mut policy: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"policy\":") {
            policy = Some(
                rest.trim()
                    .trim_end_matches(',')
                    .trim_matches('"')
                    .to_string(),
            );
        } else if let Some(rest) = line.strip_prefix("\"report_digest\":") {
            let token = rest.trim().trim_end_matches(',').trim_matches('"');
            let token = token.strip_prefix("0x").unwrap_or(token);
            if let (Some(name), Ok(value)) = (policy.take(), u64::from_str_radix(token, 16)) {
                pairs.push((name, value));
            }
        }
    }
    pairs
}
