//! Experiment runner.
//!
//! ```sh
//! expr all                 # run every experiment at the standard scale
//! expr fig7 fig12          # run specific experiments
//! expr --smoke all         # run at the tiny CI scale
//! expr --list              # list experiment ids
//! expr --json DIR all      # additionally write results as JSON files
//! expr --telemetry DIR all # also dump per-run JSONL telemetry into DIR
//! expr --shards 4 all      # run experiments in parallel on 4 workers
//! ```
//!
//! `--shards N` dispatches the selected experiments across `N` worker
//! threads via the sharded driver: output still prints in the requested
//! (paper) order, a panicking experiment no longer aborts the rest of the
//! sweep, and per-run telemetry files (distinct paths per experiment) are
//! unaffected.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cc_experiments::{all_experiments, enable_telemetry, experiment_by_id, Scale};
use cc_shard::{run_sharded, NullSinkFactory};
use cc_sim::NullSink;

fn main() -> ExitCode {
    let mut scale = Scale::standard();
    let mut json_dir: Option<PathBuf> = None;
    let mut shards: Option<usize> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::smoke(),
            "--large" => scale = Scale::large(),
            "--list" => {
                for experiment in all_experiments() {
                    println!("{:<16} {}", experiment.id(), experiment.title());
                }
                return ExitCode::SUCCESS;
            }
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry" => match args.next() {
                Some(dir) => {
                    if let Err(e) = enable_telemetry(&PathBuf::from(&dir)) {
                        eprintln!("cannot set up telemetry dir {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                None => {
                    eprintln!("--telemetry requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => shards = Some(n),
                _ => {
                    eprintln!("--shards requires a positive worker count");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: expr [--smoke|--large] [--json DIR] [--telemetry DIR] [--shards N] \
                     [--list] <all | experiment ids...>"
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiments requested; try `expr --list` or `expr all`");
        return ExitCode::FAILURE;
    }

    let experiments: Vec<_> = if ids.iter().any(|i| i == "all") {
        all_experiments()
    } else {
        let mut selected = Vec::new();
        for id in &ids {
            match experiment_by_id(id) {
                Some(experiment) => selected.push(experiment),
                None => {
                    eprintln!("unknown experiment id {id:?}; try `expr --list`");
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };

    if let Some(dir) = &json_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    if let Some(workers) = shards {
        // Sharded sweep: each experiment is one shard, rebuilt by id inside
        // its worker (experiment objects are not Send). Results print in
        // the requested order, and a panicking experiment is isolated to
        // its shard instead of aborting the sweep.
        let scale_ref = &scale;
        let jobs: Vec<_> = experiments
            .iter()
            .map(|experiment| {
                let id = experiment.id();
                move |_sink: &mut NullSink| {
                    let experiment = experiment_by_id(id).expect("id came from the registry");
                    let started = std::time::Instant::now();
                    let output = experiment.run(scale_ref);
                    (output, started.elapsed().as_secs_f64())
                }
            })
            .collect();
        let mut failed = false;
        for result in run_sharded(jobs, workers, &NullSinkFactory) {
            match result.outcome {
                Ok((output, seconds)) => {
                    output.print();
                    eprintln!(
                        "[{} finished in {seconds:.1}s on shard {}]\n",
                        output.id, result.shard
                    );
                    if let Some(dir) = &json_dir {
                        if let Err(code) = write_json(dir, &output) {
                            return code;
                        }
                    }
                }
                Err(panic) => {
                    eprintln!("[shard {} panicked: {panic}]\n", result.shard);
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    for experiment in experiments {
        let started = std::time::Instant::now();
        let output = experiment.run(&scale);
        output.print();
        eprintln!(
            "[{} finished in {:.1}s]\n",
            output.id,
            started.elapsed().as_secs_f64()
        );
        if let Some(dir) = &json_dir {
            if let Err(code) = write_json(dir, &output) {
                return code;
            }
        }
    }
    ExitCode::SUCCESS
}

fn write_json(dir: &Path, output: &cc_experiments::ExperimentOutput) -> Result<(), ExitCode> {
    let path = dir.join(format!("{}.json", output.id));
    match serde_json::to_vec_pretty(output) {
        Ok(bytes) => {
            if let Err(e) = fs::write(&path, bytes) {
                eprintln!("cannot write {}: {e}", path.display());
                return Err(ExitCode::FAILURE);
            }
        }
        Err(e) => {
            eprintln!("cannot serialize {}: {e}", output.id);
            return Err(ExitCode::FAILURE);
        }
    }
    Ok(())
}
