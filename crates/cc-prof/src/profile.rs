//! The collected self-profile data model and its human-readable table.

use std::fmt::Write as _;

use crate::phase::{PerfCounter, Phase};

/// Per-phase aggregate row of a collected profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRow {
    /// Which phase this row aggregates.
    pub phase: Phase,
    /// Spans closed.
    pub count: u64,
    /// Total wall nanoseconds inside the phase (children included).
    pub total_ns: u64,
    /// Wall nanoseconds exclusive of child phases.
    pub self_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
    /// Heap allocations attributed to the phase (0 unless the counting
    /// allocator is installed).
    pub alloc_count: u64,
    /// Heap bytes attributed to the phase.
    pub alloc_bytes: u64,
}

/// Allocation totals for a profile (see `cc_prof::alloc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSummary {
    /// Whether the counting allocator was installed in this binary; when
    /// false every other field is structurally zero, not measured-zero.
    pub installed: bool,
    /// Total allocations during the session.
    pub total_count: u64,
    /// Total bytes allocated during the session.
    pub total_bytes: u64,
    /// Allocations made with no profiling span open.
    pub unattributed_count: u64,
    /// Bytes allocated with no profiling span open.
    pub unattributed_bytes: u64,
    /// Peak live heap bytes over the process lifetime.
    pub peak_live_bytes: u64,
}

/// A thread that recorded spans, with its display label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Profiler-assigned thread id (dense, first-use order).
    pub tid: u32,
    /// Display label (explicit via `thread_label`, else the std thread
    /// name, else `thread-<tid>`).
    pub label: String,
}

/// One retained wall-trace span (only when trace capture was on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Phase of the span.
    pub phase: Phase,
    /// Recording thread.
    pub tid: u32,
    /// Start, nanoseconds since the profiling epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A collected self-profile: everything the exporters serialize.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelfProfile {
    /// Session label (scenario + configuration).
    pub label: String,
    /// Caller-measured wall clock of the profiled session, nanoseconds.
    pub wall_ns: u64,
    /// Per-phase rows, in canonical phase order; phases with no spans and
    /// no attributed allocations are omitted.
    pub phases: Vec<PhaseRow>,
    /// Nonzero hot-path counters, in canonical counter order.
    pub counters: Vec<(PerfCounter, u64)>,
    /// Allocation totals.
    pub alloc: AllocSummary,
    /// Threads that recorded spans, ordered by tid.
    pub threads: Vec<ThreadInfo>,
    /// Retained wall-trace spans ordered by start time (empty unless
    /// trace capture was on).
    pub trace: Vec<TraceSpan>,
    /// Spans dropped past the per-thread trace cap.
    pub trace_events_dropped: u64,
    /// `exit` calls with no matching `enter` (probe bugs; should be 0).
    pub unbalanced_exits: u64,
}

impl SelfProfile {
    /// The row for `phase`, if it recorded anything.
    pub fn row(&self, phase: Phase) -> Option<&PhaseRow> {
        self.phases.iter().find(|r| r.phase == phase)
    }

    /// The value of `counter` (0 if it never moved).
    pub fn counter(&self, counter: PerfCounter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |&(_, v)| v)
    }

    /// Sum of per-phase self time — the profile's coverage of wall clock.
    pub fn total_self_ns(&self) -> u64 {
        self.phases.iter().map(|r| r.self_ns).sum()
    }

    /// `self` time of `phase` as a share of wall clock (0 when wall is
    /// unknown). The unit `ccprof diff --relative` compares across hosts.
    pub fn self_share(&self, phase: Phase) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.row(phase).map_or(0.0, |r| r.self_ns as f64) / self.wall_ns as f64
    }

    /// Renders the human-readable table printed by `--profile` and
    /// `ccprof show`, sorted by descending self time.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "self-profile: {}", self.label);
        let _ = writeln!(
            out,
            "  wall {:>12}   self-coverage {:>5.1}%",
            fmt_ns(self.wall_ns),
            if self.wall_ns == 0 {
                0.0
            } else {
                100.0 * self.total_self_ns() as f64 / self.wall_ns as f64
            }
        );
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>12} {:>12} {:>10} {:>6} {:>12} {:>10}",
            "phase", "count", "total", "self", "max", "self%", "allocs", "bytes"
        );
        let mut rows = self.phases.clone();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.phase.cmp(&b.phase)));
        for row in &rows {
            let share = if self.wall_ns == 0 {
                0.0
            } else {
                100.0 * row.self_ns as f64 / self.wall_ns as f64
            };
            let _ = writeln!(
                out,
                "  {:<16} {:>10} {:>12} {:>12} {:>10} {:>5.1}% {:>12} {:>10}",
                row.phase.label(),
                row.count,
                fmt_ns(row.total_ns),
                fmt_ns(row.self_ns),
                fmt_ns(row.max_ns),
                share,
                row.alloc_count,
                fmt_bytes(row.alloc_bytes),
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for &(counter, value) in &self.counters {
                let _ = writeln!(out, "    {:<24} {:>14}", counter.label(), value);
            }
        }
        if self.alloc.installed {
            let _ = writeln!(
                out,
                "  alloc: {} allocations, {} total, {} peak live ({} / {} unattributed)",
                self.alloc.total_count,
                fmt_bytes(self.alloc.total_bytes),
                fmt_bytes(self.alloc.peak_live_bytes),
                self.alloc.unattributed_count,
                fmt_bytes(self.alloc.unattributed_bytes),
            );
        } else {
            let _ = writeln!(out, "  alloc: n/a (counting allocator not installed)");
        }
        if self.unbalanced_exits > 0 {
            let _ = writeln!(out, "  WARNING: {} unbalanced exits", self.unbalanced_exits);
        }
        if self.trace_events_dropped > 0 {
            let _ = writeln!(
                out,
                "  note: {} trace events dropped past per-thread cap",
                self.trace_events_dropped
            );
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Formats a byte count with an adaptive unit (B/KiB/MiB/GiB).
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2}MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1}KiB", b / KIB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sorts_by_self_time_and_reports_coverage() {
        let profile = SelfProfile {
            label: "unit".to_string(),
            wall_ns: 1_000_000,
            phases: vec![
                PhaseRow {
                    phase: Phase::Arrival,
                    count: 10,
                    total_ns: 200_000,
                    self_ns: 150_000,
                    max_ns: 40_000,
                    alloc_count: 0,
                    alloc_bytes: 0,
                },
                PhaseRow {
                    phase: Phase::Completion,
                    count: 10,
                    total_ns: 700_000,
                    self_ns: 650_000,
                    max_ns: 90_000,
                    alloc_count: 3,
                    alloc_bytes: 4096,
                },
            ],
            counters: vec![(PerfCounter::PoolInsert, 42)],
            ..SelfProfile::default()
        };
        assert_eq!(profile.total_self_ns(), 800_000);
        assert!((profile.self_share(Phase::Completion) - 0.65).abs() < 1e-9);
        let table = profile.render_table();
        let completion_at = table.find("completion").unwrap();
        let arrival_at = table.find("arrival").unwrap();
        assert!(completion_at < arrival_at, "sorted by self time desc");
        assert!(table.contains("80.0%"), "coverage line:\n{table}");
        assert!(table.contains("pool_insert"));
        assert!(table.contains("n/a"), "allocator not installed");
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.500ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
    }
}
