//! Aggregation of simulator service records into the paper's figures of
//! merit.

use cc_types::{ServiceRecord, SimDuration, StartKind};

use crate::{Cdf, Summary, TimeSeries};

/// Per-[`StartKind`] service-time statistics.
#[derive(Debug, Clone, Default)]
pub struct StartBreakdown {
    /// Service-time summary for invocations started this way (seconds).
    pub service: Summary,
    /// Number of invocations started this way.
    pub count: u64,
}

/// The complete figure-of-merit bundle the paper's evaluation reports for
/// one simulation run.
///
/// Feed it every [`ServiceRecord`] the simulator emits, then read off mean
/// service time, warm-start fraction (overall and per minute), wait times,
/// and per-start-kind breakdowns.
///
/// # Example
///
/// ```
/// use cc_metrics::ServiceStats;
/// use cc_types::{Arch, FunctionId, ServiceRecord, SimDuration, SimTime, StartKind};
///
/// let mut stats = ServiceStats::new(SimDuration::from_mins(1));
/// stats.observe(&ServiceRecord {
///     function: FunctionId::new(0),
///     arrival: SimTime::ZERO,
///     wait: SimDuration::ZERO,
///     start_penalty: SimDuration::from_secs(1),
///     execution: SimDuration::from_secs(2),
///     kind: StartKind::Cold,
///     arch: Arch::X86,
/// });
/// assert_eq!(stats.mean_service_time_secs(), 3.0);
/// assert_eq!(stats.warm_fraction(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ServiceStats {
    service: Summary,
    wait: Summary,
    warm_uncompressed: StartBreakdown,
    warm_compressed: StartBreakdown,
    cold: StartBreakdown,
    warm_per_interval: TimeSeries,
    invocations_per_interval: TimeSeries,
    service_per_interval: TimeSeries,
}

impl ServiceStats {
    /// Creates an empty aggregator bucketing time series at `interval`.
    pub fn new(interval: SimDuration) -> Self {
        ServiceStats {
            service: Summary::new(),
            wait: Summary::new(),
            warm_uncompressed: StartBreakdown::default(),
            warm_compressed: StartBreakdown::default(),
            cold: StartBreakdown::default(),
            warm_per_interval: TimeSeries::new(interval),
            invocations_per_interval: TimeSeries::new(interval),
            service_per_interval: TimeSeries::new(interval),
        }
    }

    /// Incorporates one completed invocation.
    pub fn observe(&mut self, record: &ServiceRecord) {
        let service_secs = record.service_time().as_secs_f64();
        self.service.record(service_secs);
        self.wait.record(record.wait.as_secs_f64());
        let bucket = match record.kind {
            StartKind::WarmUncompressed => &mut self.warm_uncompressed,
            StartKind::WarmCompressed => &mut self.warm_compressed,
            StartKind::Cold => &mut self.cold,
        };
        bucket.service.record(service_secs);
        bucket.count += 1;

        self.invocations_per_interval.record(record.arrival, 1.0);
        self.service_per_interval
            .record(record.arrival, service_secs);
        if record.kind.is_warm() {
            self.warm_per_interval.record(record.arrival, 1.0);
        }
    }

    /// Total number of completed invocations.
    pub fn invocations(&self) -> u64 {
        self.warm_uncompressed.count + self.warm_compressed.count + self.cold.count
    }

    /// Mean end-to-end service time in seconds (the paper's headline metric).
    pub fn mean_service_time_secs(&self) -> f64 {
        self.service.mean()
    }

    /// Mean queueing wait in seconds.
    pub fn mean_wait_secs(&self) -> f64 {
        self.wait.mean()
    }

    /// Fraction of invocations that received any warm start, in `[0, 1]`.
    pub fn warm_fraction(&self) -> f64 {
        let n = self.invocations();
        if n == 0 {
            return 0.0;
        }
        (self.warm_uncompressed.count + self.warm_compressed.count) as f64 / n as f64
    }

    /// Fraction of invocations that suffered a cold start, in `[0, 1]`.
    pub fn cold_fraction(&self) -> f64 {
        let n = self.invocations();
        if n == 0 {
            return 0.0;
        }
        self.cold.count as f64 / n as f64
    }

    /// Per-start-kind breakdown.
    pub fn breakdown(&self, kind: StartKind) -> &StartBreakdown {
        match kind {
            StartKind::WarmUncompressed => &self.warm_uncompressed,
            StartKind::WarmCompressed => &self.warm_compressed,
            StartKind::Cold => &self.cold,
        }
    }

    /// Overall service-time summary (seconds); `&mut` for lazy percentile
    /// sorting.
    pub fn service_summary(&mut self) -> &mut Summary {
        &mut self.service
    }

    /// Builds the per-invocation service-time CDF (seconds) — Fig. 7(b).
    pub fn service_cdf(&mut self) -> Cdf {
        Cdf::from_samples(self.service.sorted_samples().to_vec())
    }

    /// Warm-start fraction per interval — Figs. 1(a-b), 10(a), 11.
    pub fn warm_fraction_series(&self) -> Vec<f64> {
        self.warm_per_interval
            .ratio_of_sums(&self.invocations_per_interval)
    }

    /// Invocation count per interval (load curve).
    pub fn load_series(&self) -> &TimeSeries {
        &self.invocations_per_interval
    }

    /// Mean service time per interval — Fig. 15.
    pub fn service_time_series(&self) -> Vec<f64> {
        self.service_per_interval.means()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::{Arch, FunctionId, SimTime};

    fn rec(kind: StartKind, at_min: u64, exec_secs: u64) -> ServiceRecord {
        ServiceRecord {
            function: FunctionId::new(0),
            arrival: SimTime::ZERO + SimDuration::from_mins(at_min),
            wait: SimDuration::ZERO,
            start_penalty: match kind {
                StartKind::WarmUncompressed => SimDuration::ZERO,
                StartKind::WarmCompressed => SimDuration::from_millis(370),
                StartKind::Cold => SimDuration::from_secs(3),
            },
            execution: SimDuration::from_secs(exec_secs),
            kind,
            arch: Arch::X86,
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut stats = ServiceStats::new(SimDuration::from_mins(1));
        stats.observe(&rec(StartKind::Cold, 0, 1));
        stats.observe(&rec(StartKind::WarmUncompressed, 0, 1));
        stats.observe(&rec(StartKind::WarmCompressed, 0, 1));
        stats.observe(&rec(StartKind::WarmUncompressed, 1, 1));
        assert_eq!(stats.invocations(), 4);
        assert!((stats.warm_fraction() + stats.cold_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(stats.warm_fraction(), 0.75);
    }

    #[test]
    fn per_kind_breakdown_counts() {
        let mut stats = ServiceStats::new(SimDuration::from_mins(1));
        stats.observe(&rec(StartKind::Cold, 0, 2));
        stats.observe(&rec(StartKind::Cold, 0, 2));
        assert_eq!(stats.breakdown(StartKind::Cold).count, 2);
        assert_eq!(stats.breakdown(StartKind::WarmCompressed).count, 0);
        // Cold service = 3s penalty + 2s exec.
        assert_eq!(stats.breakdown(StartKind::Cold).service.mean(), 5.0);
    }

    #[test]
    fn warm_series_tracks_intervals() {
        let mut stats = ServiceStats::new(SimDuration::from_mins(1));
        stats.observe(&rec(StartKind::Cold, 0, 1));
        stats.observe(&rec(StartKind::WarmUncompressed, 0, 1));
        stats.observe(&rec(StartKind::WarmUncompressed, 1, 1));
        let series = stats.warm_fraction_series();
        assert_eq!(series, vec![0.5, 1.0]);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = ServiceStats::new(SimDuration::from_mins(1));
        assert_eq!(stats.invocations(), 0);
        assert_eq!(stats.mean_service_time_secs(), 0.0);
        assert_eq!(stats.warm_fraction(), 0.0);
        assert_eq!(stats.cold_fraction(), 0.0);
    }

    #[test]
    fn cdf_matches_observations() {
        let mut stats = ServiceStats::new(SimDuration::from_mins(1));
        stats.observe(&rec(StartKind::WarmUncompressed, 0, 1));
        stats.observe(&rec(StartKind::WarmUncompressed, 0, 3));
        let cdf = stats.service_cdf();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.5);
    }
}
