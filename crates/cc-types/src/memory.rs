//! Memory size newtype.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A memory amount in mebibytes.
///
/// Used for function footprints (warm instance size, compressed size) and
/// node capacities. Integral MiB granularity matches the Azure trace schema
/// and keeps keep-alive cost arithmetic exact.
///
/// # Example
///
/// ```
/// use cc_types::MemoryMb;
///
/// let node = MemoryMb::from_gb(32);
/// let f = MemoryMb::new(512);
/// assert_eq!(node - f, MemoryMb::new(32 * 1024 - 512));
/// assert!(f < node);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MemoryMb(u32);

impl MemoryMb {
    /// Zero bytes of memory.
    pub const ZERO: MemoryMb = MemoryMb(0);

    /// Creates a memory amount from mebibytes.
    pub const fn new(mb: u32) -> Self {
        MemoryMb(mb)
    }

    /// Creates a memory amount from gibibytes.
    pub const fn from_gb(gb: u32) -> Self {
        MemoryMb(gb * 1024)
    }

    /// Returns the amount in mebibytes.
    pub const fn as_mb(self) -> u32 {
        self.0
    }

    /// Returns the amount in bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0 as u64 * 1024 * 1024
    }

    /// Returns whether this is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtracts `other`, saturating at zero.
    pub fn saturating_sub(self, other: MemoryMb) -> MemoryMb {
        MemoryMb(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a floating-point factor (e.g. a compression ratio),
    /// rounding to the nearest MiB with a floor of 1 MiB for non-zero input.
    ///
    /// A warm instance always occupies at least one page-table's worth of
    /// bookkeeping, so compressing never reports a zero footprint.
    pub fn scale(self, factor: f64) -> MemoryMb {
        if self.0 == 0 {
            return MemoryMb::ZERO;
        }
        let scaled = (self.0 as f64 * factor.max(0.0)).round() as u32;
        MemoryMb(scaled.max(1))
    }

    /// Returns the fraction `self / total` as an `f64` in `[0, ∞)`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn fraction_of(self, total: MemoryMb) -> f64 {
        assert!(!total.is_zero(), "total memory must be non-zero");
        self.0 as f64 / total.0 as f64
    }
}

impl Add for MemoryMb {
    type Output = MemoryMb;
    fn add(self, rhs: MemoryMb) -> MemoryMb {
        MemoryMb(self.0 + rhs.0)
    }
}

impl AddAssign for MemoryMb {
    fn add_assign(&mut self, rhs: MemoryMb) {
        self.0 += rhs.0;
    }
}

impl Sub for MemoryMb {
    type Output = MemoryMb;
    fn sub(self, rhs: MemoryMb) -> MemoryMb {
        MemoryMb(
            self.0
                .checked_sub(rhs.0)
                .expect("MemoryMb subtraction underflow"),
        )
    }
}

impl SubAssign for MemoryMb {
    fn sub_assign(&mut self, rhs: MemoryMb) {
        *self = *self - rhs;
    }
}

impl Sum for MemoryMb {
    fn sum<I: Iterator<Item = MemoryMb>>(iter: I) -> MemoryMb {
        MemoryMb(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for MemoryMb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MiB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(MemoryMb::from_gb(2).as_mb(), 2048);
        assert_eq!(MemoryMb::new(1).as_bytes(), 1 << 20);
    }

    #[test]
    fn arithmetic() {
        let a = MemoryMb::new(100);
        let b = MemoryMb::new(40);
        assert_eq!(a + b, MemoryMb::new(140));
        assert_eq!(a - b, MemoryMb::new(60));
        assert_eq!(b.saturating_sub(a), MemoryMb::ZERO);
    }

    #[test]
    fn scale_floors_at_one_mb() {
        assert_eq!(MemoryMb::new(100).scale(0.4), MemoryMb::new(40));
        assert_eq!(MemoryMb::new(2).scale(0.01), MemoryMb::new(1));
        assert_eq!(MemoryMb::ZERO.scale(0.5), MemoryMb::ZERO);
        assert_eq!(MemoryMb::new(10).scale(-1.0), MemoryMb::new(1));
    }

    #[test]
    fn fraction_of_total() {
        let total = MemoryMb::from_gb(32);
        let part = MemoryMb::from_gb(8);
        assert!((part.fraction_of(total) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "total memory must be non-zero")]
    fn fraction_of_zero_panics() {
        let _ = MemoryMb::new(1).fraction_of(MemoryMb::ZERO);
    }

    #[test]
    fn sum_over_iterator() {
        let total: MemoryMb = (1..=4).map(MemoryMb::new).sum();
        assert_eq!(total, MemoryMb::new(10));
    }
}
