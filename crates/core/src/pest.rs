//! The paper's re-invocation period estimator `P_est`.

use std::collections::VecDeque;

use cc_types::{SimDuration, SimTime};

/// Estimates a function's next re-invocation gap by blending **local**
/// (recent) and **global** (long-run) inter-arrival statistics:
///
/// ```text
/// w     = |L_m − G_m| / max(L_m, G_m)
/// P_est = w · (L_m + L_s) + (1 − w) · (G_m + G_s)
/// ```
///
/// where `L_m`/`L_s` are the mean/standard deviation of the last `n_l`
/// gaps (10 in the paper) and `G_m`/`G_s` of all gaps since the last
/// reset. The more the local behaviour diverges from the global pattern,
/// the more weight the local window gets — this is what lets CodeCrunch
/// track functions whose period drifts. Global statistics reset every
/// 1000 invocations, per the paper; the reset is aligned to *recorded
/// gaps* (the gap-less first arrival does not count, and the boundary gap
/// completes the old window rather than leaking into the new one).
///
/// `P_est` deliberately over-estimates by one standard deviation on each
/// term: the paper found exactly one σ optimal ("considering more than one
/// standard deviation slightly deteriorates the results").
///
/// # Example
///
/// ```
/// use cc_types::{SimDuration, SimTime};
/// use codecrunch::PestEstimator;
///
/// let mut est = PestEstimator::new();
/// let mut t = SimTime::ZERO;
/// for _ in 0..12 {
///     est.record(t);
///     t += SimDuration::from_mins(5);
/// }
/// // Perfectly periodic: P_est equals the period (σ = 0, L_m = G_m).
/// assert_eq!(est.estimate(), Some(SimDuration::from_mins(5)));
/// ```
#[derive(Debug, Clone)]
pub struct PestEstimator {
    /// Recent gaps, bounded at `local_window`.
    local: VecDeque<f64>,
    local_window: usize,
    /// Global accumulators (seconds).
    global_count: u64,
    global_sum: f64,
    global_sum_sq: f64,
    last_arrival: Option<SimTime>,
}

/// The paper's local window: the last 10 invocations.
pub const DEFAULT_LOCAL_WINDOW: usize = 10;

/// The paper resets global statistics every 1000 invocations.
pub const GLOBAL_RESET_EVERY: u64 = 1000;

impl PestEstimator {
    /// Creates an estimator with the paper's parameters.
    pub fn new() -> PestEstimator {
        PestEstimator::with_local_window(DEFAULT_LOCAL_WINDOW)
    }

    /// Creates an estimator with a custom local window (the paper sweeps
    /// 2..=100 and reports <2.6% sensitivity).
    ///
    /// # Panics
    ///
    /// Panics if `local_window` is zero.
    pub fn with_local_window(local_window: usize) -> PestEstimator {
        assert!(local_window > 0, "local window must be non-empty");
        PestEstimator {
            local: VecDeque::with_capacity(local_window),
            local_window,
            global_count: 0,
            global_sum: 0.0,
            global_sum_sq: 0.0,
            last_arrival: None,
        }
    }

    /// Records an invocation arrival.
    ///
    /// The global window is reset lazily, aligned to *recorded gaps*: once
    /// it holds [`GLOBAL_RESET_EVERY`] gaps, the next gap clears it and
    /// becomes the first entry of the fresh window. The gap-less first
    /// arrival never counts toward the threshold, and the boundary gap
    /// always lands in the window that was open when it was observed.
    pub fn record(&mut self, now: SimTime) {
        if let Some(last) = self.last_arrival {
            if self.global_count >= GLOBAL_RESET_EVERY {
                self.global_count = 0;
                self.global_sum = 0.0;
                self.global_sum_sq = 0.0;
            }
            let gap = now.saturating_since(last).as_secs_f64();
            if self.local.len() == self.local_window {
                self.local.pop_front();
            }
            self.local.push_back(gap);
            self.global_count += 1;
            self.global_sum += gap;
            self.global_sum_sq += gap * gap;
        }
        self.last_arrival = Some(now);
    }

    /// The blended `P_est`, or `None` before two invocations.
    pub fn estimate(&self) -> Option<SimDuration> {
        if self.local.is_empty() || self.global_count == 0 {
            return None;
        }
        let l_m = self.local.iter().sum::<f64>() / self.local.len() as f64;
        let l_var = self
            .local
            .iter()
            .map(|g| (g - l_m) * (g - l_m))
            .sum::<f64>()
            / self.local.len() as f64;
        let l_s = l_var.sqrt();

        let g_m = self.global_sum / self.global_count as f64;
        let g_var = (self.global_sum_sq / self.global_count as f64 - g_m * g_m).max(0.0);
        let g_s = g_var.sqrt();

        let denom = l_m.max(g_m);
        let w = if denom > 0.0 {
            (l_m - g_m).abs() / denom
        } else {
            0.0
        };
        let pest = w * (l_m + l_s) + (1.0 - w) * (g_m + g_s);
        Some(SimDuration::from_secs_f64(pest))
    }

    /// Time of the most recent recorded arrival.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    /// Number of gaps currently in the local window.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Number of gaps in the current global window (resets every
    /// [`GLOBAL_RESET_EVERY`] recorded gaps).
    pub fn global_len(&self) -> u64 {
        self.global_count
    }
}

impl Default for PestEstimator {
    fn default() -> Self {
        PestEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(mins: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(mins)
    }

    #[test]
    fn no_estimate_before_two_arrivals() {
        let mut est = PestEstimator::new();
        assert_eq!(est.estimate(), None);
        est.record(at(0));
        assert_eq!(est.estimate(), None);
        est.record(at(5));
        assert!(est.estimate().is_some());
    }

    #[test]
    fn periodic_signal_estimates_the_period() {
        let mut est = PestEstimator::new();
        for i in 0..20 {
            est.record(at(i * 3));
        }
        assert_eq!(est.estimate(), Some(SimDuration::from_mins(3)));
    }

    #[test]
    fn local_shift_pulls_the_estimate() {
        let mut est = PestEstimator::new();
        // Long global history at 10-minute gaps, then the function speeds
        // up to 2-minute gaps: the estimate must move well below 10.
        let mut t = 0;
        for _ in 0..50 {
            est.record(at(t));
            t += 10;
        }
        for _ in 0..10 {
            est.record(at(t));
            t += 2;
        }
        let pest = est.estimate().unwrap().as_mins_f64();
        assert!(pest < 8.0, "P_est {pest} should track the local speed-up");
    }

    #[test]
    fn variance_inflates_estimate() {
        let mut regular = PestEstimator::new();
        let mut jittery = PestEstimator::new();
        for i in 0..30u64 {
            regular.record(at(i * 6));
        }
        let mut t = 0u64;
        for i in 0..30u64 {
            t += if i % 2 == 0 { 2 } else { 10 }; // same mean of 6
            jittery.record(at(t));
        }
        let r = regular.estimate().unwrap();
        let j = jittery.estimate().unwrap();
        assert!(j > r, "jittery {j} should exceed regular {r}");
    }

    #[test]
    fn global_resets_after_threshold() {
        let mut est = PestEstimator::new();
        for i in 0..(GLOBAL_RESET_EVERY + 10) {
            est.record(at(i * 2));
        }
        // Still estimating after the reset.
        assert!(est.estimate().is_some());
        assert!(est.local_len() <= DEFAULT_LOCAL_WINDOW);
    }

    /// Regression for the reset off-by-one: the gap-less first arrival
    /// used to count toward `GLOBAL_RESET_EVERY`, and the reset fired
    /// *before* the boundary gap was recorded, dropping it into the
    /// post-reset window. The reset is now aligned to recorded gaps: the
    /// window fills to exactly `GLOBAL_RESET_EVERY` gaps (boundary gap
    /// included), and the *next* gap opens the fresh window.
    #[test]
    fn global_reset_is_aligned_to_recorded_gaps() {
        let mut est = PestEstimator::new();
        est.record(at(0));
        assert_eq!(est.global_len(), 0, "first arrival records no gap");
        for i in 1..=GLOBAL_RESET_EVERY {
            est.record(at(i * 2));
        }
        assert_eq!(
            est.global_len(),
            GLOBAL_RESET_EVERY,
            "window immediately before reset holds the full 1000 gaps"
        );
        est.record(at((GLOBAL_RESET_EVERY + 1) * 2));
        assert_eq!(
            est.global_len(),
            1,
            "window immediately after reset holds only the fresh gap"
        );
        // The estimator never goes dark across the reset.
        assert!(est.estimate().is_some());
    }

    #[test]
    fn window_sensitivity_is_mild_on_periodic_input() {
        // The paper's claim at small scale: window size barely matters for
        // a periodic function.
        let build = |window| {
            let mut est = PestEstimator::with_local_window(window);
            for i in 0..120 {
                est.record(at(i * 4));
            }
            est.estimate().unwrap().as_mins_f64()
        };
        let p2 = build(2);
        let p100 = build(100);
        assert!((p2 - p100).abs() / p100 < 0.026);
    }

    #[test]
    #[should_panic(expected = "local window must be non-empty")]
    fn rejects_zero_window() {
        let _ = PestEstimator::with_local_window(0);
    }
}
