//! Bounded ingestion with explicit backpressure and lossless catch-up.
//!
//! The [`IngestQueue`] sits between the producer (a live front door, or a
//! trace generator replayed as one) and the single-threaded decision core.
//! It is deliberately small and explicit:
//!
//! - **Bounded**: [`IngestQueue::push`] blocks once `capacity` arrivals
//!   are queued — backpressure, not silent dropping. Every accepted
//!   arrival is eventually delivered (lossless burst catch-up): a burst
//!   deeper than the queue merely stalls the producer while the consumer
//!   drains at full speed, and late deliveries carry their *recorded*
//!   arrival timestamps so queueing delay is charged to wait time exactly
//!   as the batch engine would.
//! - **Closable**: the producer calls [`IngestQueue::close`] with the
//!   final stream horizon; the consumer sees `Exhausted` once the last
//!   queued arrival is out.
//! - **Drainable**: graceful shutdown picks an *effective drain instant*
//!   and cuts the timeline there — arrivals strictly before it are still
//!   delivered, arrivals at or after it are refused/discarded, and the
//!   instant is chosen so that nothing already delivered or paced past is
//!   ever contradicted (see [`IngestQueue::drain_at`]).
//!
//! Pacing itself (consulting the [`Clock`]) lives in
//! [`IngestQueue::fetch`], which the [`PacedSource`](crate::PacedSource)
//! adapter exposes to the engine as an
//! [`ArrivalSource`](cc_sim::ArrivalSource).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use cc_sim::Fetch;
use cc_types::{Invocation, SimDuration, SimTime};

use crate::clock::Clock;

/// The open-horizon sentinel a live source reports until its stream
/// closes (the engine re-reads the horizon at every interval tick).
pub const OPEN_HORIZON: SimDuration = SimDuration::from_micros(u64::MAX);

/// Why [`IngestQueue::push`] refused an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRejected {
    /// The stream was already closed (producer bug, or a second producer).
    Closed,
    /// A drain is in effect and the arrival is at or after the drain
    /// instant. The producer should stop and [`IngestQueue::close`].
    Drained,
}

/// Counters describing one queue's lifetime, for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Arrivals accepted by [`IngestQueue::push`].
    pub pushed: u64,
    /// Arrivals handed to the consumer.
    pub delivered: u64,
    /// Queued arrivals discarded because a drain instant cut them off.
    pub dropped_at_drain: u64,
    /// High-water mark of the queue depth.
    pub peak_depth: usize,
    /// Current depth.
    pub depth: usize,
}

#[derive(Debug)]
struct QueueState {
    items: VecDeque<Invocation>,
    closed: bool,
    horizon: Option<SimDuration>,
    drain_at: Option<SimTime>,
    /// Watermark: the consumer has paced (delivered arrivals or conceded
    /// `NotBefore`) up to this instant. A drain instant is always chosen
    /// strictly after it, so the cut never contradicts delivered work.
    paced_to: SimTime,
    pushed: u64,
    delivered: u64,
    dropped_at_drain: u64,
    peak_depth: usize,
}

/// Bounded, closable, drainable arrival queue (see module docs).
#[derive(Debug)]
pub struct IngestQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl IngestQueue {
    /// A queue admitting at most `capacity` undelivered arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the consumer could never see an
    /// arrival the producer is still blocked pushing).
    pub fn new(capacity: usize) -> IngestQueue {
        assert!(capacity > 0, "ingestion queue capacity must be positive");
        IngestQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                horizon: None,
                drain_at: None,
                paced_to: SimTime::ZERO,
                pushed: 0,
                delivered: 0,
                dropped_at_drain: 0,
                peak_depth: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues an arrival, blocking while the queue is full
    /// (backpressure). Arrivals must be pushed in nondecreasing arrival
    /// order — the queue debug-asserts it.
    pub fn push(&self, inv: Invocation) -> Result<(), PushRejected> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(PushRejected::Closed);
            }
            if let Some(cut) = state.drain_at {
                if inv.arrival >= cut {
                    return Err(PushRejected::Drained);
                }
            }
            if state.items.len() < self.capacity {
                if let Some(back) = state.items.back() {
                    debug_assert!(
                        back.arrival <= inv.arrival,
                        "arrivals must be pushed in order"
                    );
                }
                state.items.push_back(inv);
                state.pushed += 1;
                state.peak_depth = state.peak_depth.max(state.items.len());
                self.not_empty.notify_all();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock");
        }
    }

    /// Closes the stream with its final horizon. If a drain already
    /// imposed a shorter horizon, the shorter one wins. Idempotent.
    pub fn close(&self, horizon: SimDuration) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        state.horizon = Some(match state.horizon {
            Some(existing) => existing.min(horizon),
            None => horizon,
        });
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Emergency close for a producer unwinding mid-stream: freezes the
    /// horizon at the pacing watermark so the consumer can finish what was
    /// delivered instead of blocking forever on a feed that died.
    pub(crate) fn close_abandoned(&self) {
        let watermark = {
            let state = self.state.lock().expect("queue lock");
            SimDuration::from_micros(state.paced_to.as_micros())
        };
        self.close(watermark);
    }

    /// Requests a graceful drain at `at` and returns the *effective* drain
    /// instant actually used.
    ///
    /// The effective instant is `max(at, paced_to + 1µs)` — strictly after
    /// everything the consumer has already delivered or paced past — then
    /// merged (min) with any earlier drain. The timeline is cut there:
    /// queued arrivals at or after it are discarded, future pushes of such
    /// arrivals are refused, and the stream horizon collapses to it so the
    /// tick chain stops. Earlier arrivals still flow — a drain is
    /// lossless for everything before the cut.
    ///
    /// A drain that lands after the stream already finished (closed and
    /// fully delivered) has nothing left to cut: past the last fetch the
    /// engine runs out its remaining events unpaced, so the watermark no
    /// longer bounds its progress and shrinking the horizon could
    /// contradict ticks that already fired. The request is then a no-op
    /// returning the final horizon's end.
    pub fn drain_at(&self, at: SimTime) -> SimTime {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed && state.items.is_empty() {
            let final_horizon = state.horizon.expect("closed stream has a horizon");
            return SimTime::ZERO + final_horizon;
        }
        let floor = SimTime::from_micros(state.paced_to.as_micros().saturating_add(1));
        let mut eff = at.max(floor);
        if let Some(prev) = state.drain_at {
            eff = eff.min(prev);
        }
        state.drain_at = Some(eff);
        let cut_horizon = SimDuration::from_micros(eff.as_micros());
        state.horizon = Some(match state.horizon {
            Some(existing) => existing.min(cut_horizon),
            None => cut_horizon,
        });
        while let Some(back) = state.items.back() {
            if back.arrival >= eff {
                state.items.pop_back();
                state.dropped_at_drain += 1;
            } else {
                break;
            }
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
        eff
    }

    /// The stream horizon: `None` while the stream is live and uncut.
    pub fn horizon(&self) -> Option<SimDuration> {
        self.state.lock().expect("queue lock").horizon
    }

    /// Whether [`IngestQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Lifetime counters (racy snapshot while the service is running;
    /// exact once it has finished).
    pub fn stats(&self) -> QueueStats {
        let state = self.state.lock().expect("queue lock");
        QueueStats {
            pushed: state.pushed,
            delivered: state.delivered,
            dropped_at_drain: state.dropped_at_drain,
            peak_depth: state.peak_depth,
            depth: state.items.len(),
        }
    }

    /// The consumer-side deadline-bounded pull implementing the
    /// [`ArrivalSource::fetch`](cc_sim::ArrivalSource::fetch) contract.
    ///
    /// Pacing rules:
    /// - An arrival is never delivered before its recorded timestamp on
    ///   the [`Clock`] (release gating) — but one already *late* (a burst
    ///   being caught up) is delivered immediately.
    /// - `NotBefore(d)` is returned only once the clock has reached `d`,
    ///   so the engine never processes an internal event ahead of time.
    /// - On a manual clock the queue advances the clock itself (under the
    ///   queue lock, hence deterministically) instead of sleeping; the
    ///   producer must then push promptly without consulting the clock,
    ///   or producer and consumer deadlock waiting for each other.
    pub(crate) fn fetch(&self, clock: &dyn Clock, deadline: Option<SimTime>) -> Fetch {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(head) = state.items.front().map(|inv| inv.arrival) {
                // Wait until the earlier of the head's release instant and
                // the engine's deadline, then deliver or concede.
                let target = match deadline {
                    Some(d) => head.min(d),
                    None => head,
                };
                if clock.is_manual() {
                    state.paced_to = state.paced_to.max(target);
                    clock.advance_to(target);
                } else if let Some(wait) = clock.until(target) {
                    let (guard, _timeout) = self
                        .not_empty
                        .wait_timeout(state, wait)
                        .expect("queue lock");
                    // Nothing to learn from a notify here (the head can't
                    // change while we hold delivery rights), but re-check
                    // the clock either way.
                    state = guard;
                    continue;
                } else {
                    state.paced_to = state.paced_to.max(target);
                }
                return if head <= target {
                    let inv = state.items.pop_front().expect("head checked above");
                    state.delivered += 1;
                    self.not_full.notify_all();
                    Fetch::Ready(inv)
                } else {
                    Fetch::NotBefore(target)
                };
            }
            if state.closed {
                return Fetch::Exhausted;
            }
            match deadline {
                Some(d) => {
                    if clock.is_manual() {
                        // An empty live queue on a manual clock: the only
                        // way forward is a producer push or close — wait
                        // for it rather than advancing time past arrivals
                        // that are still in flight.
                        state = self.not_empty.wait(state).expect("queue lock");
                    } else {
                        match clock.until(d) {
                            Some(wait) => {
                                let (guard, _timeout) = self
                                    .not_empty
                                    .wait_timeout(state, wait)
                                    .expect("queue lock");
                                state = guard;
                            }
                            None => {
                                state.paced_to = state.paced_to.max(d);
                                return Fetch::NotBefore(d);
                            }
                        }
                    }
                }
                None => {
                    // Deadline-free pull must block until Ready/Exhausted.
                    state = self.not_empty.wait(state).expect("queue lock");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use cc_types::FunctionId;
    use std::sync::Arc;

    fn inv(at: u64) -> Invocation {
        Invocation::new(FunctionId::new(0), SimTime::from_micros(at))
    }

    #[test]
    fn push_blocks_at_capacity_and_resumes_after_delivery() {
        let queue = Arc::new(IngestQueue::new(2));
        let clock = VirtualClock::new();
        queue.push(inv(10)).unwrap();
        queue.push(inv(20)).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(inv(30)))
        };
        // The producer is blocked: queue full.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!producer.is_finished(), "push must backpressure when full");
        assert_eq!(queue.fetch(&clock, None), Fetch::Ready(inv(10)));
        producer.join().unwrap().unwrap();
        let stats = queue.stats();
        assert_eq!(stats.pushed, 3);
        assert_eq!(stats.peak_depth, 2);
    }

    #[test]
    fn fetch_paces_deliveries_on_the_manual_clock() {
        let queue = IngestQueue::new(8);
        let clock = VirtualClock::new();
        queue.push(inv(500)).unwrap();
        queue.push(inv(900)).unwrap();
        queue.close(SimDuration::from_micros(900));
        // Release gating: delivery advances the clock to the arrival.
        assert_eq!(queue.fetch(&clock, None), Fetch::Ready(inv(500)));
        assert_eq!(clock.now(), SimTime::from_micros(500));
        // An engine deadline before the next arrival defers to it.
        let deadline = SimTime::from_micros(700);
        assert_eq!(
            queue.fetch(&clock, Some(deadline)),
            Fetch::NotBefore(deadline)
        );
        assert_eq!(clock.now(), deadline);
        assert_eq!(
            queue.fetch(&clock, Some(SimTime::from_micros(2_000))),
            Fetch::Ready(inv(900))
        );
        assert_eq!(
            queue.fetch(&clock, Some(SimTime::from_micros(2_000))),
            Fetch::Exhausted
        );
    }

    #[test]
    fn close_then_drain_keeps_the_shorter_horizon() {
        let queue = IngestQueue::new(8);
        queue.push(inv(100)).unwrap();
        queue.push(inv(300)).unwrap();
        let eff = queue.drain_at(SimTime::from_micros(200));
        assert_eq!(eff, SimTime::from_micros(200));
        assert_eq!(
            queue.stats().dropped_at_drain,
            1,
            "inv(300) is past the cut"
        );
        // Arrivals before the cut still flow; at/after are refused.
        assert_eq!(queue.push(inv(150)), Ok(()));
        assert_eq!(queue.push(inv(200)), Err(PushRejected::Drained));
        queue.close(SimDuration::from_mins(60));
        assert_eq!(queue.horizon(), Some(SimDuration::from_micros(200)));
        assert_eq!(queue.push(inv(199)), Err(PushRejected::Closed));
    }

    #[test]
    fn drain_never_cuts_before_the_pacing_watermark() {
        let queue = IngestQueue::new(8);
        let clock = VirtualClock::new();
        queue.push(inv(1_000)).unwrap();
        assert_eq!(queue.fetch(&clock, None), Fetch::Ready(inv(1_000)));
        // Requesting a drain in the past lands strictly after the
        // delivered arrival instead.
        let eff = queue.drain_at(SimTime::from_micros(400));
        assert_eq!(eff, SimTime::from_micros(1_001));
        // A second, later request cannot push the cut back out.
        assert_eq!(queue.drain_at(SimTime::from_micros(9_999)), eff);
    }
}
