//! Property tests for CodeCrunch's interval objective.

use proptest::prelude::*;

use cc_opt::{Objective, SeparableObjective, SeparableView};
use cc_types::{Arch, Cost, CostRate, FnChoice, FunctionId, MemoryMb, SimDuration};
use cc_workload::{FunctionSpec, Workload};
use codecrunch::{ArchPolicy, ExecObserver, IntervalObjective};

fn spec(id: u32, exec_ms: u64, mem: u32) -> FunctionSpec {
    let exec = SimDuration::from_millis(exec_ms);
    FunctionSpec {
        id: FunctionId::new(id),
        profile_name: format!("prop{id}"),
        exec: [exec, exec.scale(1.2)],
        cold: [
            SimDuration::from_millis(exec_ms / 2 + 500),
            SimDuration::from_millis((exec_ms / 2 + 500) * 5 / 4),
        ],
        decompress: [SimDuration::from_millis(300), SimDuration::from_millis(330)],
        compress: SimDuration::from_millis(1500),
        memory: MemoryMb::new(mem),
        compressed_memory: MemoryMb::new((mem * 2 / 5).max(1)),
    }
}

fn choice_strategy() -> impl Strategy<Value = FnChoice> {
    (0u8..2, any::<bool>(), 0u64..=60).prop_map(|(arch, compress, mins)| {
        FnChoice::new(Arch::from_bit(arch), compress, SimDuration::from_mins(mins))
    })
}

proptest! {
    #[test]
    fn objective_terms_are_finite_and_consistent(
        fns in prop::collection::vec((100u64..30_000, 64u32..2048), 1..12),
        choices_seed in prop::collection::vec(choice_strategy(), 12),
        pest_mins in prop::collection::vec(prop::option::of(1u64..120), 12),
        budget_pd in prop::option::of(0u64..1_000_000_000_000),
    ) {
        let n = fns.len();
        let specs: Vec<FunctionSpec> = fns
            .iter()
            .enumerate()
            .map(|(i, &(exec, mem))| spec(i as u32, exec, mem))
            .collect();
        let workload = Workload::from_specs(specs);
        let functions: Vec<FunctionId> = (0..n).map(|i| FunctionId::new(i as u32)).collect();
        let exec = ExecObserver::new(n, 0.3);
        let pest: Vec<Option<SimDuration>> = pest_mins[..n]
            .iter()
            .map(|m| m.map(SimDuration::from_mins))
            .collect();
        let objective = IntervalObjective {
            functions: &functions,
            workload: &workload,
            exec: &exec,
            pest: &pest,
            rates: [CostRate::paper_rate(Arch::X86), CostRate::paper_rate(Arch::Arm)],
            budget: budget_pd.map(Cost::from_picodollars),
            sla: None,
            arch_policy: ArchPolicy::Both,
            allow_compression: true,
        };
        let solution: Vec<FnChoice> = choices_seed[..n].to_vec();

        // Every term is finite and non-negative; the generic adapter agrees
        // with the direct Objective implementation.
        for (i, c) in solution.iter().enumerate() {
            let service = objective.predicted_service(i, c);
            prop_assert!(service.is_finite() && service > 0.0);
            let p = objective.warm_probability(i, c);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(SeparableObjective::service_term(&objective, i, c).is_finite());
        }
        let direct = Objective::evaluate(&objective, &solution);
        let via_view = SeparableView(&objective).evaluate(&solution);
        prop_assert!((direct - via_view).abs() < 1e-9);
        prop_assert_eq!(
            Objective::is_feasible(&objective, &solution),
            SeparableView(&objective).is_feasible(&solution)
        );

        // Dropping everything is always feasible and costs nothing.
        let drop_all: Vec<FnChoice> = (0..n).map(|_| FnChoice::drop_now(Arch::X86)).collect();
        prop_assert!(Objective::is_feasible(&objective, &drop_all));
        prop_assert_eq!(objective.plan_cost(&drop_all), Cost::ZERO);
    }

    #[test]
    fn longer_windows_never_hurt_predicted_service(
        exec_ms in 100u64..30_000,
        pest_mins in 1u64..120,
        compress in any::<bool>(),
        arch_bit in 0u8..2,
    ) {
        let workload = Workload::from_specs(vec![spec(0, exec_ms, 512)]);
        let functions = [FunctionId::new(0)];
        let exec = ExecObserver::new(1, 0.3);
        let pest = [Some(SimDuration::from_mins(pest_mins))];
        let objective = IntervalObjective {
            functions: &functions,
            workload: &workload,
            exec: &exec,
            pest: &pest,
            rates: [CostRate::paper_rate(Arch::X86), CostRate::paper_rate(Arch::Arm)],
            budget: None,
            sla: None,
            arch_policy: ArchPolicy::Both,
            allow_compression: true,
        };
        let arch = Arch::from_bit(arch_bit);
        let mut previous = f64::INFINITY;
        for mins in [0u64, 1, 2, 5, 10, 20, 40, 60] {
            let c = FnChoice::new(arch, compress, SimDuration::from_mins(mins));
            let service = objective.predicted_service(0, &c);
            // The favorable direction: more keep-alive, same or better
            // predicted service (decompression < cold here by spec
            // construction: 0.3s vs >= 0.55s).
            prop_assert!(
                service <= previous + 1e-12,
                "service {service} rose at {mins}min (prev {previous})"
            );
            previous = service;
        }
    }

    #[test]
    fn plan_cost_is_additive_and_monotone(
        mems in prop::collection::vec(64u32..2048, 2..8),
        mins in 1u64..=60,
    ) {
        let n = mems.len();
        let specs: Vec<FunctionSpec> = mems
            .iter()
            .enumerate()
            .map(|(i, &mem)| spec(i as u32, 1000, mem))
            .collect();
        let workload = Workload::from_specs(specs);
        let functions: Vec<FunctionId> = (0..n).map(|i| FunctionId::new(i as u32)).collect();
        let exec = ExecObserver::new(n, 0.3);
        let pest: Vec<Option<SimDuration>> = vec![None; n];
        let objective = IntervalObjective {
            functions: &functions,
            workload: &workload,
            exec: &exec,
            pest: &pest,
            rates: [CostRate::paper_rate(Arch::X86), CostRate::paper_rate(Arch::Arm)],
            budget: None,
            sla: None,
            arch_policy: ArchPolicy::Both,
            allow_compression: true,
        };
        let window = SimDuration::from_mins(mins);
        let raw: Vec<FnChoice> = (0..n).map(|_| FnChoice::new(Arch::X86, false, window)).collect();
        let packed: Vec<FnChoice> = (0..n).map(|_| FnChoice::new(Arch::X86, true, window)).collect();
        let on_arm: Vec<FnChoice> = (0..n).map(|_| FnChoice::new(Arch::Arm, false, window)).collect();

        // Additivity: total = Σ per-choice.
        let total: Cost = (0..n).map(|i| objective.choice_cost(i, &raw[i])).sum();
        prop_assert_eq!(objective.plan_cost(&raw), total);
        // Compression and ARM each reduce cost.
        prop_assert!(objective.plan_cost(&packed) < objective.plan_cost(&raw));
        prop_assert!(objective.plan_cost(&on_arm) < objective.plan_cost(&raw));
    }
}
