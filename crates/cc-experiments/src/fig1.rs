//! Fig. 1: in-memory compression yields more warm starts under memory
//! pressure, and the decompression-vs-cold-start CDF.
//!
//! Paper setup: lz4 compression for all functions, 10% of system memory
//! reserved for warm-ups, static 10-minute keep-alive. Paper result: mean
//! warm starts 51% → 61% with compression; compression favorable for 42%
//! of functions on x86.

use serde_json::json;

use cc_compress::CompressionModel;
use cc_metrics::Cdf;
use cc_sim::FixedKeepAlive;
use cc_types::{Arch, SimDuration};
use cc_workload::Catalog;

use crate::common::{downsample, fmt_series, run_policy, sparkline, ExperimentOutput, Scale};
use crate::Experiment;

/// Fig. 1 experiment.
pub struct Fig1;

impl Experiment for Fig1 {
    fn id(&self) -> &'static str {
        "fig1"
    }

    fn title(&self) -> &'static str {
        "compression raises warm-start fraction under a 10% warm-memory cap (Fig. 1a-b) \
         and the decompression/cold-start CDF (Fig. 1c)"
    }

    fn run(&self, scale: &Scale) -> ExperimentOutput {
        let trace = scale.trace();
        let workload = scale.workload(&trace);
        // The paper's motivation setup: 10% of node memory for the warm
        // pool, fixed 10-minute keep-alive.
        let config = scale.cluster().with_warm_memory_fraction(0.10);

        let mut plain = FixedKeepAlive::new(SimDuration::from_mins(10), false);
        let mut compressed = FixedKeepAlive::new(SimDuration::from_mins(10), true);
        let r_plain = run_policy(&mut plain, &config, &trace, &workload);
        let r_comp = run_policy(&mut compressed, &config, &trace, &workload);

        let warm_plain = r_plain.stats.warm_fraction_series();
        let warm_comp = r_comp.stats.warm_fraction_series();
        let load: Vec<f64> = trace.load_per_minute().iter().map(|&c| c as f64).collect();

        // Fig. 1(c): decompression time / cold-start time per catalog
        // function on x86.
        let model = CompressionModel::paper_default();
        let catalog = Catalog::paper_catalog();
        let ratios: Vec<f64> = catalog
            .profiles()
            .iter()
            .map(|p| {
                p.decompress_time(&model, Arch::X86).as_secs_f64()
                    / p.cold_start(Arch::X86).as_secs_f64()
            })
            .collect();
        let cdf = Cdf::from_samples(ratios.clone());
        let favorable = cdf.fraction_at_or_below(1.0);

        let chunk = (scale.minutes as usize / 24).max(1);
        let lines = vec![
            format!(
                "mean warm-start fraction: {:.1}% without compression vs {:.1}% with (paper: 51% -> 61%)",
                r_plain.warm_fraction() * 100.0,
                r_comp.warm_fraction() * 100.0
            ),
            format!(
                "warm% series (no compression):  {}",
                fmt_series(&downsample(&warm_plain, chunk), 2)
            ),
            format!(
                "warm% series (with compression): {}",
                fmt_series(&downsample(&warm_comp, chunk), 2)
            ),
            format!(
                "load per window:                 {}",
                fmt_series(&downsample(&load, chunk), 0)
            ),
            format!("load shape:   {}", sparkline(&downsample(&load, chunk))),
            format!("warm w/o:     {}", sparkline(&downsample(&warm_plain, chunk))),
            format!("warm with:    {}", sparkline(&downsample(&warm_comp, chunk))),
            format!(
                "decompression < cold start for {:.0}% of functions on x86 (paper: 42%)",
                favorable * 100.0
            ),
            format!(
                "worst decompression/cold ratio: {:.2}x (paper: up to 1.75x)",
                cdf.quantile(1.0)
            ),
        ];
        let data = json!({
            "warm_fraction_plain": warm_plain,
            "warm_fraction_compressed": warm_comp,
            "load_per_minute": load,
            "mean_warm_plain": r_plain.warm_fraction(),
            "mean_warm_compressed": r_comp.warm_fraction(),
            "decompress_cold_ratios": ratios,
            "favorable_fraction_x86": favorable,
        });
        ExperimentOutput::new(self.id(), lines, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_increases_warm_fraction_under_pressure() {
        let out = Fig1.run(&Scale::smoke());
        let plain = out.data["mean_warm_plain"].as_f64().unwrap();
        let compressed = out.data["mean_warm_compressed"].as_f64().unwrap();
        assert!(
            compressed >= plain,
            "compression should not lose warm starts: {plain} vs {compressed}"
        );
        let favorable = out.data["favorable_fraction_x86"].as_f64().unwrap();
        assert!((favorable - 0.425).abs() < 1e-9);
    }
}
