//! Shared fixtures for the Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_compress::CompressionModel;
use cc_sim::ClusterConfig;
use cc_trace::{SyntheticTrace, Trace};
use cc_types::SimDuration;
use cc_workload::{Catalog, Workload};

/// A small but non-trivial benchmark scenario: enough functions and
/// invocations that policy differences register, small enough that a
/// Criterion iteration stays in the tens of milliseconds.
pub struct BenchScenario {
    /// The trace.
    pub trace: Trace,
    /// The resolved workload.
    pub workload: Workload,
    /// The cluster configuration.
    pub config: ClusterConfig,
}

impl BenchScenario {
    /// Builds the standard benchmark scenario.
    pub fn new() -> BenchScenario {
        let trace = SyntheticTrace::builder()
            .functions(40)
            .duration(SimDuration::from_mins(60))
            .seed(11)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        BenchScenario {
            trace,
            workload,
            config: ClusterConfig::small(2, 2),
        }
    }
}

impl BenchScenario {
    /// The hot-path stress scenario: 10 000 functions on a 124-node
    /// cluster (the paper's 13+18 topology scaled 4×) with a warm-memory
    /// cap tight enough that demand always exceeds it, so the pool holds
    /// thousands of instances and eviction (`make_room`) fires constantly.
    /// This is the scale at which per-arrival sorts, per-cold-start node
    /// sorts, and cluster-wide eviction scans dominate; the indexing
    /// refactor targets exactly this.
    pub fn large() -> BenchScenario {
        let trace = SyntheticTrace::builder()
            .functions(10_000)
            .duration(SimDuration::from_mins(20))
            .seed(12)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        BenchScenario {
            trace,
            workload,
            config: ClusterConfig::small(52, 72).with_warm_memory_fraction(0.4),
        }
    }
}

impl Default for BenchScenario {
    fn default() -> Self {
        BenchScenario::new()
    }
}
