//! # cc-shard: sharded parallel simulation driver
//!
//! Runs a grid of simulation jobs (policy × seed × scenario) across a pool
//! of `std::thread` workers while preserving the determinism guarantees the
//! workspace is built on:
//!
//! * **Deterministic merge** — every job is a *shard* identified by its
//!   index in the submitted job list. Results come back ordered by shard
//!   id, never by completion order, so a sharded sweep's output is
//!   byte-identical run-to-run regardless of thread scheduling.
//! * **Panic isolation** — each shard runs under `catch_unwind`; one
//!   diverging policy cannot take down the sweep. The panic message is
//!   captured into the shard's [`ShardResult`].
//! * **Cross-thread event streaming** — workers trace into a
//!   [`ChannelSink`](cc_obs::ChannelSink) over a bounded channel; a single
//!   mux thread ([`mux_jsonl`]) merges the per-shard streams into one
//!   shard-ordered JSONL file. With one shard the merged bytes are
//!   identical to a serial [`JsonlSink`](cc_obs::JsonlSink) run; with more,
//!   each shard's block is bracketed by `shard_begin`/`shard_end` marker
//!   lines carrying explicit event and drop counts.
//! * **Bounded memory, explicit loss** — the channel is bounded. Blocking
//!   mode gives lossless backpressure; lossy mode never stalls a worker
//!   and counts every dropped event, surfacing the total in the
//!   `shard_end` marker and the [`MuxReport`].
//!
//! The driver is generic over the job's result type and the sink the job
//! traces into, so uninstrumented sweeps use [`NullSinkFactory`] and pay
//! zero tracing cost (the engine's emission sites compile away exactly as
//! in a serial run).

#![warn(missing_docs)]

mod mux;
mod runner;

pub use mux::{mux_chunks, mux_jsonl, MuxReport, MuxShard};
pub use runner::{
    run_sharded, run_sharded_jsonl, ChannelSinkFactory, NullSinkFactory, ShardResult,
    ShardedRunConfig, SinkFactory, SinkStats,
};
