//! One Criterion bench per paper table/figure: each measures regenerating
//! the corresponding artifact at smoke scale. These are wall-clock
//! regression guards for the experiment harness itself; the scientific
//! output comes from `cargo run -p cc-experiments --release --bin expr`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cc_experiments::{all_experiments, Scale};

fn bench_experiments(c: &mut Criterion) {
    let scale = Scale::smoke();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for experiment in all_experiments() {
        group.bench_with_input(
            BenchmarkId::from_parameter(experiment.id()),
            &scale,
            |b, scale| b.iter(|| experiment.run(scale)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
