//! Discrete-event serverless cluster simulator for the CodeCrunch
//! reproduction.
//!
//! This crate is the stand-in for the paper's 31-node EC2 testbed (13 x86
//! `m5` + 18 ARM `t4g` workers driven by an OpenWhisk-derived manager). It
//! simulates, with microsecond-integer determinism:
//!
//! - **Nodes** with per-architecture cost rates, core counts, and memory
//!   capacity ([`ClusterConfig`]).
//! - The **container lifecycle**: cold start → execution → keep-alive in
//!   the warm pool (optionally compressed) → reuse, expiry, or eviction.
//! - **Queueing**: when no node has a free core, invocations wait, and the
//!   wait is charged to service time exactly as in the paper.
//! - The **keep-alive budget ledger** ([`BudgetLedger`]): budget accrues
//!   per interval, keep-alive decisions reserve from it, early reuse and
//!   eviction refund it — which is precisely the "budget creditor"
//!   mechanism behind the paper's Fig. 10.
//! - The **policy interface** ([`Scheduler`]): placement of cold starts,
//!   keep-alive/compression decisions at completion, per-interval commands
//!   (pre-warming, eviction), and eviction ranking. Every baseline and
//!   CodeCrunch itself implement this trait.
//!
//! # Example
//!
//! ```
//! use cc_compress::CompressionModel;
//! use cc_sim::{ClusterConfig, FixedKeepAlive, Simulation};
//! use cc_trace::SyntheticTrace;
//! use cc_types::SimDuration;
//! use cc_workload::{Catalog, Workload};
//!
//! let trace = SyntheticTrace::builder()
//!     .functions(20)
//!     .duration(SimDuration::from_mins(60))
//!     .seed(1)
//!     .build();
//! let workload = Workload::from_trace(
//!     &trace,
//!     &Catalog::paper_catalog(),
//!     &CompressionModel::paper_default(),
//! );
//! let mut policy = FixedKeepAlive::ten_minutes();
//! let report = Simulation::new(ClusterConfig::paper_cluster(), &trace, &workload)
//!     .run(&mut policy);
//! assert_eq!(report.stats.invocations() as usize, trace.invocations().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod fixed;
mod ledger;
mod node;
mod parallel;
mod pool;
mod report;
mod scheduler;
mod source;
mod view;

pub use cc_obs::{
    BufferSink, ChannelSink, ChannelStats, ChromeTraceSink, Event, EventSink, IntervalSample,
    JsonlSink, NullSink, OptimizerRound, ReleaseReason, SamplingSink, ShardMsg, SharedTelemetry,
    Tee, Telemetry,
};
pub use cc_prof::{NullProfiler, Phase, Profiler, WallProfiler};
pub use cc_types::WarmId;
pub use config::{ClusterConfig, RuntimeKind};
pub use engine::{run_streaming, run_streaming_profiled, Simulation};
pub use fixed::FixedKeepAlive;
pub use ledger::BudgetLedger;
pub use node::{NodeState, WarmInstance};
pub use parallel::{run_parallel, run_parallel_profiled, ParallelOptions, ParallelOutcome};
pub use report::{fnv1a, SimReport};
pub use scheduler::{Command, KeepDecision, Scheduler};
pub use source::{ArrivalSource, Fetch, SliceSource};
pub use view::ClusterView;
