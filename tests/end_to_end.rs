//! End-to-end integration tests: full trace → workload → simulator →
//! policy pipelines across the whole workspace.

use codecrunch_suite::prelude::*;

fn scenario(seed: u64) -> (Trace, Workload) {
    let trace = SyntheticTrace::builder()
        .functions(50)
        .duration(SimDuration::from_mins(150))
        .seed(seed)
        .build();
    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    (trace, workload)
}

fn budgeted(trace: &Trace, workload: &Workload, fraction: f64) -> ClusterConfig {
    let config = ClusterConfig::small(2, 3).with_warm_memory_fraction(0.3);
    let mut probe = SitW::new();
    let natural = Simulation::new(config.clone(), trace, workload).run(&mut probe);
    let minutes = trace.duration().as_mins_f64().max(1.0);
    config.with_budget(natural.keep_alive_spend.scale(fraction / minutes))
}

#[test]
fn every_policy_serves_every_invocation() {
    let (trace, workload) = scenario(100);
    let config = budgeted(&trace, &workload, 1.0);
    let mut policies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FixedKeepAlive::ten_minutes()),
        Box::new(SitW::new()),
        Box::new(FaasCache::new()),
        Box::new(IceBreaker::new()),
        Box::new(CodeCrunch::new()),
        Box::new(Oracle::new(&trace)),
        Box::new(Enhanced::new(SitW::new())),
    ];
    for policy in policies.iter_mut() {
        let report = Simulation::new(config.clone(), &trace, &workload).run(policy.as_mut());
        assert_eq!(
            report.records.len(),
            trace.invocations().len(),
            "{} lost invocations",
            report.policy
        );
        // Each record's service time includes its execution.
        for record in &report.records {
            assert!(record.service_time() >= record.execution);
        }
    }
}

#[test]
fn oracle_is_the_lower_bound() {
    let (trace, workload) = scenario(101);
    let config = budgeted(&trace, &workload, 1.0);
    let mut oracle = Oracle::new(&trace);
    let r_oracle = Simulation::new(config.clone(), &trace, &workload).run(&mut oracle);
    for policy in [
        Box::new(SitW::new()) as Box<dyn Scheduler>,
        Box::new(FixedKeepAlive::ten_minutes()),
        Box::new(CodeCrunch::new()),
    ] {
        let mut policy = policy;
        let report = Simulation::new(config.clone(), &trace, &workload).run(policy.as_mut());
        assert!(
            report.mean_service_time_secs() >= r_oracle.mean_service_time_secs() * 0.97,
            "{} ({:.3}s) undercut the oracle ({:.3}s)",
            report.policy,
            report.mean_service_time_secs(),
            r_oracle.mean_service_time_secs()
        );
    }
}

#[test]
fn codecrunch_beats_the_baseline_under_pressure() {
    let (trace, workload) = scenario(102);
    let config = budgeted(&trace, &workload, 0.5);
    let mut sitw = SitW::new();
    let mut crunch = CodeCrunch::new();
    let r_sitw = Simulation::new(config.clone(), &trace, &workload).run(&mut sitw);
    let r_crunch = Simulation::new(config, &trace, &workload).run(&mut crunch);
    assert!(
        r_crunch.mean_service_time_secs() <= r_sitw.mean_service_time_secs() * 1.02,
        "codecrunch {:.3}s vs sitw {:.3}s",
        r_crunch.mean_service_time_secs(),
        r_sitw.mean_service_time_secs()
    );
    assert!(
        r_crunch.warm_fraction() >= r_sitw.warm_fraction() - 0.02,
        "codecrunch warm {:.3} vs sitw {:.3}",
        r_crunch.warm_fraction(),
        r_sitw.warm_fraction()
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let (trace, workload) = scenario(103);
        let config = budgeted(&trace, &workload, 0.7);
        let mut crunch = CodeCrunch::new();
        let report = Simulation::new(config, &trace, &workload).run(&mut crunch);
        (
            report.records.clone(),
            report.keep_alive_spend,
            report.compression_events,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn perturbed_runs_complete_and_adapt() {
    let (trace, _workload) = scenario(104);
    let burst = Perturbation::Burst {
        at: SimTime::ZERO + SimDuration::from_mins(60),
        duration: SimDuration::from_mins(10),
        factor: 2.5,
    };
    let trace = burst.apply_to_trace(trace, 1);
    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    let config = ClusterConfig::small(2, 3);
    let mut crunch = CodeCrunch::new();
    let report = Simulation::new(config, &trace, &workload)
        .with_perturbations(vec![Perturbation::InputChange {
            at: SimTime::ZERO + SimDuration::from_mins(30),
            factor: 1.5,
        }])
        .run(&mut crunch);
    assert_eq!(report.records.len(), trace.invocations().len());
}

#[test]
fn facade_prelude_covers_the_workflow() {
    // The doc-advertised prelude path compiles and runs end to end.
    let trace = SyntheticTrace::builder()
        .functions(10)
        .duration(SimDuration::from_mins(20))
        .seed(9)
        .build();
    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    let mut policy = CodeCrunch::new();
    let report =
        Simulation::new(ClusterConfig::paper_cluster(), &trace, &workload).run(&mut policy);
    assert!(report.mean_service_time_secs() > 0.0);
}
