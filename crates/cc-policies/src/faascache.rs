//! The FaasCache greedy-dual baseline (Fuerst & Sharma, ASPLOS '21).

use cc_types::FxHashMap;

use cc_sim::{ClusterView, KeepDecision, Scheduler, WarmInstance};
use cc_types::{Arch, FunctionId, SimTime, KEEP_ALIVE_MAX};

use crate::faster_arch;

/// FaasCache treats the warm pool as a cache: every finished instance is
/// kept (up to the platform bound) and victims are chosen by
/// **greedy-dual-size-frequency** priority,
///
/// ```text
/// priority(f) = clock + frequency(f) × cold_start(f) / memory(f)
/// ```
///
/// where `clock` ages the cache: it rises to the priority of each evicted
/// instance, so long-idle entries eventually lose to fresh ones regardless
/// of historical frequency. Placement is heterogeneity-aware per the
/// paper's modification.
#[derive(Debug, Clone)]
pub struct FaasCache {
    frequency: FxHashMap<FunctionId, u64>,
    /// Greedy-dual aging clock (in priority units: seconds per MiB).
    clock: f64,
    /// Lowest priority handed out in the current ranking round; adopted
    /// into `clock` on the next round (the engine evicts the minimum).
    round_min: Option<f64>,
}

impl FaasCache {
    /// Creates the policy.
    pub fn new() -> FaasCache {
        FaasCache {
            frequency: FxHashMap::default(),
            clock: 0.0,
            round_min: None,
        }
    }

    fn priority(&self, function: FunctionId, view: &ClusterView<'_>) -> f64 {
        let spec = view.spec(function);
        let freq = *self.frequency.get(&function).unwrap_or(&1) as f64;
        let cost = spec.cold_start(Arch::X86).as_secs_f64();
        let size = spec.memory.as_mb().max(1) as f64;
        self.clock + freq * cost / size
    }
}

impl Default for FaasCache {
    fn default() -> Self {
        FaasCache::new()
    }
}

impl Scheduler for FaasCache {
    fn name(&self) -> &str {
        "faascache"
    }

    fn on_arrival(&mut self, function: FunctionId, _now: SimTime) {
        *self.frequency.entry(function).or_insert(0) += 1;
    }

    fn place(&mut self, function: FunctionId, view: &ClusterView<'_>) -> Arch {
        faster_arch(function, view)
    }

    fn on_completion(
        &mut self,
        _function: FunctionId,
        _arch: Arch,
        _view: &ClusterView<'_>,
    ) -> KeepDecision {
        // Cache everything; eviction under pressure is where the policy
        // lives.
        KeepDecision::uncompressed(KEEP_ALIVE_MAX)
    }

    fn eviction_rank(&mut self, instance: &WarmInstance, view: &ClusterView<'_>) -> f64 {
        // Adopt the previous round's minimum as the new clock (the engine
        // evicted that instance).
        if let Some(min) = self.round_min.take() {
            self.clock = self.clock.max(min);
        }
        let p = self.priority(instance.function, view);
        self.round_min = Some(match self.round_min {
            Some(m) => p.min(m),
            None => p,
        });
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_compress::CompressionModel;
    use cc_sim::{ClusterConfig, Simulation};
    use cc_trace::SyntheticTrace;
    use cc_types::SimDuration;
    use cc_workload::{Catalog, Workload};

    #[test]
    fn runs_to_completion_with_evictions() {
        let trace = SyntheticTrace::builder()
            .functions(60)
            .duration(SimDuration::from_mins(180))
            .seed(21)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        // Small warm cap forces the greedy-dual eviction path.
        let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.3);
        let mut policy = FaasCache::new();
        let report = Simulation::new(config, &trace, &workload).run(&mut policy);
        assert_eq!(report.records.len(), trace.invocations().len());
        assert!(report.evictions > 0, "expected eviction pressure");
        assert!(report.warm_fraction() > 0.2);
    }

    #[test]
    fn frequency_raises_priority() {
        let trace = SyntheticTrace::builder()
            .functions(2)
            .duration(SimDuration::from_mins(30))
            .seed(3)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        let config = ClusterConfig::small(1, 1);
        let mut policy = FaasCache::new();
        // Simulate some arrivals to build frequency.
        policy.on_arrival(FunctionId::new(0), SimTime::ZERO);
        policy.on_arrival(FunctionId::new(0), SimTime::ZERO);
        policy.on_arrival(FunctionId::new(1), SimTime::ZERO);
        // Build a view through a real simulation run to access specs.
        let _ = Simulation::new(config, &trace, &workload).run(&mut FaasCache::new());
        assert_eq!(policy.frequency[&FunctionId::new(0)], 2);
        assert_eq!(policy.frequency[&FunctionId::new(1)], 1);
    }
}
