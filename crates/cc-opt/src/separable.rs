//! The separable fast path: O(1)-per-move descent for objectives that are
//! sums of per-function terms.
//!
//! CodeCrunch's interval objective is exactly that shape — mean predicted
//! service plus a budget constraint that is a sum of per-function
//! keep-alive costs — so a descent move touching one function can be
//! scored by a term delta instead of re-summing all `N` functions. This is
//! what keeps CodeCrunch's decision overhead flat as the function
//! population grows (the paper's §5 overhead claim).

use cc_types::FnChoice;

use crate::{CoordinateDescent, Objective, OptOutcome};

/// An objective decomposable into independent per-function terms.
///
/// The induced joint objective is `Σ service_term / N` subject to
/// `Σ cost_term ≤ budget` and per-choice validity; `Σ memory_term` feeds
/// the paper's 10% tie-break. [`SeparableView`] adapts any implementor to
/// the general [`Objective`] interface for the generic optimizers.
pub trait SeparableObjective: Sync {
    /// Number of functions.
    fn num_functions(&self) -> usize;

    /// Predicted service contribution (seconds) of one choice, including
    /// any per-function penalties (e.g. SLA).
    fn service_term(&self, idx: usize, choice: &FnChoice) -> f64;

    /// Keep-alive cost contribution of one choice, in budget units.
    fn cost_term(&self, idx: usize, choice: &FnChoice) -> f64;

    /// Keep-alive memory contribution used by the tie-break.
    fn memory_term(&self, idx: usize, choice: &FnChoice) -> f64 {
        let _ = (idx, choice);
        0.0
    }

    /// Whether a choice is permitted for this function at all
    /// (architecture restrictions, compression bans).
    fn allowed(&self, idx: usize, choice: &FnChoice) -> bool {
        let _ = (idx, choice);
        true
    }

    /// The total budget in the same units as [`SeparableObjective::cost_term`];
    /// `None` = unlimited.
    fn budget(&self) -> Option<f64> {
        None
    }
}

/// Adapter exposing a [`SeparableObjective`] through the general
/// [`Objective`] interface (O(n) per evaluation — use the separable
/// descent for hot paths).
pub struct SeparableView<'a, T: ?Sized>(pub &'a T);

impl<T: SeparableObjective + ?Sized> Objective for SeparableView<'_, T> {
    fn num_functions(&self) -> usize {
        self.0.num_functions()
    }

    fn evaluate(&self, solution: &[FnChoice]) -> f64 {
        if solution.is_empty() {
            return 0.0;
        }
        let total: f64 = solution
            .iter()
            .enumerate()
            .map(|(i, c)| self.0.service_term(i, c))
            .sum();
        total / solution.len() as f64
    }

    fn is_feasible(&self, solution: &[FnChoice]) -> bool {
        if solution
            .iter()
            .enumerate()
            .any(|(i, c)| !self.0.allowed(i, c))
        {
            return false;
        }
        match self.0.budget() {
            None => true,
            Some(budget) => {
                let cost: f64 = solution
                    .iter()
                    .enumerate()
                    .map(|(i, c)| self.0.cost_term(i, c))
                    .sum();
                cost <= budget
            }
        }
    }

    fn memory_cost(&self, solution: &[FnChoice]) -> f64 {
        solution
            .iter()
            .enumerate()
            .map(|(i, c)| self.0.memory_term(i, c))
            .sum()
    }
}

impl CoordinateDescent {
    /// [`CoordinateDescent::optimize_subset`] specialized for separable
    /// objectives: every neighbor is scored with an O(1) term delta, so a
    /// sweep over `k` active functions costs `O(k)` instead of `O(k·N)`.
    ///
    /// Moves must keep the running cost within budget — or strictly reduce
    /// it, so descent can climb back out of an infeasible start.
    pub fn optimize_separable_subset<T: SeparableObjective + ?Sized>(
        &self,
        objective: &T,
        start: Vec<FnChoice>,
        active: &[usize],
    ) -> OptOutcome {
        let n = objective.num_functions();
        assert_eq!(start.len(), n, "solution length must match the objective");
        let mut current = start;
        let mut service: Vec<f64> = current
            .iter()
            .enumerate()
            .map(|(i, c)| objective.service_term(i, c))
            .collect();
        let mut cost: Vec<f64> = current
            .iter()
            .enumerate()
            .map(|(i, c)| objective.cost_term(i, c))
            .collect();
        let mut service_sum: f64 = service.iter().sum();
        let mut cost_sum: f64 = cost.iter().sum();
        let budget = objective.budget();
        let mut evaluations = (n as u64).max(1);
        // (service_sum', cost', mem_delta, choice); hoisted out of the
        // sweep so the descent allocates once, not once per coordinate.
        let mut candidates: Vec<(f64, f64, f64, FnChoice)> = Vec::new();

        'rounds: for _ in 0..self.max_rounds {
            let mut improved = false;
            for &idx in active {
                candidates.clear();
                let current_mem = objective.memory_term(idx, &current[idx]);
                for neighbor in current[idx].neighbors() {
                    if evaluations >= self.eval_budget {
                        break 'rounds;
                    }
                    evaluations += 1;
                    if !objective.allowed(idx, &neighbor) {
                        continue;
                    }
                    let new_cost = objective.cost_term(idx, &neighbor);
                    let new_cost_sum = cost_sum - cost[idx] + new_cost;
                    let feasible = match budget {
                        None => true,
                        Some(b) => new_cost_sum <= b || new_cost_sum < cost_sum,
                    };
                    if !feasible {
                        continue;
                    }
                    let new_service_sum =
                        service_sum - service[idx] + objective.service_term(idx, &neighbor);
                    if new_service_sum < service_sum {
                        let mem_delta = objective.memory_term(idx, &neighbor) - current_mem;
                        candidates.push((new_service_sum, new_cost, mem_delta, neighbor));
                    }
                }
                let Some(best) = candidates
                    .iter()
                    .map(|&(s, _, _, _)| s)
                    .min_by(f64::total_cmp)
                else {
                    continue;
                };
                let threshold = best + 0.1 * best.abs();
                let (new_service_sum, new_cost, _, choice) = candidates
                    .drain(..)
                    .filter(|&(s, _, _, _)| s <= threshold)
                    .min_by(|a, b| a.2.total_cmp(&b.2).then(a.0.total_cmp(&b.0)))
                    .expect("best candidate satisfies its own threshold");
                cost_sum = cost_sum - cost[idx] + new_cost;
                cost[idx] = new_cost;
                service_sum = new_service_sum;
                service[idx] = objective.service_term(idx, &choice);
                current[idx] = choice;
                improved = true;
            }
            if !improved {
                break;
            }
        }
        let cost = if n == 0 { 0.0 } else { service_sum / n as f64 };
        OptOutcome {
            solution: current,
            cost,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::{Arch, SimDuration};

    /// Separable twin of the test bowl.
    struct SepBowl {
        n: usize,
        target_mins: f64,
        budget_mins: Option<f64>,
    }

    impl SeparableObjective for SepBowl {
        fn num_functions(&self) -> usize {
            self.n
        }
        fn service_term(&self, _idx: usize, c: &FnChoice) -> f64 {
            let d = c.keep_alive.as_mins_f64() - self.target_mins;
            let arch_pen = if c.arch == Arch::X86 { 3.0 } else { 0.0 };
            let comp_pen = if c.compress { 0.0 } else { 2.0 };
            d * d + arch_pen + comp_pen
        }
        fn cost_term(&self, _idx: usize, c: &FnChoice) -> f64 {
            c.keep_alive.as_mins_f64()
        }
        fn memory_term(&self, _idx: usize, c: &FnChoice) -> f64 {
            c.keep_alive.as_mins_f64()
        }
        fn budget(&self) -> Option<f64> {
            self.budget_mins
        }
    }

    #[test]
    fn separable_descent_matches_generic_descent() {
        let bowl = SepBowl {
            n: 6,
            target_mins: 7.0,
            budget_mins: None,
        };
        let start = vec![FnChoice::production_default(); 6];
        let active: Vec<usize> = (0..6).collect();
        let fast =
            CoordinateDescent::default().optimize_separable_subset(&bowl, start.clone(), &active);
        let view = SeparableView(&bowl);
        let generic = CoordinateDescent::default().optimize_subset(&view, start, &active);
        assert_eq!(fast.solution, generic.solution);
        assert!((fast.cost * 6.0 - generic.cost * 6.0).abs() < 1e-9);
    }

    #[test]
    fn separable_descent_respects_budget() {
        let bowl = SepBowl {
            n: 4,
            target_mins: 30.0,
            budget_mins: Some(60.0),
        };
        let start = vec![FnChoice::drop_now(Arch::X86); 4];
        let active: Vec<usize> = (0..4).collect();
        let out = CoordinateDescent::default().optimize_separable_subset(&bowl, start, &active);
        let total: f64 = out
            .solution
            .iter()
            .map(|c| c.keep_alive.as_mins_f64())
            .sum();
        assert!(total <= 60.0 + 1e-9, "budget violated: {total}");
    }

    #[test]
    fn separable_descent_escapes_infeasible_start() {
        let bowl = SepBowl {
            n: 2,
            target_mins: 5.0,
            budget_mins: Some(10.0),
        };
        // Start over budget: 2 × 60 = 120 minutes.
        let start = vec![FnChoice::new(Arch::Arm, true, SimDuration::from_mins(60)); 2];
        let active = [0usize, 1];
        let out = CoordinateDescent::default().optimize_separable_subset(&bowl, start, &active);
        let total: f64 = out
            .solution
            .iter()
            .map(|c| c.keep_alive.as_mins_f64())
            .sum();
        assert!(
            total <= 10.0 + 1e-9,
            "should have descended into budget: {total}"
        );
    }

    #[test]
    fn view_adapter_agrees_with_terms() {
        let bowl = SepBowl {
            n: 3,
            target_mins: 7.0,
            budget_mins: Some(15.0),
        };
        let view = SeparableView(&bowl);
        let sol = vec![FnChoice::new(Arch::Arm, true, SimDuration::from_mins(7)); 3];
        assert_eq!(view.evaluate(&sol), 0.0);
        assert!(
            !view.is_feasible(&sol),
            "21 minutes exceeds the 15-minute budget"
        );
        assert_eq!(view.memory_cost(&sol), 21.0);
    }

    #[test]
    fn empty_active_set_is_a_noop() {
        let bowl = SepBowl {
            n: 3,
            target_mins: 7.0,
            budget_mins: None,
        };
        let start = vec![FnChoice::production_default(); 3];
        let out = CoordinateDescent::default().optimize_separable_subset(&bowl, start.clone(), &[]);
        assert_eq!(out.solution, start);
    }
}
