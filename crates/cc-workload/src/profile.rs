//! One benchmark function profile.

use cc_compress::{CodecKind, CompressionModel, EntropyClass};
use cc_types::{Arch, MemoryMb, SimDuration};

/// Cold starts are slower on the paper's ARM (t4g) nodes than on x86 (m5):
/// image pull, unpack, and runtime boot are CPU-bound and the t4g cores are
/// slower. This factor scales x86 cold-start times up for ARM.
pub const ARM_COLD_FACTOR: f64 = 1.25;

/// Decompression is likewise somewhat slower on ARM, but less so than a
/// full cold start (lz4 decode is memory-bound). This is why the paper
/// finds *more* functions compression-favorable on ARM (46%) than on x86
/// (42%): cold starts degrade faster than decompression does.
pub const ARM_DECOMPRESS_FACTOR: f64 = 1.10;

/// Which benchmark suite a profile comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SeBS (Copik et al., Middleware '21).
    Sebs,
    /// ServerlessBench (Yu et al., SoCC '20).
    ServerlessBench,
}

/// The measured characteristics of one benchmark function.
///
/// # Example
///
/// ```
/// use cc_workload::Catalog;
/// use cc_types::Arch;
///
/// let catalog = Catalog::paper_catalog();
/// let p = catalog.profiles().iter().find(|p| p.arm_faster()).unwrap();
/// assert!(p.exec_time(Arch::Arm) < p.exec_time(Arch::X86));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionProfile {
    /// Qualified benchmark name, e.g. `"sebs.thumbnailer"`.
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Execution time on x86.
    pub exec_x86: SimDuration,
    /// Ratio `exec_arm / exec_x86` (< 1 means ARM is faster).
    pub arm_exec_ratio: f64,
    /// Cold-start time on x86 (ARM derives via [`ARM_COLD_FACTOR`]).
    pub cold_x86: SimDuration,
    /// Warm-instance memory footprint.
    pub memory: MemoryMb,
    /// Committed-image size in bytes (what gets compressed).
    pub image_bytes: u64,
    /// Compressibility class of the image.
    pub entropy: EntropyClass,
}

impl FunctionProfile {
    /// Execution time on the given architecture.
    pub fn exec_time(&self, arch: Arch) -> SimDuration {
        match arch {
            Arch::X86 => self.exec_x86,
            Arch::Arm => self.exec_x86.scale(self.arm_exec_ratio),
        }
    }

    /// Cold-start time on the given architecture.
    pub fn cold_start(&self, arch: Arch) -> SimDuration {
        match arch {
            Arch::X86 => self.cold_x86,
            Arch::Arm => self.cold_x86.scale(ARM_COLD_FACTOR),
        }
    }

    /// Decompression latency of the committed image on the given
    /// architecture, under `model` with the lz4-class codec.
    pub fn decompress_time(&self, model: &CompressionModel, arch: Arch) -> SimDuration {
        let base = model
            .profile(self.image_bytes, self.entropy, CodecKind::Fast)
            .decompress_time;
        match arch {
            Arch::X86 => base,
            Arch::Arm => base.scale(ARM_DECOMPRESS_FACTOR),
        }
    }

    /// Compression latency of the committed image (architecture-independent
    /// in the model: compression happens off the critical path and the
    /// paper never charges it to service time).
    pub fn compress_time(&self, model: &CompressionModel) -> SimDuration {
        model
            .profile(self.image_bytes, self.entropy, CodecKind::Fast)
            .compress_time
    }

    /// Whether this function runs faster on ARM than on x86.
    pub fn arm_faster(&self) -> bool {
        self.arm_exec_ratio < 1.0
    }

    /// The paper's *favorable case*: decompressing the image is cheaper
    /// than a cold start on `arch`, so a compressed warm start beats a
    /// cold start outright.
    pub fn compression_favorable(&self, model: &CompressionModel, arch: Arch) -> bool {
        self.decompress_time(model, arch) < self.cold_start(arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;

    fn sample() -> FunctionProfile {
        FunctionProfile {
            name: "test.sample",
            suite: Suite::Sebs,
            exec_x86: SimDuration::from_secs(2),
            arm_exec_ratio: 0.8,
            cold_x86: SimDuration::from_secs(3),
            memory: MemoryMb::new(256),
            image_bytes: 600 << 20,
            entropy: EntropyClass::Mixed,
        }
    }

    #[test]
    fn exec_time_scales_by_ratio() {
        let p = sample();
        assert_eq!(p.exec_time(Arch::X86), SimDuration::from_secs(2));
        assert_eq!(p.exec_time(Arch::Arm), SimDuration::from_millis(1600));
        assert!(p.arm_faster());
    }

    #[test]
    fn cold_start_is_slower_on_arm() {
        let p = sample();
        assert!(p.cold_start(Arch::Arm) > p.cold_start(Arch::X86));
    }

    #[test]
    fn decompression_slower_on_arm_but_less_than_cold() {
        let p = sample();
        let model = CompressionModel::paper_default();
        let dx = p.decompress_time(&model, Arch::X86).as_secs_f64();
        let da = p.decompress_time(&model, Arch::Arm).as_secs_f64();
        assert!(da > dx);
        // The ARM penalty on decompression is smaller than on cold start.
        assert!(da / dx < ARM_COLD_FACTOR);
    }

    #[test]
    fn favorability_follows_cold_vs_decompress() {
        let model = CompressionModel::paper_default();
        let mut p = sample();
        // 600 MB / 2 GBps = 0.3s decompress vs 3s cold: favorable.
        assert!(p.compression_favorable(&model, Arch::X86));
        p.cold_x86 = SimDuration::from_millis(100);
        assert!(!p.compression_favorable(&model, Arch::X86));
    }

    #[test]
    fn catalog_profiles_have_positive_fields() {
        let catalog = Catalog::paper_catalog();
        for p in catalog.profiles() {
            assert!(!p.exec_x86.is_zero(), "{}", p.name);
            assert!(!p.cold_x86.is_zero(), "{}", p.name);
            assert!(p.arm_exec_ratio > 0.0, "{}", p.name);
            assert!(p.image_bytes > 0, "{}", p.name);
            assert!(!p.memory.is_zero(), "{}", p.name);
        }
    }
}
