//! Arrival sources: where the engine's invocation stream comes from.
//!
//! The engine consumes arrivals strictly in order and never looks more
//! than one invocation ahead (the next arrival is chained as a heap event
//! while the current one is being placed), so the full trace never needs
//! to be addressable — a source is just a fallible iterator plus a fixed
//! horizon. [`SliceSource`] adapts a materialized [`Trace`]'s invocation
//! slice (the classic path, zero behavior change); a streaming generator
//! such as `cc_trace::StreamingTrace` plugs in the same way with O(#
//! functions) memory, which is what makes million-function multi-day
//! replays possible without materializing the invocation stream in RAM.

use cc_trace::{StreamingTrace, Trace};
use cc_types::{Invocation, SimDuration, SimTime};

/// Outcome of a deadline-bounded pull ([`ArrivalSource::fetch`]).
///
/// Batch sources only ever produce `Ready` or `Exhausted`; `NotBefore` is
/// how a *live* source (e.g. `cc-serve`'s paced ingestion queue) tells the
/// engine "nothing will arrive before this instant — go process your own
/// events up to it and ask again".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetch {
    /// The next invocation, in nondecreasing arrival order.
    Ready(Invocation),
    /// No arrival will be delivered strictly before the given instant
    /// (which is at least the deadline the caller passed). The caller may
    /// process internal work up to it, then fetch again.
    NotBefore(SimTime),
    /// The stream has ended; [`ArrivalSource::horizon`] is now final.
    Exhausted,
}

/// A strictly-ordered stream of invocations driving one simulation.
///
/// Implementations must yield invocations in nondecreasing arrival order;
/// the engine debug-asserts this. [`ArrivalSource::horizon`] is the
/// logical trace length that bounds the interval-tick chain. Batch sources
/// keep it constant; a live source may report an open horizon
/// (`SimDuration::from_micros(u64::MAX)`) that collapses to the final
/// value once the stream closes — the engine re-reads it at every tick.
pub trait ArrivalSource {
    /// The next invocation, or `None` when the stream is exhausted. May
    /// block until one is available.
    fn next_invocation(&mut self) -> Option<Invocation>;

    /// The logical trace duration (last arrival offset). Ticks stop after
    /// this horizon.
    fn horizon(&self) -> SimDuration;

    /// Expected total invocation count, if cheaply known. Used only to
    /// pre-size the record buffer; `0` is always safe.
    fn len_hint(&self) -> usize {
        0
    }

    /// Deadline-bounded pull for live sources. `deadline` is the engine's
    /// next internal event instant (`None` when it has none pending):
    /// a live source blocks until an arrival is available, the stream
    /// closes, or time reaches the deadline — whichever comes first —
    /// and with `deadline == None` it must block until `Ready` or
    /// `Exhausted` (never returning `NotBefore`).
    ///
    /// Batch sources are always ready, so the default forwards to
    /// [`ArrivalSource::next_invocation`] and never waits.
    fn fetch(&mut self, deadline: Option<SimTime>) -> Fetch {
        let _ = deadline;
        match self.next_invocation() {
            Some(inv) => Fetch::Ready(inv),
            None => Fetch::Exhausted,
        }
    }
}

/// An [`ArrivalSource`] over a materialized invocation slice — the adapter
/// [`Simulation`](crate::Simulation) uses for an in-memory [`Trace`].
#[derive(Debug)]
pub struct SliceSource<'a> {
    invocations: &'a [Invocation],
    next: usize,
    horizon: SimDuration,
}

impl<'a> SliceSource<'a> {
    /// Wraps a sorted invocation slice with an explicit horizon.
    pub fn new(invocations: &'a [Invocation], horizon: SimDuration) -> Self {
        SliceSource {
            invocations,
            next: 0,
            horizon,
        }
    }

    /// Wraps a whole trace (horizon = the trace's duration).
    pub fn from_trace(trace: &'a Trace) -> Self {
        SliceSource::new(trace.invocations(), trace.duration())
    }
}

impl ArrivalSource for SliceSource<'_> {
    fn next_invocation(&mut self) -> Option<Invocation> {
        let inv = self.invocations.get(self.next).copied();
        if inv.is_some() {
            self.next += 1;
        }
        inv
    }

    fn horizon(&self) -> SimDuration {
        self.horizon
    }

    fn len_hint(&self) -> usize {
        self.invocations.len()
    }
}

impl ArrivalSource for StreamingTrace {
    fn next_invocation(&mut self) -> Option<Invocation> {
        StreamingTrace::next_invocation(self)
    }

    fn horizon(&self) -> SimDuration {
        StreamingTrace::horizon(self)
    }

    fn len_hint(&self) -> usize {
        self.expected_invocations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::{FunctionId, SimTime};

    #[test]
    fn slice_source_yields_in_order_and_exhausts() {
        let invocations = vec![
            Invocation::new(FunctionId::new(0), SimTime::from_micros(10)),
            Invocation::new(FunctionId::new(1), SimTime::from_micros(20)),
        ];
        let mut source = SliceSource::new(&invocations, SimDuration::from_micros(20));
        assert_eq!(source.len_hint(), 2);
        assert_eq!(source.horizon(), SimDuration::from_micros(20));
        assert_eq!(source.next_invocation(), Some(invocations[0]));
        assert_eq!(source.next_invocation(), Some(invocations[1]));
        assert_eq!(source.next_invocation(), None);
        assert_eq!(source.next_invocation(), None);
    }
}
