//! Observed per-architecture execution times.

use cc_types::{Arch, FunctionId, ServiceRecord, SimDuration};
use cc_workload::Workload;

/// Tracks the execution time each function actually exhibited on each
/// architecture, as an exponentially weighted moving average.
///
/// The paper's CodeCrunch "keeps track of the service time of functions in
/// ARM and x86 processors from past executions"; the EWMA makes the
/// estimate responsive to unannounced input changes (Fig. 15) without
/// overreacting to noise. Before the first observation on an architecture,
/// the workload spec provides the prior.
#[derive(Debug, Clone)]
pub struct ExecObserver {
    /// `ewma[fn][arch]` in seconds; NaN = unobserved.
    ewma: Vec<[f64; 2]>,
    alpha: f64,
}

impl ExecObserver {
    /// Creates an observer for `functions` functions with smoothing factor
    /// `alpha` (weight of the newest observation).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(functions: usize, alpha: f64) -> ExecObserver {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        ExecObserver {
            ewma: vec![[f64::NAN; 2]; functions],
            alpha,
        }
    }

    /// Incorporates one completed execution.
    pub fn observe(&mut self, record: &ServiceRecord) {
        let slot = &mut self.ewma[record.function.index()][record.arch.index()];
        let value = record.execution.as_secs_f64();
        *slot = if slot.is_nan() {
            value
        } else {
            self.alpha * value + (1.0 - self.alpha) * *slot
        };
    }

    /// The best current estimate of `function`'s execution time on `arch`:
    /// the EWMA if observed, scaled from the other architecture's
    /// observation if only that exists, else the workload spec.
    pub fn exec_time(&self, function: FunctionId, arch: Arch, workload: &Workload) -> SimDuration {
        let spec = workload.spec(function);
        let row = &self.ewma[function.index()];
        let own = row[arch.index()];
        if !own.is_nan() {
            return SimDuration::from_secs_f64(own);
        }
        let other = row[arch.other().index()];
        if !other.is_nan() {
            // Scale the observed other-arch time by the spec's ratio.
            let spec_own = spec.exec_time(arch).as_secs_f64();
            let spec_other = spec.exec_time(arch.other()).as_secs_f64().max(1e-9);
            return SimDuration::from_secs_f64(other * spec_own / spec_other);
        }
        spec.exec_time(arch)
    }

    /// Whether `function` has ever been observed on `arch`.
    pub fn has_observed(&self, function: FunctionId, arch: Arch) -> bool {
        !self.ewma[function.index()][arch.index()].is_nan()
    }

    /// Whether the observer has slots for at least `functions` functions.
    pub fn covers(&self, functions: usize) -> bool {
        self.ewma.len() >= functions
    }

    /// Grows the observer to hold at least `functions` functions.
    pub fn grow(&mut self, functions: usize) {
        if self.ewma.len() < functions {
            self.ewma.resize(functions, [f64::NAN; 2]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_types::{MemoryMb, SimTime, StartKind};
    use cc_workload::FunctionSpec;

    fn workload() -> Workload {
        Workload::from_specs(vec![FunctionSpec {
            id: FunctionId::new(0),
            profile_name: "test".to_owned(),
            exec: [SimDuration::from_secs(2), SimDuration::from_secs(4)],
            cold: [SimDuration::from_secs(1), SimDuration::from_millis(1250)],
            decompress: [SimDuration::from_millis(300), SimDuration::from_millis(330)],
            compress: SimDuration::from_millis(1500),
            memory: MemoryMb::new(256),
            compressed_memory: MemoryMb::new(100),
        }])
    }

    fn record(arch: Arch, exec_secs: f64) -> ServiceRecord {
        ServiceRecord {
            function: FunctionId::new(0),
            arrival: SimTime::ZERO,
            wait: SimDuration::ZERO,
            start_penalty: SimDuration::ZERO,
            execution: SimDuration::from_secs_f64(exec_secs),
            kind: StartKind::WarmUncompressed,
            arch,
        }
    }

    #[test]
    fn falls_back_to_spec_when_unobserved() {
        let obs = ExecObserver::new(1, 0.3);
        let w = workload();
        assert_eq!(
            obs.exec_time(FunctionId::new(0), Arch::X86, &w),
            SimDuration::from_secs(2)
        );
        assert!(!obs.has_observed(FunctionId::new(0), Arch::X86));
    }

    #[test]
    fn ewma_converges_to_observations() {
        let mut obs = ExecObserver::new(1, 0.5);
        let w = workload();
        for _ in 0..20 {
            obs.observe(&record(Arch::X86, 6.0));
        }
        let est = obs
            .exec_time(FunctionId::new(0), Arch::X86, &w)
            .as_secs_f64();
        assert!((est - 6.0).abs() < 0.01, "est {est}");
    }

    #[test]
    fn cross_arch_scaling_uses_spec_ratio() {
        let mut obs = ExecObserver::new(1, 1.0);
        let w = workload();
        // Observe 3s on x86 (spec says 2s); ARM spec ratio is 2x.
        obs.observe(&record(Arch::X86, 3.0));
        let arm = obs
            .exec_time(FunctionId::new(0), Arch::Arm, &w)
            .as_secs_f64();
        assert!((arm - 6.0).abs() < 0.01, "arm {arm}");
    }

    #[test]
    fn first_observation_replaces_prior_entirely() {
        let mut obs = ExecObserver::new(1, 0.1);
        let w = workload();
        obs.observe(&record(Arch::Arm, 9.0));
        let est = obs
            .exec_time(FunctionId::new(0), Arch::Arm, &w)
            .as_secs_f64();
        assert_eq!(est, 9.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn rejects_bad_alpha() {
        let _ = ExecObserver::new(1, 0.0);
    }
}
