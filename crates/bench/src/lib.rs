//! Shared fixtures for the Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_compress::CompressionModel;
use cc_sim::ClusterConfig;
use cc_trace::{SyntheticTrace, Trace};
use cc_types::SimDuration;
use cc_workload::{Catalog, Workload};

/// A small but non-trivial benchmark scenario: enough functions and
/// invocations that policy differences register, small enough that a
/// Criterion iteration stays in the tens of milliseconds.
pub struct BenchScenario {
    /// The trace.
    pub trace: Trace,
    /// The resolved workload.
    pub workload: Workload,
    /// The cluster configuration.
    pub config: ClusterConfig,
}

impl BenchScenario {
    /// Builds the standard benchmark scenario.
    pub fn new() -> BenchScenario {
        let trace = SyntheticTrace::builder()
            .functions(40)
            .duration(SimDuration::from_mins(60))
            .seed(11)
            .build();
        let workload = Workload::from_trace(
            &trace,
            &Catalog::paper_catalog(),
            &CompressionModel::paper_default(),
        );
        BenchScenario {
            trace,
            workload,
            config: ClusterConfig::small(2, 2),
        }
    }
}

impl Default for BenchScenario {
    fn default() -> Self {
        BenchScenario::new()
    }
}
