//! Keep-alive cost accounting in integer pico-dollars.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use crate::{Arch, MemoryMb, SimDuration};

/// A monetary amount in pico-dollars (10⁻¹² $).
///
/// Keep-alive costs per the paper are tiny per-function (a few nano-dollars
/// per MiB-second), so pico-dollar integers keep the budget ledger exact
/// while still fitting two weeks of a 200k-function trace in a `u64`
/// (`u64::MAX` pico-dollars ≈ $18.4M).
///
/// # Example
///
/// ```
/// use cc_types::Cost;
///
/// let a = Cost::from_picodollars(1_500);
/// let b = Cost::from_picodollars(500);
/// assert_eq!(a + b, Cost::from_picodollars(2_000));
/// assert_eq!((a - b).as_picodollars(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(u64);

impl Cost {
    /// Zero dollars.
    pub const ZERO: Cost = Cost(0);

    /// Creates a cost from pico-dollars.
    pub const fn from_picodollars(pd: u64) -> Self {
        Cost(pd)
    }

    /// Creates a cost from (fractional) dollars, rounding to the nearest
    /// pico-dollar and saturating negatives to zero.
    pub fn from_dollars(dollars: f64) -> Self {
        if dollars <= 0.0 || !dollars.is_finite() {
            return Cost::ZERO;
        }
        Cost((dollars * 1e12).round() as u64)
    }

    /// Returns the amount in pico-dollars.
    pub const fn as_picodollars(self) -> u64 {
        self.0
    }

    /// Returns the amount in (fractional) dollars.
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Returns whether this is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtracts `other`, saturating at zero.
    pub fn saturating_sub(self, other: Cost) -> Cost {
        Cost(self.0.saturating_sub(other.0))
    }

    /// Adds `other`, saturating at `u64::MAX` pico-dollars.
    pub fn saturating_add(self, other: Cost) -> Cost {
        Cost(self.0.saturating_add(other.0))
    }

    /// Multiplies by an integer count, saturating at `u64::MAX`
    /// pico-dollars (the product is formed in `u128`, so it cannot wrap
    /// before the clamp). Use this instead of `cost * n` wherever the
    /// count is unbounded — e.g. crediting a budget across an arbitrarily
    /// long idle gap.
    pub fn saturating_mul(self, count: u64) -> Cost {
        Cost((self.0 as u128 * count as u128).min(u64::MAX as u128) as u64)
    }

    /// Multiplies by a floating-point factor (e.g. a budget multiplier),
    /// rounding to the nearest pico-dollar and saturating negatives to zero.
    pub fn scale(self, factor: f64) -> Cost {
        Cost::from_dollars(self.as_dollars() * factor)
    }

    /// Returns the smaller of two costs.
    pub fn min(self, other: Cost) -> Cost {
        Cost(self.0.min(other.0))
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0.checked_add(rhs.0).expect("Cost addition overflow"))
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sub for Cost {
    type Output = Cost;
    fn sub(self, rhs: Cost) -> Cost {
        Cost(
            self.0
                .checked_sub(rhs.0)
                .expect("Cost subtraction underflow"),
        )
    }
}

impl SubAssign for Cost {
    fn sub_assign(&mut self, rhs: Cost) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cost {
    type Output = Cost;
    fn mul(self, rhs: u64) -> Cost {
        Cost(
            self.0
                .checked_mul(rhs)
                .expect("Cost multiplication overflow"),
        )
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |acc, c| acc + c)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.9}", self.as_dollars())
    }
}

/// A keep-alive cost rate in pico-dollars per MiB-second (the paper's
/// `X_x86`/`X_ARM` terms).
///
/// The paper charges keep-alive at the node's hourly price pro-rated by the
/// memory a warm instance reserves: an m5 x86 node ($0.384/h, 32 GiB) works
/// out to ≈3255 p$/MiB·s, a t4g ARM node ($0.2688/h) to ≈2279 p$/MiB·s.
///
/// # Example
///
/// ```
/// use cc_types::{Arch, CostRate, MemoryMb, SimDuration};
///
/// let x86 = CostRate::paper_rate(Arch::X86);
/// let arm = CostRate::paper_rate(Arch::Arm);
/// assert!(arm < x86, "ARM keep-alive is cheaper by design");
///
/// let cost = x86.keep_alive_cost(MemoryMb::new(128), SimDuration::from_mins(10));
/// assert!(cost.as_dollars() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CostRate(u64);

/// Hourly price of the paper's x86 worker node (EC2 m5), in dollars.
pub const X86_NODE_DOLLARS_PER_HOUR: f64 = 0.384;
/// Hourly price of the paper's ARM worker node (EC2 t4g), in dollars.
pub const ARM_NODE_DOLLARS_PER_HOUR: f64 = 0.2688;
/// Memory capacity of both worker node types in the paper, in MiB.
pub const NODE_MEMORY_MB: u32 = 32 * 1024;

impl CostRate {
    /// A zero rate (keep-alive is free).
    pub const ZERO: CostRate = CostRate(0);

    /// Creates a rate from pico-dollars per MiB-second.
    pub const fn from_picodollars_per_mb_s(rate: u64) -> Self {
        CostRate(rate)
    }

    /// Returns the rate in pico-dollars per MiB-second.
    pub const fn as_picodollars_per_mb_s(self) -> u64 {
        self.0
    }

    /// The paper's per-architecture rate, derived from the m5/t4g hourly
    /// prices pro-rated over a 32 GiB node.
    pub fn paper_rate(arch: Arch) -> CostRate {
        let dollars_per_hour = match arch {
            Arch::X86 => X86_NODE_DOLLARS_PER_HOUR,
            Arch::Arm => ARM_NODE_DOLLARS_PER_HOUR,
        };
        CostRate::from_node_price(dollars_per_hour, MemoryMb::new(NODE_MEMORY_MB))
    }

    /// Derives a per-MiB-second rate from a node's hourly price and its
    /// memory capacity.
    ///
    /// # Panics
    ///
    /// Panics if `node_memory` is zero.
    pub fn from_node_price(dollars_per_hour: f64, node_memory: MemoryMb) -> CostRate {
        assert!(!node_memory.is_zero(), "node memory must be non-zero");
        let pd_per_mb_s = dollars_per_hour * 1e12 / 3600.0 / node_memory.as_mb() as f64;
        CostRate(pd_per_mb_s.round().max(0.0) as u64)
    }

    /// Computes the keep-alive cost of reserving `memory` for `duration`
    /// at this rate: `memory × duration × rate` (the paper's
    /// `M_i · K_t_i · X_arch` product).
    pub fn keep_alive_cost(self, memory: MemoryMb, duration: SimDuration) -> Cost {
        // u128 intermediate: mem(≤2^32) × µs(≤2^44 for 2 weeks) × rate(≤2^13)
        // cannot overflow.
        let pd =
            self.0 as u128 * memory.as_mb() as u128 * duration.as_micros() as u128 / 1_000_000u128;
        Cost(u64::try_from(pd).expect("keep-alive cost overflow"))
    }
}

impl fmt::Display for CostRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}p$/MiB·s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_mul_clamps_at_max() {
        let c = Cost::from_picodollars(u64::MAX / 2 + 1);
        assert_eq!(c.saturating_mul(2), Cost::from_picodollars(u64::MAX));
        assert_eq!(c.saturating_mul(0), Cost::ZERO);
        assert_eq!(
            Cost::from_picodollars(3).saturating_mul(4),
            Cost::from_picodollars(12)
        );
        assert_eq!(
            Cost::from_picodollars(u64::MAX).saturating_mul(u64::MAX),
            Cost::from_picodollars(u64::MAX)
        );
    }

    #[test]
    fn paper_rates_match_hand_calculation() {
        // 0.384 / 3600 / 32768 * 1e12 ≈ 3255.2 p$/MiB·s
        assert_eq!(
            CostRate::paper_rate(Arch::X86).as_picodollars_per_mb_s(),
            3255
        );
        // 0.2688 / 3600 / 32768 * 1e12 ≈ 2278.6 p$/MiB·s
        assert_eq!(
            CostRate::paper_rate(Arch::Arm).as_picodollars_per_mb_s(),
            2279
        );
    }

    #[test]
    fn arm_is_cheaper() {
        assert!(CostRate::paper_rate(Arch::Arm) < CostRate::paper_rate(Arch::X86));
    }

    #[test]
    fn keep_alive_cost_is_linear() {
        let rate = CostRate::from_picodollars_per_mb_s(1000);
        let base = rate.keep_alive_cost(MemoryMb::new(10), SimDuration::from_secs(5));
        assert_eq!(base.as_picodollars(), 1000 * 10 * 5);
        let double_mem = rate.keep_alive_cost(MemoryMb::new(20), SimDuration::from_secs(5));
        assert_eq!(double_mem.as_picodollars(), base.as_picodollars() * 2);
        let double_time = rate.keep_alive_cost(MemoryMb::new(10), SimDuration::from_secs(10));
        assert_eq!(double_time.as_picodollars(), base.as_picodollars() * 2);
    }

    #[test]
    fn keep_alive_cost_sub_second_precision() {
        let rate = CostRate::from_picodollars_per_mb_s(3255);
        let c = rate.keep_alive_cost(MemoryMb::new(1), SimDuration::from_millis(500));
        assert_eq!(c.as_picodollars(), 3255 / 2);
    }

    #[test]
    fn cost_dollars_roundtrip() {
        let c = Cost::from_dollars(1.5);
        assert!((c.as_dollars() - 1.5).abs() < 1e-12);
        assert_eq!(Cost::from_dollars(-1.0), Cost::ZERO);
        assert_eq!(Cost::from_dollars(f64::NAN), Cost::ZERO);
    }

    #[test]
    fn cost_arithmetic_and_sum() {
        let parts = [100u64, 200, 300].map(Cost::from_picodollars);
        let total: Cost = parts.into_iter().sum();
        assert_eq!(total.as_picodollars(), 600);
        assert_eq!(
            total.saturating_sub(Cost::from_picodollars(1000)),
            Cost::ZERO
        );
        assert_eq!(total.scale(0.5).as_picodollars(), 300);
    }

    #[test]
    #[should_panic(expected = "Cost subtraction underflow")]
    fn cost_underflow_panics() {
        let _ = Cost::ZERO - Cost::from_picodollars(1);
    }

    #[test]
    fn two_week_trace_budget_fits_u64() {
        // 31 nodes × 32 GiB × 2 weeks at the x86 rate stays far below u64::MAX.
        let rate = CostRate::paper_rate(Arch::X86);
        let c = rate.keep_alive_cost(
            MemoryMb::new(31 * NODE_MEMORY_MB),
            SimDuration::from_mins(14 * 24 * 60),
        );
        assert!(c.as_dollars() < 4000.0);
    }
}
