//! The 40-function profile catalog and trace matching.

use cc_compress::{CompressionModel, EntropyClass};
use cc_types::{Arch, MemoryMb, SimDuration};

use crate::{FunctionProfile, Suite};

/// Aggregate statistics of a catalog, matching the paper's §2 findings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogStats {
    /// Fraction of profiles faster on ARM (paper: ≈0.38).
    pub arm_faster_fraction: f64,
    /// Fraction compression-favorable on x86 (paper: ≈0.42).
    pub favorable_x86_fraction: f64,
    /// Fraction compression-favorable on ARM (paper: ≈0.46).
    pub favorable_arm_fraction: f64,
    /// Of the ARM-faster profiles, the fraction that are also
    /// compression-favorable on ARM (paper: ≈0.60).
    pub arm_faster_favorable_fraction: f64,
}

/// The benchmark-function catalog the reproduction schedules against.
///
/// # Example
///
/// ```
/// use cc_workload::Catalog;
/// use cc_types::{MemoryMb, SimDuration};
///
/// let catalog = Catalog::paper_catalog();
/// let p = catalog.nearest(SimDuration::from_secs(30), MemoryMb::new(1800));
/// assert_eq!(p.name, "sebs.video-processing");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    profiles: Vec<FunctionProfile>,
}

/// Compact row format for the built-in table:
/// `(name, suite, exec_ms_x86, arm_exec_ratio, cold_ms_x86, mem_mb, image_mb, entropy)`.
type Row = (&'static str, Suite, u64, f64, u64, u32, u64, EntropyClass);

use EntropyClass::{Dense, Mixed, Text};
use Suite::{Sebs, ServerlessBench as SlBench};

/// The calibrated table. Grouping (documented per block) pins the paper's
/// aggregate fractions: 15/40 ARM-faster, 17/40 x86-compression-favorable,
/// 18/40 ARM-compression-favorable (superset), 9/15 ARM-faster ∩
/// ARM-favorable.
const ROWS: &[Row] = &[
    // ARM-faster AND compression-favorable on both architectures (9).
    ("sebs.dynamic-html", Sebs, 350, 0.82, 1_800, 192, 410, Text),
    (
        "sebs.thumbnailer",
        Sebs,
        1_200,
        0.88,
        2_400,
        256,
        520,
        Mixed,
    ),
    ("sebs.pagerank", Sebs, 4_200, 0.78, 2_800, 512, 610, Text),
    ("sebs.bfs", Sebs, 2_600, 0.74, 2_600, 448, 580, Text),
    ("sebs.json-serde", Sebs, 600, 0.90, 1_500, 160, 400, Text),
    ("slbench.alu", SlBench, 220, 0.70, 1_600, 128, 430, Text),
    (
        "slbench.wordcount",
        SlBench,
        3_400,
        0.85,
        3_000,
        640,
        700,
        Text,
    ),
    (
        "slbench.markdown-render",
        SlBench,
        480,
        0.87,
        1_900,
        192,
        460,
        Text,
    ),
    (
        "slbench.stream-agg",
        SlBench,
        5_200,
        0.80,
        3_600,
        768,
        820,
        Mixed,
    ),
    // ARM-faster but NOT compression-favorable anywhere (6): tiny cold
    // starts, bloated images.
    ("sebs.uploader", Sebs, 900, 0.92, 240, 256, 980, Dense),
    ("sebs.http-endpoint", Sebs, 150, 0.76, 180, 128, 900, Mixed),
    (
        "slbench.cache-probe",
        SlBench,
        120,
        0.84,
        150,
        128,
        860,
        Dense,
    ),
    ("slbench.login", SlBench, 300, 0.90, 200, 192, 940, Mixed),
    ("slbench.notify", SlBench, 180, 0.78, 160, 128, 1_020, Dense),
    ("slbench.grep", SlBench, 1_500, 0.88, 300, 384, 1_150, Mixed),
    // x86-faster AND compression-favorable on both (8): heavy runtimes with
    // long cold starts.
    (
        "sebs.video-processing",
        Sebs,
        28_000,
        1.30,
        6_000,
        1_792,
        880,
        Mixed,
    ),
    (
        "sebs.image-recognition",
        Sebs,
        6_200,
        1.35,
        5_200,
        1_536,
        860,
        Mixed,
    ),
    (
        "sebs.dna-visualization",
        Sebs,
        8_400,
        1.18,
        3_400,
        1_024,
        760,
        Text,
    ),
    (
        "sebs.cnn-serving",
        Sebs,
        3_800,
        1.40,
        5_600,
        2_048,
        900,
        Mixed,
    ),
    (
        "slbench.online-compiling",
        SlBench,
        11_000,
        1.12,
        4_200,
        896,
        720,
        Text,
    ),
    (
        "slbench.data-analysis",
        SlBench,
        7_600,
        1.22,
        3_800,
        1_280,
        680,
        Text,
    ),
    (
        "slbench.ml-inference",
        SlBench,
        2_400,
        1.38,
        4_800,
        1_664,
        840,
        Mixed,
    ),
    (
        "slbench.video-transcode",
        SlBench,
        46_000,
        1.28,
        6_400,
        1_920,
        900,
        Mixed,
    ),
    // Compression-favorable ONLY on ARM (1): decompression barely loses to
    // the x86 cold start but beats the (slower) ARM cold start.
    (
        "sebs.compression",
        Sebs,
        5_400,
        1.10,
        500,
        512,
        1_060,
        Dense,
    ),
    // x86-faster, NOT compression-favorable anywhere (16).
    ("sebs.mst", Sebs, 3_100, 1.08, 300, 512, 1_100, Mixed),
    ("sebs.crypto", Sebs, 950, 1.26, 200, 256, 980, Dense),
    ("sebs.regression", Sebs, 5_800, 1.15, 340, 768, 1_220, Mixed),
    (
        "sebs.feature-gen",
        Sebs,
        2_300,
        1.32,
        260,
        448,
        1_050,
        Mixed,
    ),
    ("sebs.sentiment", Sebs, 1_800, 1.20, 310, 384, 1_180, Mixed),
    ("sebs.kmeans", Sebs, 6_800, 1.12, 280, 896, 1_240, Mixed),
    ("sebs.matmul", Sebs, 4_500, 1.42, 220, 640, 1_010, Dense),
    ("sebs.sort", Sebs, 2_900, 1.16, 180, 512, 930, Dense),
    (
        "slbench.image-resize",
        SlBench,
        1_300,
        1.24,
        330,
        320,
        1_300,
        Mixed,
    ),
    (
        "slbench.couchdb-query",
        SlBench,
        800,
        1.10,
        150,
        256,
        870,
        Dense,
    ),
    (
        "slbench.etl-pipeline",
        SlBench,
        9_500,
        1.18,
        350,
        1_024,
        1_360,
        Mixed,
    ),
    (
        "slbench.chain-reaction",
        SlBench,
        2_100,
        1.34,
        240,
        384,
        1_120,
        Mixed,
    ),
    (
        "slbench.map-reduce",
        SlBench,
        12_500,
        1.08,
        320,
        1_152,
        1_290,
        Mixed,
    ),
    (
        "slbench.thumbnail-chain",
        SlBench,
        1_600,
        1.22,
        190,
        320,
        950,
        Dense,
    ),
    (
        "slbench.pdf-gen",
        SlBench,
        2_700,
        1.14,
        270,
        448,
        1_080,
        Mixed,
    ),
    ("slbench.db-write", SlBench, 450, 1.30, 130, 192, 890, Dense),
];

impl Catalog {
    /// The built-in 40-profile catalog calibrated to the paper's aggregate
    /// statistics.
    pub fn paper_catalog() -> Catalog {
        let profiles = ROWS
            .iter()
            .map(
                |&(name, suite, exec_ms, ratio, cold_ms, mem_mb, image_mb, entropy)| {
                    FunctionProfile {
                        name,
                        suite,
                        exec_x86: SimDuration::from_millis(exec_ms),
                        arm_exec_ratio: ratio,
                        cold_x86: SimDuration::from_millis(cold_ms),
                        memory: MemoryMb::new(mem_mb),
                        image_bytes: image_mb << 20,
                        entropy,
                    }
                },
            )
            .collect();
        Catalog { profiles }
    }

    /// Builds a catalog from explicit profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty — the trace matcher needs at least one
    /// candidate.
    pub fn new(profiles: Vec<FunctionProfile>) -> Catalog {
        assert!(!profiles.is_empty(), "catalog must not be empty");
        Catalog { profiles }
    }

    /// All profiles.
    pub fn profiles(&self) -> &[FunctionProfile] {
        &self.profiles
    }

    /// Finds the profile nearest to a trace function's reported execution
    /// time and memory — the paper's trace-to-benchmark matching step.
    ///
    /// Distance is symmetric in scale: the sum of absolute log-ratios of
    /// execution time and memory.
    pub fn nearest(&self, exec: SimDuration, memory: MemoryMb) -> &FunctionProfile {
        let e = exec.as_secs_f64().max(1e-3);
        let m = memory.as_mb().max(1) as f64;
        self.profiles
            .iter()
            .min_by(|a, b| {
                let da = log_distance(e, m, a);
                let db = log_distance(e, m, b);
                da.total_cmp(&db)
            })
            .expect("catalog is non-empty")
    }

    /// Computes the aggregate statistics under a compression model.
    pub fn stats_under(&self, model: &CompressionModel) -> CatalogStats {
        let n = self.profiles.len() as f64;
        let arm_faster: Vec<&FunctionProfile> =
            self.profiles.iter().filter(|p| p.arm_faster()).collect();
        let fav_x86 = self
            .profiles
            .iter()
            .filter(|p| p.compression_favorable(model, Arch::X86))
            .count() as f64;
        let fav_arm = self
            .profiles
            .iter()
            .filter(|p| p.compression_favorable(model, Arch::Arm))
            .count() as f64;
        let arm_faster_fav = arm_faster
            .iter()
            .filter(|p| p.compression_favorable(model, Arch::Arm))
            .count() as f64;
        CatalogStats {
            arm_faster_fraction: arm_faster.len() as f64 / n,
            favorable_x86_fraction: fav_x86 / n,
            favorable_arm_fraction: fav_arm / n,
            arm_faster_favorable_fraction: if arm_faster.is_empty() {
                0.0
            } else {
                arm_faster_fav / arm_faster.len() as f64
            },
        }
    }

    /// [`Catalog::stats_under`] with the default paper model.
    pub fn stats(&self) -> CatalogStats {
        self.stats_under(&CompressionModel::paper_default())
    }
}

fn log_distance(exec_secs: f64, mem_mb: f64, p: &FunctionProfile) -> f64 {
    let pe = p.exec_x86.as_secs_f64().max(1e-3);
    let pm = p.memory.as_mb().max(1) as f64;
    (exec_secs / pe).ln().abs() + (mem_mb / pm).ln().abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fractions_hold() {
        let stats = Catalog::paper_catalog().stats();
        assert!((stats.arm_faster_fraction - 0.375).abs() < 1e-9);
        assert!((stats.favorable_x86_fraction - 0.425).abs() < 1e-9);
        assert!((stats.favorable_arm_fraction - 0.45).abs() < 1e-9);
        assert!((stats.arm_faster_favorable_fraction - 0.60).abs() < 1e-9);
    }

    #[test]
    fn x86_favorable_is_subset_of_arm_favorable() {
        let catalog = Catalog::paper_catalog();
        let model = CompressionModel::paper_default();
        for p in catalog.profiles() {
            if p.compression_favorable(&model, Arch::X86) {
                assert!(
                    p.compression_favorable(&model, Arch::Arm),
                    "{} favorable on x86 but not ARM",
                    p.name
                );
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let catalog = Catalog::paper_catalog();
        let mut names: Vec<&str> = catalog.profiles().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.profiles().len());
        assert_eq!(catalog.profiles().len(), 40);
    }

    #[test]
    fn decompression_mean_matches_paper_scale() {
        // Over the x86-compression-favorable profiles (the ones CodeCrunch
        // actually compresses), mean decompression should sit near the
        // paper's 0.37 s, compression near 1.57 s.
        let catalog = Catalog::paper_catalog();
        let model = CompressionModel::paper_default();
        let favorable: Vec<&FunctionProfile> = catalog
            .profiles()
            .iter()
            .filter(|p| p.compression_favorable(&model, Arch::X86))
            .collect();
        let mean_dec: f64 = favorable
            .iter()
            .map(|p| p.decompress_time(&model, Arch::X86).as_secs_f64())
            .sum::<f64>()
            / favorable.len() as f64;
        let mean_comp: f64 = favorable
            .iter()
            .map(|p| p.compress_time(&model).as_secs_f64())
            .sum::<f64>()
            / favorable.len() as f64;
        assert!(
            (mean_dec - 0.37).abs() < 0.07,
            "mean decompression {mean_dec}"
        );
        assert!(
            (mean_comp - 1.57).abs() < 0.25,
            "mean compression {mean_comp}"
        );
    }

    #[test]
    fn nearest_matches_scale() {
        let catalog = Catalog::paper_catalog();
        // A tiny, fast function matches a tiny profile.
        let p = catalog.nearest(SimDuration::from_millis(150), MemoryMb::new(128));
        assert!(
            p.exec_x86 <= SimDuration::from_millis(500),
            "got {}",
            p.name
        );
        // A huge slow one matches the video profiles.
        let p = catalog.nearest(SimDuration::from_secs(40), MemoryMb::new(2000));
        assert!(p.exec_x86 >= SimDuration::from_secs(20), "got {}", p.name);
    }

    #[test]
    #[should_panic(expected = "catalog must not be empty")]
    fn empty_catalog_rejected() {
        let _ = Catalog::new(vec![]);
    }
}
