//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no network access, so this crate provides the
//! JSON surface the workspace uses — a [`Value`] tree with insertion-order
//! object keys, the [`json!`] constructor macro, accessors
//! (`as_f64`/`as_u64`/`as_str`/`as_array`, `Index` by key and position),
//! and pretty serialization ([`to_vec_pretty`], [`to_string_pretty`]).
//!
//! Serialization of custom types goes through the [`ToJson`] trait instead
//! of serde's derive machinery: implement `to_json(&self) -> Value` and
//! every `to_*` function accepts the type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Index;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys keep insertion order.
    Object(Map),
}

/// An object body: key-value pairs in insertion order.
pub type Map = Vec<(String, Value)>;

/// A JSON number: integer or float, preserved exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::U64(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v as i64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// Types that can render themselves as a JSON [`Value`] — the stand-in for
/// serde's `Serialize`.
pub trait ToJson {
    /// Converts `self` into a JSON value tree.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &mut T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! impl_to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

impl_to_json_via_from!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

macro_rules! impl_to_json_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}

impl_to_json_tuple!(A: 0, B: 1);
impl_to_json_tuple!(A: 0, B: 1, C: 2);
impl_to_json_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Converts any [`ToJson`] value to a [`Value`] by reference. The `json!`
/// macro routes value expressions through this, so (like upstream
/// serde_json) it never moves out of the expressions it is given.
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Serialization error. The in-memory writer cannot actually fail; the
/// type exists for signature compatibility with upstream `serde_json`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes compactly to a `String`.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serializes with 2-space indentation to a `String`.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(2), 0);
    Ok(out)
}

/// Serializes with 2-space indentation to bytes.
pub fn to_vec_pretty<T: ToJson + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d)
            })
        }
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            },
        ),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Match serde_json: floats always carry a decimal point.
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from JSON-shaped syntax, interpolating Rust
/// expressions wherever a value is expected.
///
/// ```
/// use serde_json::json;
///
/// let series = vec![1.0, 2.5];
/// let v = json!({ "name": "fig1", "series": series, "nested": [1, {"ok": true}] });
/// assert_eq!(v["series"][1].as_f64(), Some(2.5));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => { $crate::Value::Array($crate::json_array!([] $($items)*)) };
    ({ $($entries:tt)* }) => { $crate::Value::Object($crate::json_object!([] () $($entries)*)) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal helper for [`json!`] array bodies. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Done.
    ([ $($done:expr,)* ]) => { vec![ $($done,)* ] };
    // Next item is a nested array/object/value; match up to the comma.
    ([ $($done:expr,)* ] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json!([ $($inner)* ]), ] $($rest)*)
    };
    ([ $($done:expr,)* ] [ $($inner:tt)* ]) => {
        $crate::json_array!([ $($done,)* $crate::json!([ $($inner)* ]), ])
    };
    ([ $($done:expr,)* ] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json!({ $($inner)* }), ] $($rest)*)
    };
    ([ $($done:expr,)* ] { $($inner:tt)* }) => {
        $crate::json_array!([ $($done,)* $crate::json!({ $($inner)* }), ])
    };
    ([ $($done:expr,)* ] null , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null, ] $($rest)*)
    };
    ([ $($done:expr,)* ] null) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null, ])
    };
    ([ $($done:expr,)* ] $next:expr , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json!($next), ] $($rest)*)
    };
    ([ $($done:expr,)* ] $next:expr) => {
        $crate::json_array!([ $($done,)* $crate::json!($next), ])
    };
}

/// Internal helper for [`json!`] object bodies. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Done.
    ([ $($done:expr,)* ] ()) => { vec![ $($done,)* ] };
    // Accumulate key tokens until the colon, then dispatch on the value.
    ([ $($done:expr,)* ] () $key:literal : $($rest:tt)*) => {
        $crate::json_object!([ $($done,)* ] ($key) $($rest)*)
    };
    ([ $($done:expr,)* ] ($key:literal) [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!([ $($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])), ] () $($rest)*)
    };
    ([ $($done:expr,)* ] ($key:literal) [ $($inner:tt)* ]) => {
        $crate::json_object!([ $($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])), ] ())
    };
    ([ $($done:expr,)* ] ($key:literal) { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!([ $($done,)* ($key.to_string(), $crate::json!({ $($inner)* })), ] () $($rest)*)
    };
    ([ $($done:expr,)* ] ($key:literal) { $($inner:tt)* }) => {
        $crate::json_object!([ $($done,)* ($key.to_string(), $crate::json!({ $($inner)* })), ] ())
    };
    ([ $($done:expr,)* ] ($key:literal) null , $($rest:tt)*) => {
        $crate::json_object!([ $($done,)* ($key.to_string(), $crate::Value::Null), ] () $($rest)*)
    };
    ([ $($done:expr,)* ] ($key:literal) null) => {
        $crate::json_object!([ $($done,)* ($key.to_string(), $crate::Value::Null), ] ())
    };
    ([ $($done:expr,)* ] ($key:literal) $value:expr , $($rest:tt)*) => {
        $crate::json_object!([ $($done,)* ($key.to_string(), $crate::json!($value)), ] () $($rest)*)
    };
    ([ $($done:expr,)* ] ($key:literal) $value:expr) => {
        $crate::json_object!([ $($done,)* ($key.to_string(), $crate::json!($value)), ] ())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let series = vec![0.5f64, 1.0];
        let v = json!({
            "id": "fig",
            "count": 3u64,
            "series": series,
            "rows": [ {"a": 1, "b": [2, 3]}, null, true ],
        });
        assert_eq!(v["id"], "fig");
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["series"][0].as_f64(), Some(0.5));
        assert_eq!(v["rows"][0]["b"][1].as_u64(), Some(3));
        assert_eq!(v["rows"][1], Value::Null);
        assert_eq!(v["rows"][2].as_bool(), Some(true));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn pretty_output_is_stable_and_ordered() {
        let v = json!({ "b": 1, "a": [true, "x"] });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"b\": 1,\n  \"a\": [\n    true,\n    \"x\"\n  ]\n}"
        );
        // Keys keep insertion order, not alphabetical order.
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
    }

    #[test]
    fn compact_output_roundtrips_escapes() {
        let v = json!({ "s": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"s":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(2.5)).unwrap(), "2.5");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&json!(7u64)).unwrap(), "7");
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = json!({ "n": 1.5 });
        assert_eq!(v["n"].as_u64(), None);
        assert_eq!(v["n"].as_f64(), Some(1.5));
        assert_eq!(v["n"].as_str(), None);
        assert!(v.get("nope").is_none());
        assert_eq!(v[3], Value::Null);
    }

    #[test]
    fn empty_containers_render_tight() {
        assert_eq!(to_string_pretty(&json!([])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&json!({})).unwrap(), "{}");
    }
}
