//! Per-function trace metadata.

use cc_types::{FunctionId, MemoryMb, SimDuration};

/// The per-function metadata a trace carries, mirroring the Azure Functions
/// dataset schema: an identifier, the function's average execution duration,
/// and its allocated memory.
///
/// The workload catalog ([`cc-workload`](https://docs.rs/cc-workload))
/// matches each `TraceFunction` to the nearest benchmark profile by
/// execution time and memory, exactly as the paper does ("we use these
/// values to find the nearest matching function from our benchmark pool").
///
/// # Example
///
/// ```
/// use cc_trace::TraceFunction;
/// use cc_types::{FunctionId, MemoryMb, SimDuration};
///
/// let f = TraceFunction::new(
///     FunctionId::new(0),
///     SimDuration::from_secs(3),
///     MemoryMb::new(256),
/// );
/// assert_eq!(f.memory.as_mb(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceFunction {
    /// Dense function identifier.
    pub id: FunctionId,
    /// Average execution duration reported by the trace.
    pub mean_exec: SimDuration,
    /// Allocated memory reported by the trace.
    pub memory: MemoryMb,
}

impl TraceFunction {
    /// Creates a function metadata record.
    pub const fn new(id: FunctionId, mean_exec: SimDuration, memory: MemoryMb) -> Self {
        TraceFunction {
            id,
            mean_exec,
            memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let f = TraceFunction::new(
            FunctionId::new(5),
            SimDuration::from_millis(1500),
            MemoryMb::new(128),
        );
        assert_eq!(f.id.index(), 5);
        assert_eq!(f.mean_exec.as_millis(), 1500);
    }
}
