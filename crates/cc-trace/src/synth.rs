//! Synthetic production-like trace generation.
//!
//! The generator reproduces the invocation structure the
//! Serverless-in-the-Wild characterization reports for the Azure trace:
//! most functions are periodic (often with several interleaved periods or
//! drifting phase), a large minority are Poisson-like, some are bursty
//! on/off, and a tail is invoked rarely. A diurnal envelope plus explicit
//! peak windows create the "periods of high invocation load" where the
//! paper's compression benefit concentrates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Normal};

use cc_types::{FunctionId, Invocation, MemoryMb, SimDuration, SimTime};

use crate::{Trace, TraceFunction};

/// The invocation pattern class of one synthetic function.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Fixed period with fractional Gaussian jitter.
    Periodic {
        /// Base period between invocations.
        period: SimDuration,
        /// Jitter as a fraction of the period (σ of the Gaussian).
        jitter: f64,
    },
    /// Alternating periods (the "multiple periodic frequencies" case that
    /// makes prediction hard); switches period every few invocations.
    MultiPeriodic {
        /// The set of periods cycled through.
        periods: Vec<SimDuration>,
    },
    /// Memoryless arrivals with the given mean gap.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: SimDuration,
    },
    /// On/off phases: Poisson arrivals during `on`, silence during `off`.
    Bursty {
        /// Length of the active phase.
        on: SimDuration,
        /// Length of the silent phase.
        off: SimDuration,
        /// Mean gap between invocations while active.
        gap_on: SimDuration,
    },
    /// Invoked rarely (mean gap typically above the 60-minute keep-alive
    /// bound, so keeping these alive is never worthwhile).
    Rare {
        /// Mean inter-arrival gap.
        mean_gap: SimDuration,
    },
}

/// Mixing weights over the pattern classes.
///
/// Weights need not sum to one; they are normalized at sampling time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMix {
    /// Weight of [`Pattern::Periodic`].
    pub periodic: f64,
    /// Weight of [`Pattern::MultiPeriodic`].
    pub multi_periodic: f64,
    /// Weight of [`Pattern::Poisson`].
    pub poisson: f64,
    /// Weight of [`Pattern::Bursty`].
    pub bursty: f64,
    /// Weight of [`Pattern::Rare`].
    pub rare: f64,
}

impl PatternMix {
    /// The default mix, approximating the Azure-trace characterization.
    pub fn azure_like() -> Self {
        PatternMix {
            periodic: 0.35,
            multi_periodic: 0.15,
            poisson: 0.30,
            bursty: 0.15,
            rare: 0.05,
        }
    }

    fn total(&self) -> f64 {
        self.periodic + self.multi_periodic + self.poisson + self.bursty + self.rare
    }
}

impl Default for PatternMix {
    fn default() -> Self {
        PatternMix::azure_like()
    }
}

/// A global load peak: a window of the trace during which every function
/// receives extra Poisson invocations.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Peak {
    /// Window start as a fraction of the trace duration.
    start_frac: f64,
    /// Window length as a fraction of the trace duration.
    len_frac: f64,
    /// Load multiplier during the window (1.0 = no extra load).
    multiplier: f64,
}

/// Namespace type for synthetic trace generation; see
/// [`SyntheticTrace::builder`].
#[derive(Debug, Clone, Copy)]
pub struct SyntheticTrace;

impl SyntheticTrace {
    /// Starts configuring a synthetic trace.
    pub fn builder() -> SyntheticTraceBuilder {
        SyntheticTraceBuilder::default()
    }
}

/// Builder for synthetic traces.
///
/// # Example
///
/// ```
/// use cc_trace::SyntheticTrace;
/// use cc_types::SimDuration;
///
/// let trace = SyntheticTrace::builder()
///     .functions(20)
///     .duration(SimDuration::from_mins(120))
///     .seed(42)
///     .build();
/// // Deterministic: the same seed gives the same trace.
/// let again = SyntheticTrace::builder()
///     .functions(20)
///     .duration(SimDuration::from_mins(120))
///     .seed(42)
///     .build();
/// assert_eq!(trace, again);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTraceBuilder {
    functions: usize,
    duration: SimDuration,
    seed: u64,
    mix: PatternMix,
    peaks: Vec<Peak>,
    mean_gap_median: SimDuration,
    exec_median: SimDuration,
    memory_median: MemoryMb,
    /// Zipf exponent skewing per-function popularity (0 = uniform rates,
    /// the default; ~1 matches production FaaS popularity skew).
    zipf_exponent: f64,
    /// Peak-to-trough ratio of a sinusoidal day/night load envelope applied
    /// to Poisson-class arrival rates (1.0 = flat, the default).
    diurnal_amplitude: f64,
}

impl Default for SyntheticTraceBuilder {
    fn default() -> Self {
        SyntheticTraceBuilder {
            functions: 100,
            duration: SimDuration::from_mins(24 * 60),
            seed: 0,
            mix: PatternMix::azure_like(),
            // Three load peaks like the paper's Fig. 11 shading.
            peaks: vec![
                Peak {
                    start_frac: 0.18,
                    len_frac: 0.08,
                    multiplier: 3.0,
                },
                Peak {
                    start_frac: 0.48,
                    len_frac: 0.08,
                    multiplier: 3.5,
                },
                Peak {
                    start_frac: 0.78,
                    len_frac: 0.08,
                    multiplier: 3.0,
                },
            ],
            mean_gap_median: SimDuration::from_mins(5),
            exec_median: SimDuration::from_millis(2_500),
            memory_median: MemoryMb::new(300),
            zipf_exponent: 0.0,
            diurnal_amplitude: 1.0,
        }
    }
}

impl SyntheticTraceBuilder {
    /// Sets the number of unique functions.
    pub fn functions(&mut self, n: usize) -> &mut Self {
        self.functions = n;
        self
    }

    /// Sets the trace duration.
    pub fn duration(&mut self, duration: SimDuration) -> &mut Self {
        self.duration = duration;
        self
    }

    /// Sets the RNG seed (same seed ⇒ identical trace).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the pattern-class mix.
    pub fn pattern_mix(&mut self, mix: PatternMix) -> &mut Self {
        self.mix = mix;
        self
    }

    /// Removes all global load peaks (flat background load).
    pub fn without_peaks(&mut self) -> &mut Self {
        self.peaks.clear();
        self
    }

    /// Adds a global load peak window.
    ///
    /// # Panics
    ///
    /// Panics if the fractions leave `[0, 1]` or the multiplier is < 1.
    pub fn peak(&mut self, start_frac: f64, len_frac: f64, multiplier: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&start_frac), "start_frac out of range");
        assert!((0.0..=1.0).contains(&len_frac), "len_frac out of range");
        assert!(multiplier >= 1.0, "multiplier must be >= 1");
        self.peaks.push(Peak {
            start_frac,
            len_frac,
            multiplier,
        });
        self
    }

    /// Sets the median of the per-function mean inter-arrival gap.
    pub fn mean_gap_median(&mut self, gap: SimDuration) -> &mut Self {
        self.mean_gap_median = gap;
        self
    }

    /// Sets the median execution duration reported in the function table.
    pub fn exec_median(&mut self, exec: SimDuration) -> &mut Self {
        self.exec_median = exec;
        self
    }

    /// Skews per-function invocation rates by a Zipf law: function `i`'s
    /// mean gap is scaled by `(i + 1)^exponent`, so a handful of functions
    /// dominate the invocation volume the way production FaaS traces do.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is negative.
    pub fn zipf_popularity(&mut self, exponent: f64) -> &mut Self {
        assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
        self.zipf_exponent = exponent;
        self
    }

    /// Applies a sinusoidal day/night envelope to Poisson-class arrivals:
    /// the rate swings between `1/ratio` and `ratio` of its base over one
    /// full cycle spanning the trace.
    ///
    /// # Panics
    ///
    /// Panics if `ratio < 1`.
    pub fn diurnal(&mut self, ratio: f64) -> &mut Self {
        assert!(ratio >= 1.0, "diurnal ratio must be >= 1");
        self.diurnal_amplitude = ratio;
        self
    }

    /// Generates the trace.
    pub fn build(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut functions = Vec::with_capacity(self.functions);
        let mut invocations = Vec::new();

        let exec_dist = log_normal(self.exec_median.as_secs_f64(), 1.1);
        let mem_dist = log_normal(self.memory_median.as_mb() as f64, 0.8);
        let gap_dist = log_normal(self.mean_gap_median.as_secs_f64(), 1.2);

        for i in 0..self.functions {
            let id = FunctionId::new(i as u32);
            let exec_secs = exec_dist.sample(&mut rng).clamp(0.05, 300.0);
            let mem_mb = mem_dist.sample(&mut rng).clamp(64.0, 4096.0) as u32;
            functions.push(TraceFunction::new(
                id,
                SimDuration::from_secs_f64(exec_secs),
                MemoryMb::new(mem_mb),
            ));

            // Zipf popularity: early ids invoke densely, the tail rarely.
            let zipf_scale = ((i + 1) as f64).powf(self.zipf_exponent);
            let mean_gap_secs = (gap_dist.sample(&mut rng) * zipf_scale).clamp(10.0, 7_200.0);
            let pattern = self.sample_pattern(&mut rng, mean_gap_secs);
            self.generate_arrivals(&mut rng, id, &pattern, &mut invocations);
            self.inject_peak_arrivals(&mut rng, id, mean_gap_secs, &mut invocations);
        }

        Trace::new(functions, invocations).expect("generator produces valid traces")
    }

    fn sample_pattern(&self, rng: &mut StdRng, mean_gap_secs: f64) -> Pattern {
        let total = self.mix.total();
        assert!(total > 0.0, "pattern mix must have positive total weight");
        let mut pick = rng.gen::<f64>() * total;
        let gap = SimDuration::from_secs_f64(mean_gap_secs);

        pick -= self.mix.periodic;
        if pick < 0.0 {
            return Pattern::Periodic {
                period: gap,
                jitter: rng.gen_range(0.01..0.15),
            };
        }
        pick -= self.mix.multi_periodic;
        if pick < 0.0 {
            let count = rng.gen_range(2..=3);
            let periods = (0..count)
                .map(|_| {
                    gap.scale(rng.gen_range(0.5..2.0))
                        .max(SimDuration::from_secs(5))
                })
                .collect();
            return Pattern::MultiPeriodic { periods };
        }
        pick -= self.mix.poisson;
        if pick < 0.0 {
            return Pattern::Poisson { mean_gap: gap };
        }
        pick -= self.mix.bursty;
        if pick < 0.0 {
            return Pattern::Bursty {
                on: gap.scale(rng.gen_range(3.0..10.0)),
                off: gap.scale(rng.gen_range(5.0..20.0)),
                gap_on: gap
                    .scale(rng.gen_range(0.05..0.3))
                    .max(SimDuration::from_secs(1)),
            };
        }
        Pattern::Rare {
            mean_gap: SimDuration::from_secs_f64((mean_gap_secs * 20.0).max(4_500.0)),
        }
    }

    fn generate_arrivals(
        &self,
        rng: &mut StdRng,
        id: FunctionId,
        pattern: &Pattern,
        out: &mut Vec<Invocation>,
    ) {
        let horizon = self.duration.as_secs_f64();
        match pattern {
            Pattern::Periodic { period, jitter } => {
                let p = period.as_secs_f64().max(1.0);
                let noise = Normal::new(0.0, p * jitter).expect("finite jitter");
                let mut t = rng.gen_range(0.0..p);
                while t < horizon {
                    let jittered = (t + noise.sample(rng)).max(0.0);
                    if jittered < horizon {
                        out.push(at(id, jittered));
                    }
                    t += p;
                }
            }
            Pattern::MultiPeriodic { periods } => {
                let mut t = rng.gen_range(0.0..periods[0].as_secs_f64().max(1.0));
                let mut idx = 0usize;
                let mut remaining_in_phase = rng.gen_range(3..10);
                while t < horizon {
                    out.push(at(id, t));
                    t += periods[idx].as_secs_f64().max(1.0);
                    remaining_in_phase -= 1;
                    if remaining_in_phase == 0 {
                        idx = (idx + 1) % periods.len();
                        remaining_in_phase = rng.gen_range(3..10);
                    }
                }
            }
            Pattern::Poisson { mean_gap } | Pattern::Rare { mean_gap } => {
                let rate = 1.0 / mean_gap.as_secs_f64().max(1.0);
                if self.diurnal_amplitude > 1.0 {
                    // Non-homogeneous Poisson via thinning: sample at the
                    // envelope's maximum rate and accept proportionally to
                    // the instantaneous day/night level.
                    let amplitude = self.diurnal_amplitude;
                    let exp = Exp::new(rate * amplitude).expect("positive rate");
                    let mut t = exp.sample(rng);
                    while t < horizon {
                        let phase = 2.0 * std::f64::consts::PI * t / horizon.max(1.0);
                        let envelope = amplitude.powf(phase.sin());
                        if rng.gen::<f64>() < envelope / amplitude {
                            out.push(at(id, t));
                        }
                        t += exp.sample(rng);
                    }
                } else {
                    let exp = Exp::new(rate).expect("positive rate");
                    let mut t = exp.sample(rng);
                    while t < horizon {
                        out.push(at(id, t));
                        t += exp.sample(rng);
                    }
                }
            }
            Pattern::Bursty { on, off, gap_on } => {
                let cycle = on.as_secs_f64() + off.as_secs_f64();
                let rate = 1.0 / gap_on.as_secs_f64().max(0.5);
                let exp = Exp::new(rate).expect("positive rate");
                let phase_start = rng.gen_range(0.0..cycle.max(1.0));
                // Walk on-phases across the horizon, starting at a random
                // phase so functions' bursts do not align.
                let mut window_start = -phase_start;
                while window_start < horizon {
                    let on_end = window_start + on.as_secs_f64();
                    let mut t = window_start.max(0.0) + exp.sample(rng);
                    while t < on_end.min(horizon) {
                        if t >= 0.0 {
                            out.push(at(id, t));
                        }
                        t += exp.sample(rng);
                    }
                    window_start += cycle.max(1.0);
                }
            }
        }
    }

    /// Adds extra Poisson arrivals during global peak windows, creating the
    /// high-memory-pressure periods the paper studies.
    fn inject_peak_arrivals(
        &self,
        rng: &mut StdRng,
        id: FunctionId,
        mean_gap_secs: f64,
        out: &mut Vec<Invocation>,
    ) {
        let horizon = self.duration.as_secs_f64();
        for peak in &self.peaks {
            let extra_rate = (peak.multiplier - 1.0) / mean_gap_secs.max(10.0);
            if extra_rate <= 0.0 {
                continue;
            }
            let start = peak.start_frac * horizon;
            let end = (peak.start_frac + peak.len_frac) * horizon;
            let exp = Exp::new(extra_rate).expect("positive rate");
            let mut t = start + exp.sample(rng);
            while t < end.min(horizon) {
                out.push(at(id, t));
                t += exp.sample(rng);
            }
        }
    }
}

fn at(id: FunctionId, secs: f64) -> Invocation {
    Invocation::new(id, SimTime::ZERO + SimDuration::from_secs_f64(secs))
}

/// A log-normal distribution parameterized by its median and log-σ.
fn log_normal(median: f64, sigma: f64) -> LogNormal<f64> {
    LogNormal::new(median.max(1e-9).ln(), sigma).expect("valid log-normal")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(seed: u64) -> Trace {
        SyntheticTrace::builder()
            .functions(30)
            .duration(SimDuration::from_mins(180))
            .seed(seed)
            .build()
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(small_trace(1), small_trace(1));
        assert_ne!(small_trace(1), small_trace(2));
    }

    #[test]
    fn respects_function_count_and_duration() {
        let t = small_trace(3);
        assert_eq!(t.functions().len(), 30);
        assert!(t.duration() <= SimDuration::from_mins(180));
        assert!(!t.invocations().is_empty());
    }

    #[test]
    fn invocations_are_sorted() {
        let t = small_trace(4);
        let mut prev = SimTime::ZERO;
        for inv in t.invocations() {
            assert!(inv.arrival >= prev);
            prev = inv.arrival;
        }
    }

    #[test]
    fn peaks_raise_load() {
        let mut b = SyntheticTrace::builder();
        b.functions(100)
            .duration(SimDuration::from_mins(300))
            .seed(5)
            .without_peaks()
            .peak(0.5, 0.1, 6.0);
        let t = b.build();
        let load = t.load_per_minute();
        let n = load.len();
        // Compare mean load inside the window [0.5, 0.6] to the background.
        let window: Vec<usize> = (n / 2..(n * 6 / 10).min(n)).collect();
        let in_peak: f64 =
            window.iter().map(|&i| load[i] as f64).sum::<f64>() / window.len() as f64;
        let outside: f64 = (0..n / 4).map(|i| load[i] as f64).sum::<f64>() / (n / 4) as f64;
        assert!(
            in_peak > outside * 2.0,
            "peak load {in_peak} not >> background {outside}"
        );
    }

    #[test]
    fn exec_and_memory_are_in_range() {
        let t = small_trace(6);
        for f in t.functions() {
            assert!(f.mean_exec >= SimDuration::from_millis(50));
            assert!(f.mean_exec <= SimDuration::from_secs(300));
            assert!(f.memory.as_mb() >= 64 && f.memory.as_mb() <= 4096);
        }
    }

    #[test]
    fn pattern_mix_total_normalizes() {
        let mix = PatternMix {
            periodic: 2.0,
            multi_periodic: 0.0,
            poisson: 0.0,
            bursty: 0.0,
            rare: 0.0,
        };
        let mut b = SyntheticTrace::builder();
        b.functions(10)
            .duration(SimDuration::from_mins(60))
            .seed(7)
            .pattern_mix(mix)
            .without_peaks();
        let t = b.build();
        // All functions periodic: every function with >= 3 invocations has a
        // low coefficient of variation in its gaps.
        for f in t.functions() {
            let times: Vec<f64> = t
                .invocations()
                .iter()
                .filter(|i| i.function == f.id)
                .map(|i| i.arrival.as_secs_f64())
                .collect();
            if times.len() < 4 {
                continue;
            }
            let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            let cv = var.sqrt() / mean;
            assert!(cv < 0.5, "periodic function {} has cv {cv}", f.id);
        }
    }

    #[test]
    #[should_panic(expected = "multiplier must be >= 1")]
    fn rejects_sub_unit_multiplier() {
        SyntheticTrace::builder().peak(0.1, 0.1, 0.5);
    }

    #[test]
    fn zipf_skews_popularity() {
        let build = |exponent: f64| {
            let mut b = SyntheticTrace::builder();
            b.functions(50)
                .duration(SimDuration::from_mins(600))
                .seed(2)
                .without_peaks()
                .zipf_popularity(exponent);
            b.build()
        };
        let skewed = build(1.0);
        let mut counts = vec![0u64; 50];
        for inv in skewed.invocations() {
            counts[inv.function.index()] += 1;
        }
        // The top-10 functions should dominate the volume under Zipf(1).
        // The exact share depends on the PRNG stream (50 log-normal draws
        // carry real variance), so the absolute floor is deliberately loose;
        // the sharp assertion is the comparison against the flat build.
        let head: u64 = counts[..10].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(
            head as f64 / total as f64 > 0.4,
            "head share {} too small",
            head as f64 / total as f64
        );
        // Uniform popularity has a much flatter head.
        let flat = build(0.0);
        let mut flat_counts = vec![0u64; 50];
        for inv in flat.invocations() {
            flat_counts[inv.function.index()] += 1;
        }
        let flat_head: u64 = flat_counts[..10].iter().sum();
        let flat_total: u64 = flat_counts.iter().sum();
        assert!(
            head as f64 / total as f64 > flat_head as f64 / flat_total as f64 + 0.1,
            "zipf head {} not clearly above flat head {}",
            head as f64 / total as f64,
            flat_head as f64 / flat_total as f64
        );
    }

    #[test]
    fn diurnal_envelope_modulates_load() {
        let mix = PatternMix {
            periodic: 0.0,
            multi_periodic: 0.0,
            poisson: 1.0,
            bursty: 0.0,
            rare: 0.0,
        };
        let mut b = SyntheticTrace::builder();
        b.functions(80)
            .duration(SimDuration::from_mins(480))
            .seed(78)
            .pattern_mix(mix)
            .without_peaks()
            .diurnal(3.0);
        let t = b.build();
        let load = t.load_per_minute();
        // The sinusoidal envelope peaks in the first half (sin > 0) and
        // troughs in the second: compare quarter 1 vs quarter 3.
        let q = load.len() / 4;
        let peak: u32 = load[..q].iter().sum();
        let trough: u32 = load[2 * q..3 * q].iter().sum();
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    #[should_panic(expected = "diurnal ratio must be >= 1")]
    fn rejects_sub_unit_diurnal() {
        SyntheticTrace::builder().diurnal(0.5);
    }

    #[test]
    #[should_panic(expected = "Zipf exponent must be non-negative")]
    fn rejects_negative_zipf() {
        SyntheticTrace::builder().zipf_popularity(-1.0);
    }
}
