//! Allocation accounting: a counting `GlobalAlloc` wrapper that attributes
//! every allocation to the profiling phase open on the allocating thread.
//!
//! The counters are plain process-global atomics — always compiled, always
//! cheap to read — but they only ever move once a binary *installs*
//! [`CountingAllocator`] as its `#[global_allocator]`. The bench binaries
//! do that behind their `alloc-profile` cargo feature, so ordinary builds
//! keep the system allocator untouched and [`alloc_totals`] reports `None`
//! ("n/a" in ccstat) instead of zeros that look like a measurement.
//!
//! Constraints inside `GlobalAlloc` shape everything here: the hooks must
//! never allocate and never touch lazily-initialized TLS (both can
//! re-enter the allocator). The phase attribution channel is therefore a
//! const-initialized `Cell<u8>` — no drop glue, no lazy init — written by
//! the span runtime on every enter/exit and read here with plain loads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::phase::Phase;
use crate::profile::AllocSummary;

/// Attribution index meaning "no profiling span open on this thread".
pub(crate) const UNATTRIBUTED_PHASE: u8 = Phase::COUNT as u8;

/// Attribution buckets: one per phase plus the unattributed slot.
const BUCKETS: usize = Phase::COUNT + 1;

thread_local! {
    /// The phase open on this thread, as a bucket index. Const-initialized
    /// and drop-free so reading it inside `GlobalAlloc` is re-entrancy
    /// safe even during TLS teardown.
    static CURRENT_PHASE: Cell<u8> = const { Cell::new(UNATTRIBUTED_PHASE) };
}

/// Records the phase now open on the calling thread (span runtime only).
#[inline]
pub(crate) fn set_current_phase(bucket: u8) {
    let _ = CURRENT_PHASE.try_with(|cell| cell.set(bucket));
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static INSTALLED: AtomicBool = AtomicBool::new(false);
static ALLOC_COUNT: [AtomicU64; BUCKETS] = [ZERO; BUCKETS];
static ALLOC_BYTES: [AtomicU64; BUCKETS] = [ZERO; BUCKETS];
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` wrapper around [`System`] that counts
/// allocations per phase. Install from a binary crate:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: cc_prof::CountingAllocator = cc_prof::CountingAllocator::new();
/// ```
pub struct CountingAllocator;

impl CountingAllocator {
    /// A new counting allocator (stateless; state is in module statics).
    pub const fn new() -> CountingAllocator {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> CountingAllocator {
        CountingAllocator::new()
    }
}

#[inline]
fn record_alloc(bytes: usize) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    let bucket = CURRENT_PHASE
        .try_with(Cell::get)
        .unwrap_or(UNATTRIBUTED_PHASE) as usize;
    let bucket = bucket.min(BUCKETS - 1);
    ALLOC_COUNT[bucket].fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES[bucket].fetch_add(bytes as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn record_dealloc(bytes: usize) {
    // Saturating: frees of allocations made before a counter reset would
    // otherwise wrap the live gauge.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(bytes as u64))
    });
}

// SAFETY: delegates every operation to `System`; the bookkeeping around
// the delegation is atomics and const-init TLS only, neither of which can
// allocate or unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Model a realloc as free+alloc so per-phase byte totals stay
            // an over-approximation rather than missing growth entirely.
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        new_ptr
    }
}

/// Per-phase and total allocation counters read at collection time.
pub(crate) struct AllocSnapshot {
    /// `(count, bytes)` attributed to each phase, indexed by discriminant.
    pub per_phase: [(u64, u64); Phase::COUNT],
    /// Totals and peaks for the profile header.
    pub summary: AllocSummary,
}

/// Reads *and resets* the attribution counters (peak-live and the live
/// gauge persist: they describe the process, not the session).
pub(crate) fn take_snapshot() -> AllocSnapshot {
    let mut per_phase = [(0u64, 0u64); Phase::COUNT];
    let mut total_count = 0u64;
    let mut total_bytes = 0u64;
    for (bucket, slot) in per_phase.iter_mut().enumerate() {
        let count = ALLOC_COUNT[bucket].swap(0, Ordering::Relaxed);
        let bytes = ALLOC_BYTES[bucket].swap(0, Ordering::Relaxed);
        *slot = (count, bytes);
        total_count += count;
        total_bytes += bytes;
    }
    let unattributed_count = ALLOC_COUNT[BUCKETS - 1].swap(0, Ordering::Relaxed);
    let unattributed_bytes = ALLOC_BYTES[BUCKETS - 1].swap(0, Ordering::Relaxed);
    AllocSnapshot {
        per_phase,
        summary: AllocSummary {
            installed: INSTALLED.load(Ordering::Relaxed),
            total_count: total_count + unattributed_count,
            total_bytes: total_bytes + unattributed_bytes,
            unattributed_count,
            unattributed_bytes,
            peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
        },
    }
}

/// `(total allocations, total bytes)` since the last profile collection,
/// or `None` when no counting allocator is installed in this binary.
pub fn alloc_totals() -> Option<(u64, u64)> {
    if !INSTALLED.load(Ordering::Relaxed) {
        return None;
    }
    let mut count = 0u64;
    let mut bytes = 0u64;
    for bucket in 0..BUCKETS {
        count += ALLOC_COUNT[bucket].load(Ordering::Relaxed);
        bytes += ALLOC_BYTES[bucket].load(Ordering::Relaxed);
    }
    Some((count, bytes))
}

/// Peak live heap bytes seen by the counting allocator, or `None` when it
/// is not installed.
pub fn peak_live_bytes() -> Option<u64> {
    if INSTALLED.load(Ordering::Relaxed) {
        Some(PEAK_LIVE_BYTES.load(Ordering::Relaxed))
    } else {
        None
    }
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` `VmHWM` (`None` off Linux or if unreadable).
/// Independent of the counting allocator: works in any build.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_resets_attribution_but_not_peaks() {
        let _guard = crate::testutil::lock();
        // Simulate the allocator hooks directly (the test binary does not
        // install the global allocator).
        take_snapshot();
        set_current_phase(Phase::PolicyDecision.index() as u8);
        record_alloc(100);
        record_alloc(28);
        set_current_phase(UNATTRIBUTED_PHASE);
        record_alloc(16);
        record_dealloc(28);

        let snap = take_snapshot();
        let (count, bytes) = snap.per_phase[Phase::PolicyDecision.index()];
        assert_eq!(count, 2);
        assert_eq!(bytes, 128);
        assert_eq!(snap.summary.unattributed_count, 1);
        assert_eq!(snap.summary.unattributed_bytes, 16);
        assert_eq!(snap.summary.total_count, 3);
        assert_eq!(snap.summary.total_bytes, 144);
        assert!(snap.summary.peak_live_bytes >= 128);
        assert!(snap.summary.installed, "recording marks installation");

        let again = take_snapshot();
        assert_eq!(again.summary.total_count, 0, "snapshot resets counters");
        assert!(
            again.summary.peak_live_bytes >= 128,
            "peak persists across snapshots"
        );
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }
}
