//! Golden determinism tests for the simulation engine.
//!
//! Two guarantees, both load-bearing for the hot-path refactor:
//!
//! 1. **Determinism**: running any baseline policy twice on the same
//!    scenario yields byte-identical `SimReport`s (digest equality over a
//!    canonical encoding).
//! 2. **Golden equivalence**: the digests match constants captured from
//!    the engine *before* the indexing refactor, proving the refactor is
//!    behavior-preserving — same records, spend, evictions, and series,
//!    not merely "similar" aggregates.
//!
//! If an intentional behavior change ever lands, regenerate the constants
//! with `cargo test -q golden -- --nocapture` and update them in the same
//! commit that changes behavior, explaining why.

use codecrunch_suite::prelude::*;

/// Canonical report digest, now provided by [`SimReport::digest`] so the
/// bench binaries and the sharded driver share the exact encoding this
/// test pins. Kept as a local alias so the assertions below read the same
/// as when the encoding lived here.
fn report_digest(report: &SimReport) -> u64 {
    report.digest()
}

/// Mid-size scenario: large enough to exercise eviction, make-room,
/// compression transitions, budget caps, and pending queues on both
/// architectures; small enough to run in seconds in debug builds.
fn scenario() -> (Trace, Workload, ClusterConfig) {
    let trace = SyntheticTrace::builder()
        .functions(60)
        .duration(SimDuration::from_mins(90))
        .seed(4242)
        .build();
    let workload = Workload::from_trace(
        &trace,
        &Catalog::paper_catalog(),
        &CompressionModel::paper_default(),
    );
    let config = ClusterConfig::small(2, 2).with_warm_memory_fraction(0.35);
    (trace, workload, config)
}

fn run(policy: &mut dyn Scheduler) -> SimReport {
    let (trace, workload, config) = scenario();
    Simulation::new(config, &trace, &workload).run(policy)
}

fn policy_under_test(name: &str) -> Box<dyn Scheduler> {
    let (trace, _, _) = scenario();
    match name {
        "fixed_keepalive" => Box::new(FixedKeepAlive::ten_minutes()),
        "sitw" => Box::new(SitW::new()),
        "faascache" => Box::new(FaasCache::new()),
        "icebreaker" => Box::new(IceBreaker::new()),
        "oracle" => Box::new(Oracle::new(&trace)),
        "codecrunch" => Box::new(CodeCrunch::new()),
        other => panic!("unknown policy {other}"),
    }
}

/// Golden digests captured from the pre-refactor engine (hash-map pool +
/// per-arrival sorts). The indexing refactor must reproduce them exactly.
const GOLDEN: [(&str, u64); 6] = [
    ("fixed_keepalive", 0x46b0492b8fbd77a0),
    ("sitw", 0x80287e151a53c7d8),
    ("faascache", 0x8e254dc622b61fec),
    ("icebreaker", 0x57edf4152245b8ff),
    ("oracle", 0x8db8e8f26fccd766),
    ("codecrunch", 0xd248939b20b3c7b6),
];

#[test]
fn every_policy_is_deterministic_and_matches_golden() {
    let mut diverged = Vec::new();
    for (name, golden) in GOLDEN {
        let first = run(policy_under_test(name).as_mut());
        let second = run(policy_under_test(name).as_mut());
        let d1 = report_digest(&first);
        let d2 = report_digest(&second);
        println!("policy {name}: digest {d1:#018x}");
        assert_eq!(d1, d2, "policy {name} is not run-to-run deterministic");
        if d1 != golden {
            diverged.push(format!(
                "policy {name}: got {d1:#018x}, expected {golden:#018x}"
            ));
        }
    }
    assert!(
        diverged.is_empty(),
        "engine behavior diverged from the golden digests:\n{}",
        diverged.join("\n")
    );
}

/// FNV-1a over raw bytes (for digesting exported event streams).
fn bytes_digest(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

fn run_with_jsonl(policy: &mut dyn Scheduler) -> (SimReport, Vec<u8>) {
    let (trace, workload, config) = scenario();
    let mut sink = JsonlSink::new(Vec::new());
    let report = Simulation::new(config, &trace, &workload).run_with_sink(policy, &mut sink);
    let stream = sink.finish().expect("in-memory writer cannot fail");
    (report, stream)
}

/// The instrumented run must (a) produce a byte-identical JSONL event
/// stream run-to-run, and (b) leave the simulation itself untouched: the
/// report digest with a sink attached still matches the golden constant
/// captured from the uninstrumented engine.
#[test]
fn jsonl_event_stream_is_deterministic_and_sink_is_inert() {
    let golden = GOLDEN
        .iter()
        .find(|(name, _)| *name == "codecrunch")
        .expect("codecrunch golden digest")
        .1;
    let (first, stream_a) = run_with_jsonl(policy_under_test("codecrunch").as_mut());
    let (second, stream_b) = run_with_jsonl(policy_under_test("codecrunch").as_mut());
    assert!(!stream_a.is_empty(), "instrumented run emitted no events");
    println!(
        "codecrunch jsonl: {} bytes, digest {:#018x}",
        stream_a.len(),
        bytes_digest(&stream_a)
    );
    assert_eq!(
        bytes_digest(&stream_a),
        bytes_digest(&stream_b),
        "JSONL event stream is not run-to-run deterministic"
    );
    assert_eq!(stream_a, stream_b);
    for report in [&first, &second] {
        assert_eq!(
            report_digest(report),
            golden,
            "attaching an event sink perturbed the simulation"
        );
    }
}

/// The sharded driver is behavior-preserving: running every policy as a
/// parallel shard (uninstrumented, like a `--shards N` sweep) reproduces
/// the exact golden digests, and the results come back ordered by shard id.
#[test]
fn sharded_sweep_reproduces_golden_digests() {
    let jobs: Vec<_> = GOLDEN
        .iter()
        .map(|&(name, _)| {
            move |_sink: &mut NullSink| {
                let (trace, workload, config) = scenario();
                let mut policy = policy_under_test(name);
                Simulation::new(config, &trace, &workload).run(policy.as_mut())
            }
        })
        .collect();
    let results = run_sharded(jobs, 3, &NullSinkFactory);
    assert_eq!(results.len(), GOLDEN.len());
    for (shard, (result, (name, golden))) in results.iter().zip(GOLDEN).enumerate() {
        let report = result.outcome.as_ref().expect("shard panicked");
        assert_eq!(result.shard as usize, shard, "results not in shard order");
        assert_eq!(
            report.digest(),
            golden,
            "sharded run of {name} diverged from the serial golden digest"
        );
    }
}

/// A `--shards 1` instrumented run must produce byte-identical JSONL to
/// the serial `JsonlSink` path: same events, same encoding, no shard
/// markers.
#[test]
fn single_shard_jsonl_is_byte_identical_to_serial() {
    let (_, serial_stream) = run_with_jsonl(policy_under_test("codecrunch").as_mut());

    let job = |sink: &mut SamplingSink<ChannelSink>| {
        let (trace, workload, config) = scenario();
        let mut policy = policy_under_test("codecrunch");
        Simulation::new(config, &trace, &workload).run_with_sink(policy.as_mut(), sink)
    };
    let config = ShardedRunConfig {
        workers: 1,
        channel_capacity: 1024,
        lossy: false,
        sample_every: 1,
    };
    let (results, sharded_stream, mux) =
        run_sharded_jsonl(vec![job], &config, Vec::new()).expect("in-memory mux cannot fail");
    let report = results[0].outcome.as_ref().expect("shard panicked");

    assert_eq!(
        bytes_digest(&sharded_stream),
        bytes_digest(&serial_stream),
        "single-shard mux bytes diverge from the serial JSONL stream"
    );
    assert_eq!(sharded_stream, serial_stream);
    assert_eq!(mux.dropped_total, 0, "blocking channel must be lossless");
    assert_eq!(mux.events_written, results[0].sink.sent);
    let golden = GOLDEN
        .iter()
        .find(|(name, _)| *name == "codecrunch")
        .unwrap()
        .1;
    assert_eq!(
        report.digest(),
        golden,
        "channel-sink instrumentation perturbed the simulation"
    );
}

#[test]
fn digest_is_sensitive_to_report_contents() {
    let mut report = run(policy_under_test("sitw").as_mut());
    let base = report_digest(&report);
    report.evictions += 1;
    assert_ne!(base, report_digest(&report), "digest ignores evictions");
    report.evictions -= 1;
    assert_eq!(base, report_digest(&report));
    if let Some(v) = report.utilization_series.first_mut() {
        *v += 1.0;
        assert_ne!(base, report_digest(&report), "digest ignores series");
    }
}
