//! Chrome `trace_event` exporter (loadable in Perfetto / `chrome://tracing`).
//!
//! Renders the run as two processes:
//!
//! * **pid 1 "execution"** — one thread per node; each execution is a
//!   complete (`ph:"X"`) slice from start to completion, named by function
//!   and start kind.
//! * **pid 2 "warm pool"** — one thread per node; each warm instance's
//!   residency is a slice from admission to release, named by function
//!   (with a `z:` prefix when stored compressed).
//!
//! Per-interval counter (`ph:"C"`) tracks chart the global pool size,
//! pending queue, utilization, and budget spend. Timestamps are
//! microseconds, which is exactly [`cc_types::SimTime`]'s unit.

use std::collections::HashSet;
use std::io::{self, Write};

use cc_types::NodeId;

use crate::event::{Event, EventSink};
use crate::jsonl::json_f64;

const EXEC_PID: u32 = 1;
const POOL_PID: u32 = 2;
const COUNTER_PID: u32 = 3;

/// Streams Chrome `trace_event` JSON to any [`Write`].
///
/// Call [`ChromeTraceSink::finish`] to close the JSON array (Perfetto also
/// accepts a truncated file, so an abandoned sink still yields a loadable
/// trace). IO errors are latched like [`JsonlSink`](crate::JsonlSink)'s.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write> {
    out: W,
    any: bool,
    named_procs: HashSet<u32>,
    named_threads: HashSet<(u32, u32)>,
    error: Option<io::Error>,
}

impl<W: Write> ChromeTraceSink<W> {
    /// Wraps a writer (buffer it for file targets).
    pub fn new(out: W) -> ChromeTraceSink<W> {
        ChromeTraceSink {
            out,
            any: false,
            named_procs: HashSet::new(),
            named_threads: HashSet::new(),
            error: None,
        }
    }

    fn emit(&mut self, record: &str) {
        if self.error.is_some() {
            return;
        }
        let lead: &[u8] = if self.any { b",\n" } else { b"[\n" };
        let result = self
            .out
            .write_all(lead)
            .and_then(|()| self.out.write_all(record.as_bytes()));
        match result {
            Ok(()) => self.any = true,
            Err(e) => self.error = Some(e),
        }
    }

    fn name_process(&mut self, pid: u32, process: &str) {
        if !self.named_procs.insert(pid) {
            return;
        }
        self.emit(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{process}\"}}}}"
        ));
    }

    fn node_thread(&mut self, pid: u32, process: &str, node: NodeId) -> u32 {
        self.name_process(pid, process);
        let tid = node.index() as u32 + 1;
        if self.named_threads.insert((pid, tid)) {
            self.emit(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"node {}\"}}}}",
                node.index()
            ));
        }
        tid
    }

    fn counter(&mut self, ts_us: u64, name: &str, args: &str) {
        self.name_process(COUNTER_PID, "cluster");
        self.emit(&format!(
            "{{\"ph\":\"C\",\"pid\":{COUNTER_PID},\"ts\":{ts_us},\
             \"name\":\"{name}\",\"args\":{{{args}}}}}"
        ));
    }

    /// Closes the JSON array, flushes, and returns the writer (or the first
    /// latched IO error).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.any {
            self.out.write_all(b"\n]\n")?;
        } else {
            self.out.write_all(b"[]\n")?;
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> EventSink for ChromeTraceSink<W> {
    fn record(&mut self, event: &Event) {
        match *event {
            Event::ExecutionStarted {
                at,
                function,
                node,
                arch,
                kind,
                wait,
                start_penalty,
                execution,
            } => {
                let tid = self.node_thread(EXEC_PID, "execution", node);
                let dur = (start_penalty + execution).as_micros();
                self.emit(&format!(
                    "{{\"ph\":\"X\",\"pid\":{EXEC_PID},\"tid\":{tid},\"ts\":{},\
                     \"dur\":{dur},\"name\":\"f{} {kind}\",\"cat\":\"exec\",\
                     \"args\":{{\"arch\":\"{arch}\",\"wait_us\":{},\"penalty_us\":{}}}}}",
                    at.as_micros(),
                    function.index(),
                    wait.as_micros(),
                    start_penalty.as_micros(),
                ));
            }
            Event::InstanceReleased {
                at,
                function,
                node,
                memory,
                compressed,
                since,
                reason,
                ..
            } => {
                let tid = self.node_thread(POOL_PID, "warm pool", node);
                let prefix = if compressed { "z:" } else { "" };
                self.emit(&format!(
                    "{{\"ph\":\"X\",\"pid\":{POOL_PID},\"tid\":{tid},\"ts\":{},\
                     \"dur\":{},\"name\":\"{prefix}f{}\",\"cat\":\"warm\",\
                     \"args\":{{\"mem_mb\":{},\"reason\":\"{}\"}}}}",
                    since.as_micros(),
                    at.saturating_since(since).as_micros(),
                    function.index(),
                    memory.as_mb(),
                    reason.label(),
                ));
            }
            Event::IntervalSampled { at, sample } => {
                let ts = at.as_micros();
                self.counter(
                    ts,
                    "warm pool",
                    &format!(
                        "\"instances\":{},\"compressed\":{}",
                        sample.warm_pool, sample.compressed
                    ),
                );
                self.counter(ts, "pending", &format!("\"queued\":{}", sample.pending));
                self.counter(
                    ts,
                    "utilization",
                    &format!("\"busy_fraction\":{}", json_f64(sample.utilization)),
                );
                self.counter(
                    ts,
                    "budget",
                    &format!(
                        "\"spend_delta_dollars\":{}",
                        json_f64(sample.spend_delta_dollars)
                    ),
                );
            }
            Event::OptimizerRound { at, ref round } => {
                self.counter(
                    at.as_micros(),
                    "optimizer objective",
                    &format!("\"objective\":{}", json_f64(round.objective)),
                );
            }
            // Point events would only add noise to the track view; the JSONL
            // exporter carries the full stream.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReleaseReason;
    use cc_types::{Arch, FunctionId, MemoryMb, SimDuration, SimTime, StartKind, WarmId};

    #[test]
    fn empty_trace_is_valid_json() {
        let sink = ChromeTraceSink::new(Vec::new());
        let bytes = sink.finish().unwrap();
        assert_eq!(bytes, b"[]\n");
    }

    #[test]
    fn slices_and_metadata_form_an_array() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.record(&Event::ExecutionStarted {
            at: SimTime::from_micros(10),
            function: FunctionId::new(3),
            node: cc_types::NodeId::new(0),
            arch: Arch::X86,
            kind: StartKind::Cold,
            wait: SimDuration::ZERO,
            start_penalty: SimDuration::from_millis(200),
            execution: SimDuration::from_secs(1),
        });
        sink.record(&Event::InstanceReleased {
            at: SimTime::from_micros(5_000_000),
            id: WarmId::new(0, 0),
            function: FunctionId::new(3),
            node: cc_types::NodeId::new(0),
            memory: MemoryMb::new(128),
            compressed: true,
            since: SimTime::from_micros(1_200_010),
            reason: ReleaseReason::Expired,
        });
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.ends_with("\n]\n"), "{text}");
        // Execution slice with the combined penalty+execution duration.
        assert!(text.contains("\"dur\":1200000"), "{text}");
        // Warm residency slice named with the compressed prefix.
        assert!(text.contains("\"name\":\"z:f3\""), "{text}");
        // Thread metadata emitted once per node per process.
        assert_eq!(text.matches("thread_name").count(), 2, "{text}");
        assert_eq!(text.matches("process_name").count(), 2, "{text}");
    }

    #[test]
    fn interval_samples_become_counters() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.record(&Event::IntervalSampled {
            at: SimTime::from_micros(60_000_000),
            sample: crate::IntervalSample {
                index: 1,
                spend_delta_dollars: 0.125,
                warm_pool: 9,
                compressed: 4,
                utilization: 0.5,
                compression_events_delta: 2,
                pending: 1,
            },
        });
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(text.contains("\"ph\":\"C\""), "{text}");
        assert!(text.contains("\"instances\":9"), "{text}");
        assert!(text.contains("\"spend_delta_dollars\":0.125"), "{text}");
    }
}
