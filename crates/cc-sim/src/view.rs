//! Read-only view of cluster state handed to policies.

use cc_types::{Arch, FunctionId, MemoryMb, SimTime, WarmId};
use cc_workload::{FunctionSpec, Workload};

use crate::node::{NodeState, WarmInstance};
use crate::pool::WarmPool;
use crate::{BudgetLedger, ClusterConfig};

/// A read-only snapshot of the cluster offered to policy callbacks.
///
/// Everything a policy may legitimately observe is here: the clock, node
/// states, warm-pool contents, the budget ledger, the resolved function
/// specs, and the current queueing pressure. Policies must not (and cannot)
/// see the future of the trace — except [`Oracle`](https://docs.rs/cc-policies),
/// which captures the trace at construction instead.
///
/// Warm-pool contents are exposed through methods
/// ([`ClusterView::warm_instances_of`], [`ClusterView::instance`],
/// [`ClusterView::warm_count`], …) rather than raw maps: the engine stores
/// instances in a slab arena with ordered indexes, and the accessors read
/// those directly — `warm_count`/`compressed_count` are O(1) counters, not
/// scans.
pub struct ClusterView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Static cluster configuration.
    pub config: &'a ClusterConfig,
    /// All node states.
    pub nodes: &'a [NodeState],
    /// The budget ledger.
    pub ledger: &'a BudgetLedger,
    /// Resolved per-function specs.
    pub workload: &'a Workload,
    /// Number of invocations waiting for capacity.
    pub pending: usize,
    pool: &'a WarmPool,
}

impl<'a> ClusterView<'a> {
    pub(crate) fn new(
        now: SimTime,
        config: &'a ClusterConfig,
        nodes: &'a [NodeState],
        pool: &'a WarmPool,
        ledger: &'a BudgetLedger,
        workload: &'a Workload,
        pending: usize,
    ) -> ClusterView<'a> {
        ClusterView {
            now,
            config,
            nodes,
            ledger,
            workload,
            pending,
            pool,
        }
    }

    /// The spec of one function.
    pub fn spec(&self, function: FunctionId) -> &FunctionSpec {
        self.workload.spec(function)
    }

    /// Warm instances currently alive for `function`, in admission order.
    pub fn warm_instances_of(&self, function: FunctionId) -> Vec<&'a WarmInstance> {
        self.pool
            .order_of(function)
            .iter()
            .filter_map(|&id| self.pool.get(id))
            .collect()
    }

    /// The live warm instance behind `id`, or `None` if the handle is
    /// stale (the instance has been reused, evicted, or expired since the
    /// id was observed).
    pub fn instance(&self, id: WarmId) -> Option<&'a WarmInstance> {
        self.pool.get(id)
    }

    /// Whether `function` has any warm instance.
    pub fn is_warm(&self, function: FunctionId) -> bool {
        self.pool.is_warm(function)
    }

    /// Total free cores on nodes of `arch`.
    pub fn free_cores(&self, arch: Arch) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.arch == arch)
            .map(NodeState::free_cores)
            .sum()
    }

    /// Total free memory on nodes of `arch`.
    pub fn free_memory(&self, arch: Arch) -> MemoryMb {
        self.nodes
            .iter()
            .filter(|n| n.arch == arch)
            .map(NodeState::free_memory)
            .sum()
    }

    /// Total memory held by warm instances across the cluster.
    pub fn total_warm_memory(&self) -> MemoryMb {
        self.nodes.iter().map(|n| n.warm_memory).sum()
    }

    /// Number of warm instances across the cluster. O(1).
    pub fn warm_count(&self) -> usize {
        self.pool.len()
    }

    /// Number of warm instances stored compressed. O(1).
    pub fn compressed_count(&self) -> usize {
        self.pool.compressed_count()
    }

    /// Fraction of all execution cores currently busy, in `[0, 1]` — the
    /// load signal policies use to detect peaks.
    pub fn busy_core_fraction(&self) -> f64 {
        let total: u32 = self.nodes.iter().map(|n| n.cores).sum();
        let busy: u32 = self.nodes.iter().map(|n| n.busy_cores).sum();
        if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64
        }
    }
}
