//! Genetic algorithm over the choice space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cc_types::FnChoice;

use crate::classic::random_choice;
use crate::{Objective, OptOutcome};

/// A conventional genetic algorithm: tournament selection, uniform
/// crossover, per-dimension mutation, elitism of one.
///
/// Included for the paper's Fig. 3 comparison, where it "performs poorly
/// due to the large size of the optimization space".
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-dimension mutation probability.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population: 32,
            generations: 40,
            mutation_rate: 0.05,
            seed: 0,
        }
    }
}

impl GeneticAlgorithm {
    /// Runs the GA seeded with `start` (which joins the initial
    /// population, so the result never regresses below it).
    pub fn optimize(&self, objective: &dyn Objective, start: Vec<FnChoice>) -> OptOutcome {
        assert!(self.population >= 2, "population must hold at least two");
        let n = objective.num_functions();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evaluations = 0u64;

        let score = |sol: &Vec<FnChoice>, evals: &mut u64| -> f64 {
            *evals += 1;
            if objective.is_feasible(sol) {
                objective.evaluate(sol)
            } else {
                f64::INFINITY
            }
        };

        let mut population: Vec<(f64, Vec<FnChoice>)> = Vec::with_capacity(self.population);
        let start_cost = score(&start, &mut evaluations);
        population.push((start_cost, start));
        while population.len() < self.population {
            let individual: Vec<FnChoice> = (0..n).map(|_| random_choice(&mut rng)).collect();
            let cost = score(&individual, &mut evaluations);
            population.push((cost, individual));
        }

        for _ in 0..self.generations {
            population.sort_by(|a, b| a.0.total_cmp(&b.0));
            let elite = population[0].clone();
            let mut next = vec![elite];
            while next.len() < self.population {
                let a = self.tournament(&population, &mut rng);
                let b = self.tournament(&population, &mut rng);
                let mut child: Vec<FnChoice> = (0..n)
                    .map(|i| if rng.gen_bool(0.5) { a[i] } else { b[i] })
                    .collect();
                for gene in child.iter_mut() {
                    if rng.gen_bool(self.mutation_rate) {
                        *gene = random_choice(&mut rng);
                    }
                }
                let cost = score(&child, &mut evaluations);
                next.push((cost, child));
            }
            population = next;
        }
        population.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (cost, solution) = population.swap_remove(0);
        OptOutcome {
            solution,
            cost,
            evaluations,
        }
    }

    fn tournament<'p>(
        &self,
        population: &'p [(f64, Vec<FnChoice>)],
        rng: &mut StdRng,
    ) -> &'p Vec<FnChoice> {
        let a = &population[rng.gen_range(0..population.len())];
        let b = &population[rng.gen_range(0..population.len())];
        if a.0 <= b.0 {
            &a.1
        } else {
            &b.1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::testing::Bowl;
    use crate::CoordinateDescent;

    #[test]
    fn ga_improves_over_start() {
        let b = Bowl {
            n: 6,
            target_mins: 12.0,
            max_total_mins: None,
        };
        let start = vec![FnChoice::production_default(); 6];
        let start_cost = b.evaluate(&start);
        let out = GeneticAlgorithm::default().optimize(&b, start);
        assert!(out.cost < start_cost);
    }

    #[test]
    fn ga_never_regresses_below_seed() {
        let b = Bowl {
            n: 3,
            target_mins: 7.0,
            max_total_mins: None,
        };
        // Seed with the optimum; elitism must preserve it.
        let optimum = crate::objective::testing::optimum(&b);
        let out = GeneticAlgorithm::default().optimize(&b, optimum);
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let b = Bowl {
            n: 4,
            target_mins: 9.0,
            max_total_mins: None,
        };
        let start = vec![FnChoice::production_default(); 4];
        let a = GeneticAlgorithm::default().optimize(&b, start.clone());
        let c = GeneticAlgorithm::default().optimize(&b, start);
        assert_eq!(a.cost, c.cost);
        assert_eq!(a.solution, c.solution);
    }

    #[test]
    fn ga_loses_to_descent_on_smooth_spaces() {
        // The paper's point, inverted: on a smooth bowl, descent is exact
        // while a small-budget GA usually is not. Either way the GA must
        // not beat the exact optimum.
        let b = Bowl {
            n: 8,
            target_mins: 7.0,
            max_total_mins: None,
        };
        let start = vec![FnChoice::production_default(); 8];
        let cd = CoordinateDescent::default().optimize(&b, start.clone());
        let ga = GeneticAlgorithm::default().optimize(&b, start);
        assert!(cd.cost <= ga.cost);
    }

    #[test]
    #[should_panic(expected = "population must hold at least two")]
    fn rejects_tiny_population() {
        let b = Bowl {
            n: 1,
            target_mins: 1.0,
            max_total_mins: None,
        };
        let ga = GeneticAlgorithm {
            population: 1,
            ..GeneticAlgorithm::default()
        };
        let _ = ga.optimize(&b, vec![FnChoice::production_default()]);
    }
}
